#!/usr/bin/env python
"""Diff two result-store runs at the per-app level.

Usage::

    python tools/diff_runs.py STORE_A STORE_B [--json]

Compares every entry of two content-addressed result stores (see
``repro.core.exec.resultstore``) and reports, per app:

* entries present in only one store (an app computed by one run but not
  the other — added, removed, or abandoned after faults);
* apps whose **pinned verdict flipped** between the runs, with the
  destination-level why (which pinned destinations appeared or
  disappeared);
* entries whose semantic identity matches but whose result **summary**
  differs (same app, same stage config, different measurement — a
  code-behaviour change the fingerprint salt should have caught).

Comparison is over each entry's canonical summary (pinned verdict,
sorted destination sets, static/circumvention findings), not its pickled
payload bytes: pickling a ``set`` is ordered by iteration, which varies
across interpreter processes under hash randomisation, so equivalent
runs do not produce byte-identical payloads unless ``PYTHONHASHSEED``
is pinned.

Stdlib-only by design: entries are self-describing envelopes whose
metadata and summaries are plain data, so this tool never imports the
``repro`` package or unpickles result payloads.

Exit status: 0 when the stores are identical, 1 when they differ, 2 on
usage or store-format errors.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
from pathlib import Path

_ENTRY_MAGIC = "repro-result-entry"


def load_store(root):
    """Map of ``semantic key -> entry`` for every readable entry.

    The semantic key — ``(stage, platform, dataset, app_id, extra)`` —
    identifies *what was measured*; the fingerprint additionally bakes in
    corpus/code versions, so keying semantically lets two stores written
    by different checkouts still be compared app by app.  Unreadable
    entries are reported on stderr and skipped (the store itself treats
    them as misses).
    """
    root = Path(root)
    objects = root / "objects"
    if not objects.is_dir():
        raise SystemExit(f"error: {root} is not a result store (no objects/)")
    entries = {}
    for path in sorted(objects.glob("*/*.pkl")):
        try:
            envelope = pickle.loads(path.read_bytes())
            magic, _version, fingerprint, meta, digest, _payload = envelope
            if magic != _ENTRY_MAGIC:
                raise ValueError("bad entry magic")
            if meta.get("entry_kind") == "stage":
                # Stage-granular cache entries are an implementation
                # detail of partial recomputation; two semantically
                # identical runs may legitimately differ in which stage
                # artifacts they materialized.  Only app-level results
                # are compared.
                continue
        except Exception as exc:
            print(
                f"warning: skipping corrupt entry {path}: {exc}",
                file=sys.stderr,
            )
            continue
        key = (
            meta["stage"],
            meta["platform"],
            meta["dataset"],
            meta["app_id"],
            meta["extra"],
        )
        entries[key] = {
            "fingerprint": fingerprint,
            "digest": digest,
            "summary": meta.get("summary", {}),
        }
    return entries


def describe_key(key):
    stage, platform, dataset, app_id, extra = key
    return f"{stage} {platform}/{dataset} {app_id} (config {extra})"


def pinned_view(entries):
    """Per-app final pinned verdict: ``(platform, dataset, app_id) ->
    (pinned, destinations)``.

    Mirrors the study's semantics: when an app has several dynamic
    entries (the Common-iOS re-run uses a longer pre-launch wait), the
    entry with the largest wait is the one whose verdict the study
    reports.
    """
    view = {}
    for key, entry in entries.items():
        stage, platform, dataset, app_id, extra = key
        if stage != "dynamic":
            continue
        try:
            wait = float(extra)
        except ValueError:
            wait = 0.0
        summary = entry["summary"]
        app_key = (platform, dataset, app_id)
        current = view.get(app_key)
        if current is None or wait >= current[0]:
            view[app_key] = (
                wait,
                bool(summary.get("pinned")),
                tuple(summary.get("pinned_destinations", ())),
            )
    return {
        k: {"pinned": pinned, "destinations": list(dests)}
        for k, (_, pinned, dests) in view.items()
    }


def diff_stores(a_entries, b_entries):
    """Structured diff of two loaded stores."""
    a_keys, b_keys = set(a_entries), set(b_entries)
    only_a = sorted(a_keys - b_keys)
    only_b = sorted(b_keys - a_keys)
    changed = sorted(
        key
        for key in a_keys & b_keys
        if a_entries[key]["summary"] != b_entries[key]["summary"]
    )

    a_view, b_view = pinned_view(a_entries), pinned_view(b_entries)
    flips = []
    for app_key in sorted(set(a_view) & set(b_view)):
        a_pin, b_pin = a_view[app_key], b_view[app_key]
        if a_pin == b_pin:
            continue
        gained = sorted(set(b_pin["destinations"]) - set(a_pin["destinations"]))
        lost = sorted(set(a_pin["destinations"]) - set(b_pin["destinations"]))
        flips.append(
            {
                "platform": app_key[0],
                "dataset": app_key[1],
                "app_id": app_key[2],
                "before": a_pin,
                "after": b_pin,
                "destinations_gained": gained,
                "destinations_lost": lost,
            }
        )

    return {
        "identical": not (only_a or only_b or changed or flips),
        "only_in_a": [describe_key(k) for k in only_a],
        "only_in_b": [describe_key(k) for k in only_b],
        "changed_results": [describe_key(k) for k in changed],
        "pinned_flips": flips,
        "entries_a": len(a_entries),
        "entries_b": len(b_entries),
    }


def render(report, store_a, store_b):
    lines = []
    if report["identical"]:
        lines.append(
            f"stores identical: {report['entries_a']} entr(ies) in each"
        )
        return "\n".join(lines)
    lines.append(f"stores differ: A={store_a} B={store_b}")
    for label, keys in (
        ("only in A", report["only_in_a"]),
        ("only in B", report["only_in_b"]),
        ("changed results", report["changed_results"]),
    ):
        if keys:
            lines.append(f"  {label} ({len(keys)} entr(ies)):")
            lines.extend(f"    {key}" for key in keys)
    if report["pinned_flips"]:
        lines.append(
            f"  pinned verdict flips ({len(report['pinned_flips'])} app(s)):"
        )
        for flip in report["pinned_flips"]:
            before = "pinned" if flip["before"]["pinned"] else "unpinned"
            after = "pinned" if flip["after"]["pinned"] else "unpinned"
            why = []
            if flip["destinations_gained"]:
                why.append("+{%s}" % ", ".join(flip["destinations_gained"]))
            if flip["destinations_lost"]:
                why.append("-{%s}" % ", ".join(flip["destinations_lost"]))
            lines.append(
                f"    {flip['platform']}/{flip['dataset']} "
                f"{flip['app_id']}: {before} -> {after} "
                f"(destinations {' '.join(why) or 'unchanged'})"
            )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("store_a", help="baseline store directory")
    parser.add_argument("store_b", help="comparison store directory")
    parser.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )
    args = parser.parse_args(argv)

    report = diff_stores(load_store(args.store_a), load_store(args.store_b))
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(render(report, args.store_a, args.store_b))
    return 0 if report["identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
