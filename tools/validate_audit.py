#!/usr/bin/env python
"""Validate an audit-report JSON against its checked-in schema.

Usage:
    python tools/validate_audit.py SCHEMA REPORT [REPORT ...] [--require-pass]

Exits 0 when every report conforms (and, with ``--require-pass``, every
report's audit verdict is PASS), 1 otherwise.

Schema validation reuses the stdlib-only subset validator from
``tools/validate_telemetry.py`` — one validator, two schemas, no
third-party ``jsonschema`` dependency.  ``--require-pass`` goes one step
further than shape: a structurally valid report that records a failed
audit (``"passed": false``) fails the check, which is what CI wants —
an audit job must fail on a detector out of band or a broken invariant,
not only on malformed output.
"""

from __future__ import annotations

import json
import os
import sys
from typing import List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from validate_telemetry import validate_file  # noqa: E402


def main(argv: List[str]) -> int:
    require_pass = "--require-pass" in argv
    argv = [a for a in argv if a != "--require-pass"]
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    schema_path, reports = argv[0], argv[1:]
    status = 0
    for report_path in reports:
        violations = validate_file(schema_path, report_path)
        if violations:
            status = 1
            print(f"{report_path}: INVALID")
            for violation in violations:
                print(f"  {violation}")
            continue
        with open(report_path) as handle:
            report = json.load(handle)
        if require_pass and not report.get("passed"):
            status = 1
            failed = [
                entry["rule"]
                for entry in report.get("invariants", [])
                if not entry.get("passed")
            ] + [
                f"{entry['detector']}/{entry['platform']}"
                for entry in report.get("oracle", [])
                if not entry.get("passed")
            ]
            determinism = report.get("determinism")
            if determinism and not determinism.get("passed"):
                failed.append("determinism")
            print(f"{report_path}: valid shape, but audit FAILED ({failed})")
        else:
            print(f"{report_path}: ok")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
