#!/usr/bin/env python
"""Deterministically partition the test suite into CI shards.

Usage::

    python tools/shard_tests.py --shards 3 --index 1
    python -m pytest -x -q $(python tools/shard_tests.py --shards 3 --index 1)

Buckets every ``tests/test_*.py`` file by the SHA-256 of its *file name*
modulo ``--shards`` and prints the files belonging to ``--index``, one
per line.  Hashing the name (not the path, not the position in a sorted
listing) makes the assignment:

* **deterministic** — the same file always lands in the same shard, on
  every machine and every run, with no coordination;
* **stable under suite growth** — adding a test file never moves any
  *other* file between shards, so shard-level CI caches stay warm.

The union of all shards is exactly the set of test files, and shards are
disjoint by construction (each file has one hash).  Shard balance is
statistical, not exact — good enough for CI where per-file cost already
varies far more than bucket sizes do.

Stdlib-only.  Exit status: 0 with at least one file printed, 1 for an
empty shard (so a misconfigured matrix fails loudly instead of running
zero tests and passing), 2 on bad arguments.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from pathlib import Path


def shard_of(filename: str, shards: int) -> int:
    """The shard a test file name belongs to (pure, position-independent)."""
    digest = hashlib.sha256(filename.encode("utf-8")).hexdigest()
    return int(digest, 16) % shards


def shard_files(test_dir: Path, shards: int, index: int) -> list:
    files = sorted(test_dir.glob("test_*.py"))
    return [path for path in files if shard_of(path.name, shards) == index]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shards", type=int, required=True, help="total number of shards"
    )
    parser.add_argument(
        "--index", type=int, required=True, help="this shard (0-based)"
    )
    parser.add_argument(
        "--test-dir",
        default="tests",
        help="directory holding test_*.py files (default: tests)",
    )
    args = parser.parse_args(argv)

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if not 0 <= args.index < args.shards:
        print(
            f"error: --index must be in [0, {args.shards}), got {args.index}",
            file=sys.stderr,
        )
        return 2
    test_dir = Path(args.test_dir)
    if not test_dir.is_dir():
        print(f"error: no such directory: {test_dir}", file=sys.stderr)
        return 2

    selected = shard_files(test_dir, args.shards, args.index)
    if not selected:
        print(
            f"error: shard {args.index}/{args.shards} is empty",
            file=sys.stderr,
        )
        return 1
    for path in selected:
        print(path.as_posix())
    return 0


if __name__ == "__main__":
    sys.exit(main())
