#!/usr/bin/env python
"""Compare two sweep report JSONs, ignoring run-volatile fields.

Usage::

    python tools/diff_sweep_reports.py baseline.json candidate.json

A sweep's *findings* are deterministic — same spec, same corpus, same
numbers — but its report also records how the run went: per-point
``elapsed_s`` (wall clock) and ``store`` statistics (hit/miss tallies
depend on what happened to be cached).  Those differ between a cold CLI
run and a warm service run executing the identical spec, which is
exactly the comparison the CI service smoke job makes.  This tool masks
the volatile fields and deep-compares everything else, so "the service
computed the same sweep" is checkable without demanding byte equality
of the full report.

Stdlib-only.  Exit status: 0 when the reports agree, 1 with a readable
path-by-path diff when they do not, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Keys whose values legitimately differ between identical runs.
VOLATILE_KEYS = ("elapsed_s", "store")


def mask(value):
    """Recursively replace volatile fields with a fixed placeholder."""
    if isinstance(value, dict):
        return {
            key: "<masked>" if key in VOLATILE_KEYS else mask(child)
            for key, child in value.items()
        }
    if isinstance(value, list):
        return [mask(child) for child in value]
    return value


def diff(baseline, candidate, path="$"):
    """Yield human-readable difference lines between two masked trees."""
    if type(baseline) is not type(candidate):
        yield (
            f"{path}: type {type(baseline).__name__} != "
            f"{type(candidate).__name__}"
        )
        return
    if isinstance(baseline, dict):
        for key in sorted(set(baseline) | set(candidate)):
            if key not in baseline:
                yield f"{path}.{key}: only in candidate"
            elif key not in candidate:
                yield f"{path}.{key}: only in baseline"
            else:
                yield from diff(baseline[key], candidate[key], f"{path}.{key}")
    elif isinstance(baseline, list):
        if len(baseline) != len(candidate):
            yield f"{path}: length {len(baseline)} != {len(candidate)}"
            return
        for index, (left, right) in enumerate(zip(baseline, candidate)):
            yield from diff(left, right, f"{path}[{index}]")
    elif baseline != candidate:
        yield f"{path}: {baseline!r} != {candidate!r}"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="sweep report JSON")
    parser.add_argument("candidate", help="sweep report JSON to compare")
    args = parser.parse_args(argv)

    trees = []
    for path in (args.baseline, args.candidate):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                trees.append(mask(json.load(handle)))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2

    lines = list(diff(trees[0], trees[1]))
    if lines:
        print(f"sweep reports differ ({len(lines)} difference(s)):")
        for line in lines:
            print(f"  {line}")
        return 1
    print("sweep reports agree (volatile fields masked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
