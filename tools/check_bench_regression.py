#!/usr/bin/env python
"""Gate CI on pipeline throughput against the checked-in baseline.

Usage::

    python tools/check_bench_regression.py BENCH_JSON BASELINE_JSON \
        [--tolerance 0.30]

``BENCH_JSON`` is a ``pytest-benchmark --benchmark-json`` export of
``benchmarks/test_pipeline_throughput.py``; ``BASELINE_JSON`` is the
repository's ``BENCH_study.json``.  Each benchmark's measured
throughput (ops/s, the reciprocal of the mean per-op time) is compared
against the baseline's serial apps-per-second figures:

* ``test_static_scan_per_app``   vs ``serial.static_apps_per_s``
* ``test_dynamic_run_per_app``   vs ``serial.dynamic_apps_per_s``

The check fails when a measured figure regresses by more than
``--tolerance`` (default 0.30, i.e. >30 % slower than baseline).  The
tolerance is deliberately generous: the baseline was recorded on one
machine and CI runners differ — the gate exists to catch order-of-30 %
algorithmic regressions, not single-digit noise.

Stdlib-only.  Exit status: 0 when within tolerance, 1 on regression,
2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys

#: benchmark name -> path into BENCH_study.json
BASELINE_KEYS = {
    "test_static_scan_per_app": ("serial", "static_apps_per_s"),
    "test_dynamic_run_per_app": ("serial", "dynamic_apps_per_s"),
}


def measured_ops(bench_doc):
    """``benchmark name -> ops/s`` from a pytest-benchmark export."""
    ops = {}
    for bench in bench_doc.get("benchmarks", []):
        mean = bench.get("stats", {}).get("mean")
        if mean:
            ops[bench["name"]] = 1.0 / mean
    return ops


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="pytest-benchmark JSON export")
    parser.add_argument("baseline", help="checked-in BENCH_study.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed fractional regression (default 0.30)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.bench) as fh:
            ops = measured_ops(json.load(fh))
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: unreadable input: {exc}", file=sys.stderr)
        return 2

    failed = False
    checked = 0
    for name, (section, field) in sorted(BASELINE_KEYS.items()):
        expected = baseline.get(section, {}).get(field)
        measured = ops.get(name)
        if expected is None or measured is None:
            print(f"skip: {name} (no baseline or no measurement)")
            continue
        checked += 1
        floor = expected * (1.0 - args.tolerance)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"{verdict}: {name} {measured:.1f} ops/s "
            f"(baseline {expected:.1f}, floor {floor:.1f})"
        )
        if measured < floor:
            failed = True
    if checked == 0:
        print("error: nothing to check — wrong bench file?", file=sys.stderr)
        return 2
    if failed:
        print(
            f"FAIL: throughput regressed >{args.tolerance:.0%} vs baseline",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {checked} benchmark(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
