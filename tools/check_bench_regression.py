#!/usr/bin/env python
"""Gate CI on pipeline throughput against the checked-in baseline.

Usage::

    python tools/check_bench_regression.py BENCH_JSON BASELINE_JSON \
        [--tolerance 0.30]

``BENCH_JSON`` is a ``pytest-benchmark --benchmark-json`` export of
``benchmarks/test_pipeline_throughput.py``; ``BASELINE_JSON`` is the
repository's ``BENCH_study.json``.  Each benchmark's measured
throughput (ops/s, the reciprocal of the mean per-op time) is compared
against the baseline's serial apps-per-second figures:

* ``test_static_scan_per_app``   vs ``serial.static_apps_per_s``
* ``test_dynamic_run_per_app``   vs ``serial.dynamic_apps_per_s``

The check fails when a measured figure regresses by more than
``--tolerance`` (default 0.30, i.e. >30 % slower than baseline).  The
tolerance is deliberately generous: the baseline was recorded on one
machine and CI runners differ — the gate exists to catch order-of-30 %
algorithmic regressions, not single-digit noise.

``--overhead OVERHEAD_JSON`` additionally gates the pool-boundary
figures (the artifact written by ``benchmarks/test_pool_boundary.py``,
or a ``BENCH_study.json`` whose ``overhead`` section is then used):

* the corpus bootstrap fields must be present, and the bytes shipped
  per worker must be at least ``--min-corpus-reduction`` (default 10×)
  smaller than a full corpus pickle;
* wherever a ``payload_<kind>_encoded_bytes`` /
  ``payload_<kind>_plain_bytes`` pair is present, encoded must not
  exceed plain;
* IPC byte counters and worker-init timings, when present, must be
  positive — a zero means the telemetry plumbing silently broke.

Stdlib-only.  Exit status: 0 when within tolerance, 1 on regression,
2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys

#: benchmark name -> path into BENCH_study.json
BASELINE_KEYS = {
    "test_static_scan_per_app": ("serial", "static_apps_per_s"),
    "test_dynamic_run_per_app": ("serial", "dynamic_apps_per_s"),
}

#: Pool-boundary fields that must exist in an --overhead document.
OVERHEAD_REQUIRED = (
    "corpus_bootstrap_bytes",
    "full_corpus_pickle_bytes",
    "corpus_bytes_reduction",
)

#: Fields that, when present, must be strictly positive (a zero means
#: the counter or timer was never recorded — broken plumbing, not a
#: fast machine).
OVERHEAD_POSITIVE = (
    "ipc_bytes_out",
    "ipc_bytes_in",
    "worker_init_s_mean",
    "corpus_bootstrap_bytes",
    "full_corpus_pickle_bytes",
)


def measured_ops(bench_doc):
    """``benchmark name -> ops/s`` from a pytest-benchmark export."""
    ops = {}
    for bench in bench_doc.get("benchmarks", []):
        mean = bench.get("stats", {}).get("mean")
        if mean:
            ops[bench["name"]] = 1.0 / mean
    return ops


def check_overhead(doc, min_reduction):
    """Gate the pool-boundary figures; returns a list of failures."""
    if "overhead" in doc and isinstance(doc["overhead"], dict):
        doc = doc["overhead"]
    failures = []
    for field in OVERHEAD_REQUIRED:
        if field not in doc:
            failures.append(f"missing overhead field: {field}")
    for field in OVERHEAD_POSITIVE:
        value = doc.get(field)
        if value is not None and not value > 0:
            failures.append(f"overhead field not positive: {field}={value}")
    reduction = doc.get("corpus_bytes_reduction")
    if reduction is not None and reduction < min_reduction:
        failures.append(
            f"corpus bootstrap reduction {reduction}x is below the "
            f"required {min_reduction}x"
        )
    for kind in ("static", "dynamic"):
        plain = doc.get(f"payload_{kind}_plain_bytes")
        encoded = doc.get(f"payload_{kind}_encoded_bytes")
        if plain is not None and encoded is not None and encoded > plain:
            failures.append(
                f"{kind} payload encoding grew: {encoded} B encoded "
                f"vs {plain} B plain"
            )
    for line in failures:
        print(f"REGRESSION: {line}")
    if not failures:
        print(f"ok: pool-boundary overhead within bounds ({len(doc)} fields)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="pytest-benchmark JSON export")
    parser.add_argument("baseline", help="checked-in BENCH_study.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed fractional regression (default 0.30)",
    )
    parser.add_argument(
        "--overhead",
        default=None,
        metavar="OVERHEAD_JSON",
        help="pool-boundary overhead artifact (or a BENCH_study.json "
        "with an 'overhead' section) to gate as well",
    )
    parser.add_argument(
        "--min-corpus-reduction",
        type=float,
        default=10.0,
        help="required ratio of full-corpus pickle bytes to spec "
        "bootstrap bytes (default 10)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.bench) as fh:
            ops = measured_ops(json.load(fh))
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: unreadable input: {exc}", file=sys.stderr)
        return 2

    failed = False
    if args.overhead:
        try:
            with open(args.overhead) as fh:
                overhead_doc = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: unreadable overhead input: {exc}", file=sys.stderr)
            return 2
        if check_overhead(overhead_doc, args.min_corpus_reduction):
            failed = True
    checked = 0
    for name, (section, field) in sorted(BASELINE_KEYS.items()):
        expected = baseline.get(section, {}).get(field)
        measured = ops.get(name)
        if expected is None or measured is None:
            print(f"skip: {name} (no baseline or no measurement)")
            continue
        checked += 1
        floor = expected * (1.0 - args.tolerance)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"{verdict}: {name} {measured:.1f} ops/s "
            f"(baseline {expected:.1f}, floor {floor:.1f})"
        )
        if measured < floor:
            failed = True
    if checked == 0:
        print("error: nothing to check — wrong bench file?", file=sys.stderr)
        return 2
    if failed:
        print(
            "FAIL: benchmark regression vs baseline "
            f"(tolerance {args.tolerance:.0%})",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {checked} benchmark(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
