#!/usr/bin/env python
"""Validate a telemetry export against a checked-in JSON schema.

Usage:
    python tools/validate_telemetry.py SCHEMA DOCUMENT [DOCUMENT ...]

Exits 0 when every document conforms, 1 otherwise (each violation is
printed with a JSON-pointer-style path).

Implements only the subset of JSON Schema the schemas under ``schemas/``
use — ``type``, ``required``, ``properties``, ``additionalProperties``
(as a schema for unlisted keys), ``items``, ``enum`` and ``minimum`` —
so the repo needs no third-party ``jsonschema`` dependency.  Keywords
outside that subset are rejected loudly rather than ignored: a schema
author adding ``pattern`` must extend the validator, not silently lose
the check.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Iterator, List

_SUPPORTED = {
    "$comment",
    "additionalProperties",
    "enum",
    "items",
    "minimum",
    "properties",
    "required",
    "type",
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[expected])


def iter_violations(value: Any, schema: dict, path: str = "$") -> Iterator[str]:
    """Yield one message per schema violation under ``value``."""
    unsupported = set(schema) - _SUPPORTED
    if unsupported:
        raise ValueError(
            f"{path}: schema uses unsupported keyword(s) "
            f"{sorted(unsupported)}; extend tools/validate_telemetry.py"
        )

    if "enum" in schema and value not in schema["enum"]:
        yield f"{path}: {value!r} not in {schema['enum']!r}"
        return
    if "type" in schema and not _type_ok(value, schema["type"]):
        yield (
            f"{path}: expected {schema['type']}, "
            f"got {type(value).__name__}"
        )
        return
    if "minimum" in schema and isinstance(value, (int, float)):
        if not isinstance(value, bool) and value < schema["minimum"]:
            yield f"{path}: {value!r} < minimum {schema['minimum']!r}"

    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                yield f"{path}: missing required property {key!r}"
        properties = schema.get("properties", {})
        for key, subschema in properties.items():
            if key in value:
                yield from iter_violations(
                    value[key], subschema, f"{path}.{key}"
                )
        extra_schema = schema.get("additionalProperties")
        if isinstance(extra_schema, dict):
            for key, item in value.items():
                if key not in properties:
                    yield from iter_violations(
                        item, extra_schema, f"{path}.{key}"
                    )

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            yield from iter_violations(
                item, schema["items"], f"{path}[{index}]"
            )


def validate_file(schema_path: str, document_path: str) -> List[str]:
    """All violations of ``document_path`` against ``schema_path``."""
    with open(schema_path) as fh:
        schema = json.load(fh)
    with open(document_path) as fh:
        document = json.load(fh)
    return list(iter_violations(document, schema))


def main(argv: List[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    schema_path, documents = argv[0], argv[1:]
    status = 0
    for document_path in documents:
        violations = validate_file(schema_path, document_path)
        if violations:
            status = 1
            print(f"{document_path}: INVALID")
            for violation in violations:
                print(f"  {violation}")
        else:
            print(f"{document_path}: ok")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
