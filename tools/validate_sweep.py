#!/usr/bin/env python
"""Validate a sweep-report JSON against its checked-in schema.

Usage:
    python tools/validate_sweep.py SCHEMA REPORT [REPORT ...]
        [--min-points N] [--forbid-sign-flips]

Exits 0 when every report conforms, 1 otherwise.

Schema validation reuses the stdlib-only subset validator from
``tools/validate_telemetry.py`` — one validator, three schemas, no
third-party ``jsonschema`` dependency.  Beyond shape:

* ``--min-points N`` fails a structurally valid report covering fewer
  than N executed grid points — CI's guard that the smoke sweep really
  swept (an empty ``points`` array is schema-valid).
* ``--forbid-sign-flips`` fails when any finding's sign flipped across
  seeds; useful for pinned-configuration regression sweeps where a flip
  means the reproduction lost robustness, not that the paper did.
"""

from __future__ import annotations

import json
import os
import sys
from typing import List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from validate_telemetry import validate_file  # noqa: E402


def _flag(argv: List[str], name: str) -> bool:
    if name in argv:
        argv.remove(name)
        return True
    return False


def _option(argv: List[str], name: str):
    if name not in argv:
        return None
    index = argv.index(name)
    if index + 1 >= len(argv):
        raise SystemExit(f"{name} needs a value")
    value = argv[index + 1]
    del argv[index : index + 2]
    return value


def main(argv: List[str]) -> int:
    argv = list(argv)
    forbid_flips = _flag(argv, "--forbid-sign-flips")
    min_points = _option(argv, "--min-points")
    min_points = int(min_points) if min_points is not None else None
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    schema_path, reports = argv[0], argv[1:]
    status = 0
    for report_path in reports:
        violations = validate_file(schema_path, report_path)
        if violations:
            status = 1
            print(f"{report_path}: INVALID")
            for violation in violations:
                print(f"  {violation}")
            continue
        with open(report_path) as handle:
            report = json.load(handle)
        problems = []
        points = report.get("points", [])
        if min_points is not None and len(points) < min_points:
            problems.append(
                f"only {len(points)} point(s), expected >= {min_points}"
            )
        if forbid_flips:
            flips = [
                f"{entry['finding']} [{entry['config']}]"
                for entry in report.get("stability", [])
                if entry.get("sign_flip")
            ]
            if flips:
                problems.append(f"sign flips: {flips}")
        if problems:
            status = 1
            print(f"{report_path}: valid shape, but FAILED ({problems})")
        else:
            print(f"{report_path}: ok ({len(points)} point(s))")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
