#!/usr/bin/env python
"""Assert result-store hit-rate invariants from a metrics export.

Usage::

    python tools/check_store_hits.py METRICS_JSON --min-hit-rate 0.95
    python tools/check_store_hits.py METRICS_JSON --expect-no-hits

Reads the flat metrics JSON written by ``repro study --metrics-out`` and
checks the ``store.units.hit`` / ``store.units.miss`` counters.  CI uses
this twice: a warm re-run must hit at least ``--min-hit-rate`` of its
units (the incremental contract: <5 % of units re-executed), and a
configuration-perturbed run must hit **none** (the invalidation
contract: changed fingerprints never serve stale results).

Stdlib-only.  Exit status: 0 when the invariant holds, 1 when it does
not, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="metrics JSON from --metrics-out")
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        help="fail when unit hits / (hits + misses) is below this",
    )
    parser.add_argument(
        "--expect-no-hits",
        action="store_true",
        help="fail when any unit hit was recorded (invalidation check)",
    )
    args = parser.parse_args(argv)
    if args.min_hit_rate is None and not args.expect_no_hits:
        parser.error("give --min-hit-rate and/or --expect-no-hits")

    try:
        with open(args.metrics) as fh:
            counters = json.load(fh)["counters"]
        hits = float(counters.get("store.units.hit", 0))
        misses = float(counters.get("store.units.miss", 0))
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: unreadable metrics file: {exc}", file=sys.stderr)
        return 2

    total = hits + misses
    rate = hits / total if total else 0.0
    print(
        f"store units: {hits:g} hit(s), {misses:g} miss(es) "
        f"(hit rate {rate:.1%})"
    )

    if args.expect_no_hits and hits > 0:
        print(
            f"FAIL: expected zero store hits (invalidation), got {hits:g}",
            file=sys.stderr,
        )
        return 1
    if args.min_hit_rate is not None:
        if total == 0:
            print(
                "FAIL: no store lookups recorded — was --store passed?",
                file=sys.stderr,
            )
            return 1
        if rate < args.min_hit_rate:
            print(
                f"FAIL: hit rate {rate:.1%} below required "
                f"{args.min_hit_rate:.1%}",
                file=sys.stderr,
            )
            return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
