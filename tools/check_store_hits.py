#!/usr/bin/env python
"""Assert result-store hit-rate invariants from a metrics export.

Usage::

    python tools/check_store_hits.py METRICS_JSON --min-hit-rate 0.95
    python tools/check_store_hits.py METRICS_JSON --expect-no-hits
    python tools/check_store_hits.py METRICS_JSON \\
        --stage-cold dynamic.detect --min-stage-hit-rate 0.95

Reads the flat metrics JSON written by ``repro study --metrics-out`` and
checks the ``store.units.hit`` / ``store.units.miss`` counters.  CI uses
this twice: a warm re-run must hit at least ``--min-hit-rate`` of its
units (the incremental contract: <5 % of units re-executed), and a
configuration-perturbed run must hit **none** (the invalidation
contract: changed fingerprints never serve stale results).

Stage-level flags extend the contract to partial recomputation
(DESIGN.md §15): ``--stage-cold KIND.STAGE`` asserts the named stage
recorded zero hits and at least one miss (the config flip invalidated
it), and ``--min-stage-hit-rate`` bounds the hit rate over the
``store.stage.*`` per-stage counters — with every ``--stage-cold`` stage
excluded from the aggregate, so a flip re-run must serve essentially all
*other* stages from the store.

Stdlib-only.  Exit status: 0 when the invariant holds, 1 when it does
not, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys


def _stage_tallies(counters: dict) -> dict:
    """``{kind.stage: [hits, misses]}`` from the per-stage counters."""
    tallies: dict = {}
    for name, value in counters.items():
        if not name.startswith("store.stage."):
            continue
        stage, _, outcome = name[len("store.stage.") :].rpartition(".")
        if outcome not in ("hit", "miss"):
            continue
        entry = tallies.setdefault(stage, [0.0, 0.0])
        entry[0 if outcome == "hit" else 1] += float(value)
    return tallies


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="metrics JSON from --metrics-out")
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        help="fail when unit hits / (hits + misses) is below this",
    )
    parser.add_argument(
        "--expect-no-hits",
        action="store_true",
        help="fail when any unit hit was recorded (invalidation check)",
    )
    parser.add_argument(
        "--stage-cold",
        action="append",
        default=[],
        metavar="KIND.STAGE",
        help="assert this stage recorded zero hits and at least one miss "
        "(repeatable); cold stages are excluded from --min-stage-hit-rate",
    )
    parser.add_argument(
        "--min-stage-hit-rate",
        type=float,
        default=None,
        help="fail when stage hits / (hits + misses) — over all stages "
        "not named by --stage-cold — is below this",
    )
    args = parser.parse_args(argv)
    if (
        args.min_hit_rate is None
        and not args.expect_no_hits
        and not args.stage_cold
        and args.min_stage_hit_rate is None
    ):
        parser.error(
            "give --min-hit-rate, --expect-no-hits, --stage-cold and/or "
            "--min-stage-hit-rate"
        )

    try:
        with open(args.metrics) as fh:
            counters = json.load(fh)["counters"]
        hits = float(counters.get("store.units.hit", 0))
        misses = float(counters.get("store.units.miss", 0))
        stages = _stage_tallies(counters)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: unreadable metrics file: {exc}", file=sys.stderr)
        return 2

    total = hits + misses
    rate = hits / total if total else 0.0
    print(
        f"store units: {hits:g} hit(s), {misses:g} miss(es) "
        f"(hit rate {rate:.1%})"
    )

    if args.expect_no_hits and hits > 0:
        print(
            f"FAIL: expected zero store hits (invalidation), got {hits:g}",
            file=sys.stderr,
        )
        return 1
    if args.min_hit_rate is not None:
        if total == 0:
            print(
                "FAIL: no store lookups recorded — was --store passed?",
                file=sys.stderr,
            )
            return 1
        if rate < args.min_hit_rate:
            print(
                f"FAIL: hit rate {rate:.1%} below required "
                f"{args.min_hit_rate:.1%}",
                file=sys.stderr,
            )
            return 1

    for stage in args.stage_cold:
        stage_hits, stage_misses = stages.get(stage, (0.0, 0.0))
        print(
            f"stage {stage}: {stage_hits:g} hit(s), "
            f"{stage_misses:g} miss(es)"
        )
        if stage_hits > 0:
            print(
                f"FAIL: stage {stage} expected cold, got "
                f"{stage_hits:g} hit(s)",
                file=sys.stderr,
            )
            return 1
        if stage_misses == 0:
            print(
                f"FAIL: stage {stage} recorded no lookups — wrong stage "
                "name, or the run never consulted the store",
                file=sys.stderr,
            )
            return 1

    if args.min_stage_hit_rate is not None:
        cold = set(args.stage_cold)
        warm_hits = sum(h for s, (h, _) in stages.items() if s not in cold)
        warm_misses = sum(m for s, (_, m) in stages.items() if s not in cold)
        warm_total = warm_hits + warm_misses
        warm_rate = warm_hits / warm_total if warm_total else 0.0
        print(
            f"store stages (excluding cold): {warm_hits:g} hit(s), "
            f"{warm_misses:g} miss(es) (hit rate {warm_rate:.1%})"
        )
        if warm_total == 0:
            print(
                "FAIL: no stage lookups recorded — was --store passed?",
                file=sys.stderr,
            )
            return 1
        if warm_rate < args.min_stage_hit_rate:
            print(
                f"FAIL: stage hit rate {warm_rate:.1%} below required "
                f"{args.min_stage_hit_rate:.1%}",
                file=sys.stderr,
            )
            return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
