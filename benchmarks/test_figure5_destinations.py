"""Figure 5 — per-app pinned vs not-pinned destinations, first/third party.

Paper shapes: apps pin selectively (only a handful pin everything they
contact); the majority of pinned destinations are third-party; Android
apps that contact first-party domains almost always pin them.
"""

from repro.core.analysis.destinations import summarize_destinations


def test_figure5_destinations(results, benchmark):
    profiles = benchmark(results.destination_profiles)
    table = results.figure5()
    print("\n" + "\n".join(table.render().splitlines()[:25]))

    summary = summarize_destinations(profiles)
    assert summary.pinning_apps > 0

    # Selective pinning: fewer than half of pinning apps pin every domain
    # they contact (paper: 5 of ~76 Android, 4 of ~139 iOS).
    assert summary.apps_pinning_all_domains < summary.pinning_apps / 2

    # Third-party pinned destinations outnumber first-party ones.
    assert (
        summary.pinned_destinations_third >= summary.pinned_destinations_first
    )

    # Android apps with first-party pins usually pin all their first-party
    # domains that are pinned at all — at minimum, first-party pinning is
    # widespread among pinners.
    assert summary.apps_with_first_party_pins > 0
    assert summary.apps_with_third_party_pins > 0
