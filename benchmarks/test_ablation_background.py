"""Ablation — iOS associated-domains exclusion (Section 4.5).

Without the exclusion, OS-initiated associated-domain verification (which
distrusts the user-installed proxy CA) is indistinguishable from app
pinning and produces false positives.
"""

from repro.core.dynamic.detector import detect_pinned_destinations
from repro.device.ios import APPLE_BACKGROUND_DOMAINS


def test_exclusion_prevents_false_positives(results, corpus, benchmark):
    def evaluate():
        with_fp = without_fp = 0
        apps = {
            p.app.app_id: p for p in corpus.dataset("ios", "common")
        }
        for result in results.dynamic_results[("ios", "common")]:
            app = apps[result.app_id].app
            gt = {
                u.hostname
                for u in app.behavior.usages_within(30)
                if app.pins_domain(u.hostname)
            }
            # Re-detect without any exclusions (Apple domains kept out so
            # we isolate the associated-domains effect).
            verdicts = detect_pinned_destinations(
                result.direct_capture,
                result.mitm_capture,
                excluded_domains=APPLE_BACKGROUND_DOMAINS,
            )
            no_exclusion = {d for d, v in verdicts.items() if v.pinned}
            without_fp += len(no_exclusion - gt)
            with_fp += len(result.pinned_destinations - gt)
        return with_fp, without_fp

    with_fp, without_fp = benchmark(evaluate)
    print(
        f"\nfalse positives — with exclusion: {with_fp}, "
        f"without: {without_fp}"
    )
    assert with_fp == 0
    # Apps that were not re-run with the 2-minute wait and declare
    # associated domains would be falsely flagged.
    assert without_fp >= with_fp
