"""Table 8 — weak ciphers in pinned vs all connections.

Paper: iOS overall 82.6–95.2% (the iOS 13 system stack advertised 3DES),
dropping to ~46–56% on pinned connections; Android overall 3.1–18.3%,
dropping to ~0–1.5% on pinned connections except the Common anomaly
(23.4%).
"""


def test_table8_ciphers(results, benchmark):
    table = benchmark(results.table8)
    print("\n" + table.render())

    rates = {
        (row[0], row[1]): (
            float(row[2].rstrip("%")),
            float(row[3].rstrip("%")),
        )
        for row in table.rows
    }

    # iOS overall far above Android overall in every dataset.
    for dataset in ("Common", "Popular", "Random"):
        assert rates[(dataset, "iOS")][0] > rates[(dataset, "Android")][0] + 30

    # iOS pinned connections drop weak ciphers relative to overall
    # (aggregate — per-dataset cells carry small-sample noise).
    ios_overall = [v[0] for k, v in rates.items() if k[1] == "iOS"]
    ios_pinned = [v[1] for k, v in rates.items() if k[1] == "iOS"]
    assert sum(ios_pinned) < sum(ios_overall)

    # Android Popular/Random pinned connections are nearly weak-free.
    assert rates[("Popular", "Android")][1] < 15
    assert rates[("Random", "Android")][1] < 15
