"""Ablation — seed stability of the headline result.

The reproduction's claims should not hinge on one lucky seed: across
seeds, iOS popular apps pin more than Android popular apps and the static
technique over-reports relative to dynamic.
"""

from repro.core.analysis import Study
from repro.corpus import CorpusConfig, CorpusGenerator


def test_headline_shape_stable_across_seeds(benchmark):
    def run_seeds():
        shapes = []
        for seed in (1, 2, 3):
            corpus = CorpusGenerator(
                CorpusConfig(seed=seed).scaled(0.08)
            ).generate()
            results = Study(corpus).run()
            cells = results._prevalence_cells()
            shapes.append(
                {
                    "ios_gt_android": cells[("ios", "popular")]["dynamic"].rate
                    >= cells[("android", "popular")]["dynamic"].rate,
                    "static_gt_dynamic": all(
                        cell["embedded"].rate >= cell["dynamic"].rate
                        for cell in cells.values()
                    ),
                    "popular_gt_random": all(
                        cells[(p, "popular")]["dynamic"].rate
                        >= cells[(p, "random")]["dynamic"].rate
                        for p in ("android", "ios")
                    ),
                }
            )
        return shapes

    shapes = benchmark.pedantic(run_seeds, rounds=1, iterations=1)
    for shape in shapes:
        assert shape["ios_gt_android"]
        assert shape["static_gt_dynamic"]
        assert shape["popular_gt_random"]
