"""Benchmark fixtures.

The corpus and the full study run once per session (expensive); each
benchmark then times its table/figure computation and asserts the paper's
shape on the results.  ``REPRO_BENCH_SCALE`` (default 0.25 — ~1,290 apps)
controls corpus size; set it to 1.0 for the paper-scale run.
"""

import os

import pytest

from repro.core.analysis import Study
from repro.corpus import CorpusConfig, CorpusGenerator

BENCH_SEED = 2022
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def corpus():
    config = CorpusConfig(seed=BENCH_SEED)
    if BENCH_SCALE != 1.0:
        config = config.scaled(BENCH_SCALE)
    return CorpusGenerator(config).generate()


@pytest.fixture(scope="session")
def study(corpus):
    return Study(corpus)


@pytest.fixture(scope="session")
def results(study):
    return study.run()


def pytest_collection_modifyitems(config, items):
    """Everything under benchmarks/ carries the opt-in ``bench`` marker.

    Tier-1 (`pytest` from the repo root) only collects ``tests/``; the
    marker makes the split explicit and filterable (``-m "not bench"``)
    even when both trees are collected together.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)
