"""Table 6 — PKI type at pinned destinations (paper: Android 163 default /
4 custom; iOS 238 default / 1 custom; plus one self-signed case per
platform)."""

from repro.core.analysis.certificates import self_signed_validity_years


def test_table6_pki(results, corpus, benchmark):
    table = benchmark(results.table6)
    print("\n" + table.render())

    for row in table.rows:
        platform, default, custom, self_signed = row
        # Default PKI dominates overwhelmingly.
        assert default >= 5 * max(custom, 1)
        assert custom + self_signed <= default

    # The self-signed oddities are long-lived (paper: 27 and 10 years).
    years = []
    for platform in ("android", "ios"):
        years += self_signed_validity_years(
            corpus, results.all_dynamic(platform)
        )
    for value in years:
        assert value >= 5.0
