"""Figure 4 — apps pinning exclusively on one platform.

Paper: of 20 Android-only pinners, 10 are inconsistent (their pinned
domains show up unpinned on iOS) and 10 inconclusive; of 22 iOS-only,
7 and 15.  Inconsistent exclusives overwhelmingly have *all* their pinned
domains unpinned on the other platform.
"""


def test_figure4_exclusive(results, benchmark):
    figure4a, figure4b = benchmark(results.figure4)
    print("\n" + figure4a.render())
    print("\n" + figure4b.render())

    classifications = [c for _, c in results.pair_classifications()]
    android_only = [c for c in classifications if c.pins_android and not c.pins_ios]
    ios_only = [c for c in classifications if c.pins_ios and not c.pins_android]

    assert android_only and ios_only

    # Both inconsistent and inconclusive exclusives exist (scale permitting).
    for group, cross in (
        (android_only, "android_cross_unpinned"),
        (ios_only, "ios_cross_unpinned"),
    ):
        verdicts = {c.verdict for c in group}
        assert verdicts <= {"inconsistent", "inconclusive"}
        for c in group:
            if c.verdict == "inconsistent":
                # Figure 4: inconsistent exclusives show 100% of pinned
                # domains unpinned cross-platform in most rows.
                assert getattr(c, cross) > 0
