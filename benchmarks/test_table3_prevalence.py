"""Table 3 — the headline: pinning prevalence by technique × dataset ×
platform.

Paper values (count over dataset):

==========  ========  =========  ==========  =====
Dataset     Platform  Dynamic    Embedded    NSC
==========  ========  =========  ==========  =====
Common      Android   8.17%      26.96%      2.78%
Common      iOS       8.52%      22.96%      —
Popular     Android   6.7%       19.7%       1.8%
Popular     iOS       11.4%      33.4%       —
Random      Android   0.9%       9.9%        0.6%
Random      iOS       2.5%       9.5%        —
==========  ========  =========  ==========  =====
"""

import pytest

from repro.corpus.profiles import DATASET_PROFILES


def test_table3_prevalence(results, benchmark):
    table = benchmark(results.table3)
    print("\n" + table.render())

    cells = results._prevalence_cells()

    # Shape 1: iOS pins more than Android in every dataset.
    for dataset in ("common", "popular", "random"):
        assert (
            cells[("ios", dataset)]["dynamic"].rate
            >= cells[("android", dataset)]["dynamic"].rate
        )

    # Shape 2: static (embedded) >> dynamic >> NSC everywhere.
    for key, cell in cells.items():
        assert cell["embedded"].rate > cell["dynamic"].rate
        if key[0] == "android":
            assert cell["nsc"].rate <= cell["dynamic"].rate

    # Shape 3: Popular >> Random on both platforms.
    for platform in ("android", "ios"):
        assert (
            cells[(platform, "popular")]["dynamic"].rate
            > cells[(platform, "random")]["dynamic"].rate
        )

    # Magnitudes: within a factor of ~2 of the paper's rates.
    for key, cell in cells.items():
        target = DATASET_PROFILES[key].dynamic_pin_rate
        measured = cell["dynamic"].rate
        assert measured == pytest.approx(target, rel=0.6, abs=0.02), key
