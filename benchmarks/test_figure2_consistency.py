"""Figure 2 — Common-dataset consistency classes.

Paper (n=575): 69 apps pin on at least one platform; 27 pin on both
(15 consistent, of which 13 identical; 6 inconsistent; 6 inconclusive);
20 Android-only (10/10 inconsistent/inconclusive); 22 iOS-only (7/15).
"""

from repro.core.analysis.consistency import summarize_pairs


def test_figure2_consistency(results, benchmark):
    table = benchmark(results.figure2)
    print("\n" + table.render())

    summary = summarize_pairs([c for _, c in results.pair_classifications()])
    n = len(results.corpus.common_pairs())

    assert summary.total_pinning_either > 0
    # Partition holds.
    assert (
        summary.pins_both + summary.android_only + summary.ios_only
        == summary.total_pinning_either
    )
    # Roughly 12% of Common apps pin somewhere (69/575).
    rate = summary.total_pinning_either / n
    assert 0.05 < rate < 0.25

    # Fewer than ~2/3 of both-platform pinners are fully consistent
    # (paper: 15/27 ≈ 56%), and identical sets are the majority of the
    # consistent ones (13/15).
    if summary.pins_both >= 4:
        assert summary.both_consistent <= 0.75 * summary.pins_both
        assert summary.both_identical >= summary.both_consistent / 2

    # Exclusive pinners exist on both sides.
    assert summary.android_only > 0
    assert summary.ios_only > 0
