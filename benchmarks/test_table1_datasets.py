"""Table 1 — dataset category composition."""


def test_table1_datasets(results, benchmark):
    table = benchmark(results.table1)
    print("\n" + table.render())

    # Shape: "Games" is the top category of the Popular sets on both
    # platforms (and of Common), as in Table 1.
    top = {
        (row[0], row[1]): row[3]
        for row in table.rows
        if row[2] == 1
    }
    assert top[("android", "popular")] == "Games"
    assert top[("ios", "popular")] == "Games"
    assert top[("android", "common")] == "Games"
    # Random Android's head is Education/Games territory, never Finance.
    assert top[("android", "random")] in ("Education", "Games")
