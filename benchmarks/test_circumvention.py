"""Section 4.3 — pinning circumvention rates.

Paper: Frida hooks disabled validation for ~51.51% of unique pinned
destinations on Android and ~66.15% on iOS; the remainder use custom TLS
stacks with no public hook points.
"""


def test_circumvention_rates(results, benchmark):
    def rates():
        return (
            results.circumvention_rate("android"),
            results.circumvention_rate("ios"),
        )

    android, ios = benchmark(rates)
    print(f"\ncircumvention: android={android:.2%} ios={ios:.2%} "
          "(paper: 51.51% / 66.15%)")

    # Roughly half of Android pinned destinations fall to hooks...
    assert 0.30 < android < 0.75
    # ...and roughly two-thirds on iOS, which trends higher.
    assert 0.45 < ios < 0.90
    assert ios >= android - 0.03
