"""Microbenchmarks of the pool boundary itself.

Measures the three costs the engine pays to distribute work — and that
the spec bootstrap and payload codec exist to shrink:

* **corpus bootstrap** — bytes a worker's ``initargs`` cost under the
  spec bootstrap versus pickling the full corpus (asserted ≥ 10×
  smaller), plus the wall time of a cold spec rebuild (what a spawn
  worker pays once);
* **result payloads** — encoded bytes over the boundary versus pickling
  the result objects directly, per unit kind (asserted never larger);
* **end-to-end overhead** — worker init seconds and IPC byte counters
  from an instrumented forced-pool run.

Set ``REPRO_BENCH_OVERHEAD_OUT=<path>`` to write the collected figures
as a JSON artifact (CI uploads it and gates on it via
``tools/check_bench_regression.py --overhead``).

On a single-CPU runner the parallel-beats-serial assertion lives in
``test_study_parallel.py``; this module's figures are machine-shaped but
its assertions (byte ratios) are not, so everything here runs anywhere.
"""

import json
import os
import pickle
import time

import pytest

import repro.core.exec.engine as engine_mod
from repro.core.exec import WorkerBootstrap
from repro.core.exec.engine import _build_state, _run_unit
from repro.core.exec.payload import encode_unit
from repro.corpus import CorpusConfig, CorpusGenerator

SCALE = float(os.environ.get("REPRO_BENCH_PARALLEL_SCALE", "0.05"))


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(CorpusConfig(seed=2022).scaled(SCALE)).generate()


@pytest.fixture(scope="module")
def collected():
    """Figures accumulated across tests, written once at session end."""
    return {}


@pytest.fixture(scope="module", autouse=True)
def _write_artifact(collected):
    yield
    out = os.environ.get("REPRO_BENCH_OVERHEAD_OUT")
    if out:
        collected["scale"] = SCALE
        collected["cpu_count"] = os.cpu_count()
        with open(out, "w") as fh:
            json.dump(collected, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\noverhead artifact written to {out}")


def test_spec_bootstrap_shrinks_initargs(corpus, collected):
    bootstrap = WorkerBootstrap.for_corpus(corpus)
    full = len(pickle.dumps(corpus))
    spec_bytes = bootstrap.payload_bytes()
    reduction = full / max(1, spec_bytes)
    collected["corpus_bootstrap_bytes"] = spec_bytes
    collected["full_corpus_pickle_bytes"] = full
    collected["corpus_bytes_reduction"] = round(reduction, 1)
    print(
        f"\nbootstrap: {spec_bytes} B spec vs {full} B corpus pickle "
        f"({reduction:.0f}x)"
    )
    assert reduction >= 10.0


def test_cold_rebuild_cost(corpus, collected, monkeypatch):
    """What a spawn-platform worker pays once: spec rebuild + verify."""
    monkeypatch.setattr(engine_mod, "_PARENT_CORPUS", None)
    bootstrap = WorkerBootstrap.for_corpus(corpus)
    started = time.perf_counter()
    rebuilt, how = bootstrap.resolve()
    rebuild_s = time.perf_counter() - started
    assert how == "rebuilt"
    assert rebuilt.seed == corpus.seed
    collected["cold_rebuild_s"] = round(rebuild_s, 3)
    print(f"\ncold spec rebuild: {rebuild_s:.3f}s at scale {SCALE}")


def test_fork_inheritance_is_free(corpus, collected, monkeypatch):
    """What a fork-platform worker pays: a fingerprint check."""
    monkeypatch.setattr(engine_mod, "_PARENT_CORPUS", corpus)
    bootstrap = WorkerBootstrap.for_corpus(corpus)
    started = time.perf_counter()
    resolved, how = bootstrap.resolve()
    inherit_s = time.perf_counter() - started
    assert how == "inherited"
    assert resolved is corpus
    collected["fork_inherit_s"] = round(inherit_s, 5)
    print(f"\nfork inheritance: {inherit_s * 1000:.2f}ms")


@pytest.mark.parametrize(
    "kind,extra", [("static", None), ("dynamic", 0.0)]
)
def test_payload_encoding_never_larger(corpus, collected, kind, extra):
    state = _build_state(corpus, 30.0)
    indices = tuple(range(min(8, len(corpus.dataset("android", "common")))))
    results = _run_unit(state, (kind, "android", "common", indices, extra))
    plain = len(pickle.dumps(results))
    encoded = len(pickle.dumps(encode_unit(kind, results)))
    collected[f"payload_{kind}_plain_bytes"] = plain
    collected[f"payload_{kind}_encoded_bytes"] = encoded
    print(
        f"\n{kind} unit ({len(indices)} apps): {encoded} B encoded "
        f"vs {plain} B plain ({plain / max(1, encoded):.1f}x)"
    )
    assert encoded <= plain
