"""Figure 3 — inconsistent pinning among both-platform pinners.

Paper heat-map rows: Jaccard overlaps of 0.5 / 0.25 / 0, with per-side
"% of pinned domains unpinned on the other platform" values.
"""


def test_figure3_both_platform(results, benchmark):
    table = benchmark(results.figure3)
    print("\n" + table.render())

    classifications = [
        c
        for _, c in results.pair_classifications()
        if c.pins_both and c.verdict == "inconsistent"
    ]
    assert classifications, "some both-platform inconsistency must exist"
    for c in classifications:
        # Inconsistency means at least one direction has cross-unpinned
        # domains.
        assert c.android_cross_unpinned > 0 or c.ios_cross_unpinned > 0
        assert 0.0 <= c.jaccard < 1.0

    # The paper sees a mix of overlapping (Jaccard > 0) and disjoint
    # (Jaccard = 0) inconsistent pairs.
    jaccards = [c.jaccard for c in classifications]
    if len(jaccards) >= 3:
        assert any(j > 0 for j in jaccards)
        assert any(j == 0 for j in jaccards)
