"""Table 2 (reprise) — prior-work NSC technique vs this work's dynamic
analysis, on identical datasets.

The paper's abstract: "we find certificate pinning as much as 4 times
more widely adopted than reported in recent studies."
"""


def test_table2_prior_work(results, benchmark):
    table = benchmark(results.table2)
    print("\n" + table.render())

    cells = results._prevalence_cells()
    for dataset in ("common", "popular"):
        cell = cells[("android", dataset)]
        assert cell["nsc"].rate > 0, "NSC technique should find something"
        ratio = cell["dynamic"].rate / cell["nsc"].rate
        # Paper: dynamic finds up to 4x more than the NSC technique.
        assert ratio >= 1.5, (dataset, ratio)
