"""Table 4 — top pinning categories on Android (paper: Finance 22.99%,
Social 17.81%, ... with Finance rank 1)."""


def test_table4_android_categories(results, benchmark):
    table = benchmark(results.table4)
    print("\n" + table.render())

    assert table.rows, "some Android categories must pin"
    categories = [row[0].split(" (")[0] for row in table.rows]
    # Finance leads (or is near the top); Games never appears.
    assert "Finance" in categories[:3]
    assert "Games" not in categories

    # Finance pinning prevalence is several times the platform average.
    finance_rate = next(
        float(row[1].rstrip("%")) for row in table.rows
        if row[0].startswith("Finance")
    )
    dynamic = results.dynamic_by_app("android")
    overall = 100 * sum(1 for r in dynamic.values() if r.pins()) / len(dynamic)
    assert finance_rate > 2 * overall
