"""Pipeline micro-benchmarks: per-app costs of each stage.

These time the work units the study scales with: one static scan, one
two-setting dynamic run, one handshake.
"""

import itertools

from repro.core.dynamic.pipeline import DynamicPipeline
from repro.core.static.pipeline import StaticPipeline
from repro.tls.handshake import ClientProfile, perform_handshake
from repro.tls.policy import SystemValidationPolicy
from repro.util.simtime import STUDY_START


def test_static_scan_per_app(corpus, benchmark):
    pipeline = StaticPipeline(corpus.registry.ctlog)
    apps = corpus.dataset("android", "popular")
    cycle = itertools.cycle(apps)

    def scan_one():
        return pipeline.analyze_app(next(cycle))

    report = benchmark(scan_one)
    assert report.app_id


def test_dynamic_run_per_app(corpus, benchmark):
    pipeline = DynamicPipeline(corpus)
    apps = corpus.dataset("android", "popular")
    cycle = itertools.cycle(apps[:20])

    def run_one():
        return pipeline.run_app(next(cycle))

    result = benchmark(run_one)
    assert result.verdicts


def test_handshake_throughput(corpus, benchmark):
    endpoint = next(iter(corpus.registry))
    client = ClientProfile(
        sni=endpoint.hostname,
        policy=SystemValidationPolicy(corpus.stores.android_aosp),
    )

    def handshake():
        return perform_handshake(client, endpoint, STUDY_START)

    outcome = benchmark(handshake)
    assert outcome.version is not None
