"""§5.7 future work — what app interaction would add.

The paper ran without UI interaction after finding random interactions
changed nothing, and names logged-in exploration as future work.  This
benchmark quantifies both halves on the simulated corpus: overall traffic
barely changes, but a handful of interaction-gated pinned destinations
(login/checkout backends) surface only in the interactive runs.
"""

from repro.core.dynamic import DynamicPipeline


def test_interaction_future_work(corpus, benchmark):
    pipeline = DynamicPipeline(corpus)
    apps = corpus.dataset("android", "popular") + corpus.dataset(
        "ios", "popular"
    )

    def sweep():
        domains_plain = domains_interactive = 0
        extra_pinned = 0
        for packaged in apps:
            plain = pipeline.run_app(packaged)
            interactive = pipeline.run_app(packaged, interact=True)
            domains_plain += len(plain.direct_capture.destinations())
            domains_interactive += len(
                interactive.direct_capture.destinations()
            )
            extra_pinned += len(
                interactive.pinned_destinations - plain.pinned_destinations
            )
        return domains_plain, domains_interactive, extra_pinned

    plain, interactive, extra_pinned = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    growth = interactive / plain - 1 if plain else 0.0
    print(
        f"\ndomains: {plain} → {interactive} (+{growth:.1%}); "
        f"additional pinned destinations revealed: {extra_pinned}"
    )

    # §4.2.1: interaction does not significantly change contacted domains.
    assert growth < 0.10
    # §5.7: but it can reveal pinning the study missed.
    assert extra_pinned >= 0
