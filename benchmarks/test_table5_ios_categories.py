"""Table 5 — top pinning categories on iOS (paper: Finance 20.63%,
Shopping 16.48%, Travel 13.48%, ...)."""


def test_table5_ios_categories(results, benchmark):
    table = benchmark(results.table5)
    print("\n" + table.render())

    assert table.rows
    categories = [row[0].split(" (")[0] for row in table.rows]
    assert "Finance" in categories[:3]
    assert "Games" not in categories

    finance_rate = next(
        float(row[1].rstrip("%")) for row in table.rows
        if row[0].startswith("Finance")
    )
    dynamic = results.dynamic_by_app("ios")
    overall = 100 * sum(1 for r in dynamic.values() if r.pins()) / len(dynamic)
    assert finance_rate > 1.5 * overall
