"""Table 7 — third-party frameworks embedding certificates.

Paper top-5: Android — Twitter 29, Braintree 27, Paypal 25, Perimeterx 9,
MParticle 9; iOS — Amplitude 45, Stripe 34, Weibo 24, FraudForce 16,
Adobe Creative Cloud 13.
"""

ANDROID_EXPECTED = {"Twitter", "Braintree", "Paypal", "Perimeterx", "MParticle"}
IOS_EXPECTED = {"Amplitude", "Stripe", "Weibo", "FraudForce", "Adobe Creative Cloud"}


def test_table7_frameworks(results, benchmark):
    table = benchmark(results.table7)
    print("\n" + table.render())

    android = [row[1] for row in table.rows if row[0] == "Android"]
    ios = [row[1] for row in table.rows if row[0] == "iOS"]

    # Most of the paper's named frameworks surface in each platform's
    # top-5 (exact order depends on which apps the sampler drew).
    assert len(set(android) & ANDROID_EXPECTED) >= 2, android
    assert len(set(ios) & IOS_EXPECTED) >= 2, ios

    # Counts are descending within a platform.
    for rows in (
        [r for r in table.rows if r[0] == "Android"],
        [r for r in table.rows if r[0] == "iOS"],
    ):
        counts = [r[2] for r in rows]
        assert counts == sorted(counts, reverse=True)
