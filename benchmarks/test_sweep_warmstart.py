"""Sweep warm-start — cold full-detector point vs ablated sibling.

A detector-ablated sweep point differs from its full-detector sibling
only in an analysis-side knob, so every pipeline unit it needs is
already in the shared store.  This benchmark quantifies the payoff: the
warm point must hit the store for 100 % of its units and finish well
under the cold point's wall-clock.
"""

import os

from repro.core.sweep import SweepEngine, SweepSpec

SWEEP_SCALE = float(os.environ.get("REPRO_BENCH_SWEEP_SCALE", "0.08"))


def test_ablated_point_warm_starts(tmp_path, benchmark):
    spec = SweepSpec(
        seeds=(2022,), scales=(SWEEP_SCALE,), detectors=("full", "naive")
    )

    def run_sweep():
        engine = SweepEngine(spec, store_dir=str(tmp_path / "store"))
        return engine.run()

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    cold, warm = results.points
    print(
        f"\ncold (full): {cold.elapsed_s:.2f}s, "
        f"{cold.store_misses} unit(s) computed | "
        f"warm (naive): {warm.elapsed_s:.2f}s, "
        f"hit rate {warm.store_hit_rate:.0%}"
    )

    # The ablated point replays every unit from the store.
    assert warm.store_hit_rate == 1.0
    assert warm.store_misses == 0
    # Warm-start has to pay off in wall-clock, not just hit counters.
    assert warm.elapsed_s < cold.elapsed_s
