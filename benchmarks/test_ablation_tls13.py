"""Ablation — the TLS 1.3 used-connection heuristics (Section 4.2.2).

TLS 1.3 disguises every encrypted record as application data.  Without
the paper's two rules (record count > 2, or a second record that is not
alert-sized), the naive "any application-data record ⇒ used" reading
declares pinning rejections and idle connections *used* — so pinned
TLS 1.3 destinations stop looking "always failed" under MITM and the
detector loses them.
"""

from repro.core.dynamic.classify import connection_used
from repro.tls.records import TLSVersion


def test_tls13_heuristics_ablation(results, corpus, benchmark):
    def evaluate():
        correct_fn = naive_fn = tls13_pinned = 0
        for (platform, dataset), dyn_results in results.dynamic_results.items():
            apps = {p.app.app_id: p for p in corpus.dataset(platform, dataset)}
            for result in dyn_results:
                app = apps[result.app_id].app
                gt = {
                    u.hostname
                    for u in app.behavior.usages_within(30)
                    if app.pins_domain(u.hostname)
                }
                for destination in gt:
                    mitm_flows = [
                        f for f in result.mitm_capture if f.sni == destination
                    ]
                    if not mitm_flows:
                        continue
                    if not any(
                        f.version is TLSVersion.TLS13 for f in mitm_flows
                    ):
                        continue
                    tls13_pinned += 1
                    # With the heuristics: all flows unused ⇒ detectable.
                    if any(connection_used(f) for f in mitm_flows):
                        correct_fn += 1
                    # Without: the disguised alert reads as "used".
                    if any(
                        connection_used(f, tls13_heuristics=False)
                        for f in mitm_flows
                    ):
                        naive_fn += 1
        return tls13_pinned, correct_fn, naive_fn

    tls13_pinned, correct_fn, naive_fn = benchmark(evaluate)
    print(
        f"\nTLS1.3 pinned destinations under MITM: {tls13_pinned}; "
        f"missed with heuristics: {correct_fn}; "
        f"missed without: {naive_fn}"
    )

    assert tls13_pinned > 0
    # The heuristics never mistake a rejection for data.
    assert correct_fn == 0
    # The ablation loses a substantial share of TLS 1.3 pinning.
    assert naive_fn > 0.4 * tls13_pinned
