"""Telemetry overhead: off must be ~free, on must stay cheap.

Hard wall-clock assertions on shared CI runners are flaky, so the checks
layer three angles with generous slack instead of one brittle timing:

* a micro-benchmark of the telemetry-off funnel (one global read + a
  ``None`` check per call) proving the per-call cost, against the
  per-app budget implied by ``BENCH_study.json``, stays under the 2 %
  overhead target;
* an off-vs-baseline comparison of the dynamic stage against the
  checked-in benchmark record (5x slack — machines differ);
* an on-vs-off ratio for a fully instrumented serial run.

``REPRO_BENCH_PARALLEL_SCALE`` (default 0.05) sizes the corpus, matching
``test_study_parallel.py``.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core import obs
from repro.core.exec import ExecutionEngine, ExecutionPlan
from repro.corpus import CorpusConfig, CorpusGenerator

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_study.json"
TELEMETRY_SCALE = float(
    os.environ.get("REPRO_BENCH_PARALLEL_SCALE", "0.05")
)
#: Upper bound on funnel calls issued per app by the current
#: instrumentation (spans + cache events + counters, all stages).
CALLS_PER_APP = 40


@pytest.fixture(scope="module")
def quick_corpus():
    config = CorpusConfig(seed=2022).scaled(TELEMETRY_SCALE)
    return CorpusGenerator(config).generate()


def _run_dynamic_stage(corpus, recorder=None):
    """One serial dynamic pass over every dataset; returns seconds."""
    keys = sorted(corpus.datasets)
    engine = ExecutionEngine(
        corpus, ExecutionPlan(workers=1), recorder=recorder
    )
    if recorder is not None:
        recorder.install()
    try:
        watch = obs.Stopwatch()
        for key in keys:
            engine.map_dataset(
                "dynamic", key, range(len(corpus.dataset(*key))), 0.0
            )
        return watch.elapsed()
    finally:
        engine.close()
        if recorder is not None:
            recorder.uninstall()


def test_null_funnel_cost_implies_under_two_percent():
    """With no recorder, the funnel must be cheap enough that all the
    instrumentation in a per-app pipeline costs <2 % of the per-app
    budget recorded in BENCH_study.json."""
    assert obs.get_recorder() is None
    iterations = 200_000
    watch = obs.Stopwatch()
    for _ in range(iterations):
        with obs.span("bench.null", cat="bench"):
            pass
        obs.count("bench.counter")
        obs.cache_event("bench.cache", hit=True)
    per_call_s = watch.elapsed() / (3 * iterations)
    print(f"\nnull-funnel per-call: {per_call_s * 1e9:.0f} ns")
    assert per_call_s < 2e-6

    baseline = json.loads(BENCH_PATH.read_text())
    per_app_budget_s = 1.0 / baseline["serial"]["dynamic_apps_per_s"]
    overhead = CALLS_PER_APP * per_call_s
    assert overhead < 0.02 * per_app_budget_s, (
        f"{CALLS_PER_APP} calls x {per_call_s * 1e9:.0f} ns = "
        f"{overhead * 1e6:.1f} us/app exceeds 2% of the "
        f"{per_app_budget_s * 1e3:.2f} ms/app budget"
    )


def test_off_path_tracks_checked_in_baseline(quick_corpus):
    """Telemetry-off throughput within generous slack of BENCH_study.json."""
    baseline = json.loads(BENCH_PATH.read_text())
    total_apps = sum(
        len(apps) for apps in quick_corpus.datasets.values()
    )
    _run_dynamic_stage(quick_corpus)  # warm process-wide caches
    elapsed = min(_run_dynamic_stage(quick_corpus) for _ in range(2))
    apps_per_s = total_apps / elapsed
    floor = baseline["serial"]["dynamic_apps_per_s"] / 5
    print(
        f"\ndynamic stage: {apps_per_s:.0f} apps/s "
        f"(baseline {baseline['serial']['dynamic_apps_per_s']}, "
        f"floor {floor:.0f})"
    )
    assert apps_per_s >= floor


def test_recorder_on_overhead_bounded(quick_corpus):
    """A fully instrumented serial run stays within 1.5x of telemetry-off
    (the target is <2 %; the slack absorbs scheduler noise)."""
    _run_dynamic_stage(quick_corpus)  # warm process-wide caches
    off = min(_run_dynamic_stage(quick_corpus) for _ in range(2))
    on = min(
        _run_dynamic_stage(quick_corpus, obs.Recorder()) for _ in range(2)
    )
    print(f"\noff={off:.3f}s on={on:.3f}s ratio={on / off:.3f}")
    assert on <= off * 1.5 + 0.1
