"""Sections 5.3.2 / 5.3.3 / 5.3.4 — certificate-level pinning analyses.

Paper: of certificates appearing in both static and dynamic data, 80/110
are CA certificates and 30/110 leaves; 24/30 leaf pins are SPKI pins
(surviving renewals via key reuse); no app subverts standard validation
(no expired-but-accepted certificates at pinned destinations).
"""

from repro.core.analysis.certificates import (
    analyze_pin_positions,
    check_validation_subversion,
)


def test_root_vs_leaf_pins(results, corpus, benchmark):
    def analyze():
        totals = {"ca": 0, "leaf": 0, "leaf_spki": 0, "leaf_raw": 0, "apps": 0}
        for platform in ("android", "ios"):
            analysis = analyze_pin_positions(
                corpus,
                results.static_by_app(platform),
                results.all_dynamic(platform),
            )
            totals["ca"] += analysis.ca_pins
            totals["leaf"] += analysis.leaf_pins
            totals["leaf_spki"] += analysis.leaf_spki_pins
            totals["leaf_raw"] += analysis.leaf_raw_certificates
            totals["apps"] += analysis.matched_apps
        return totals

    totals = benchmark(analyze)
    print(
        f"\nCA pins: {totals['ca']}, leaf pins: {totals['leaf']} "
        f"(paper: 80 vs 30); leaf SPKI pins: {totals['leaf_spki']}, "
        f"leaf raw certificates: {totals['leaf_raw']} (paper: 24 vs 6)"
    )

    assert totals["apps"] > 0
    # CA pins dominate (paper: ~73%).
    assert totals["ca"] > totals["leaf"]
    # Among leaf pins, SPKI pins dominate raw certificates (paper: 24/30).
    if totals["leaf"] >= 5:
        assert totals["leaf_spki"] >= totals["leaf_raw"]


def test_no_validation_subversion(results, corpus, benchmark):
    def check():
        out = {}
        for platform in ("android", "ios"):
            out[platform] = check_validation_subversion(
                corpus, results.all_dynamic(platform)
            )
        return out

    checks = benchmark(check)
    for platform, check_result in checks.items():
        print(
            f"\n{platform}: {check_result.expired_accepted} expired-accepted "
            f"of {check_result.checked_destinations} pinned destinations"
        )
        assert check_result.checked_destinations > 0
        assert check_result.expired_accepted == 0
