"""Extension benchmarks: Spinner probing and NSC misconfigurations.

Both extend the paper with analyses from the related work it builds on
(Stone et al. ACSAC'17; Possemato et al. USENIX Sec'20).
"""

from repro.core.analysis.misconfig import (
    find_nsc_misconfigurations,
    misconfig_table,
)
from repro.core.analysis.spinner import spinner_scan, spinner_table


def test_spinner_probe(results, corpus, benchmark):
    def scan():
        return [
            spinner_scan(
                corpus,
                platform,
                results.all_dynamic(platform),
                corpus.stores.android_aosp
                if platform == "android"
                else corpus.stores.ios,
            )
            for platform in ("android", "ios")
        ]

    reports = benchmark(scan)
    print("\n" + spinner_table(reports).render())

    for report in reports:
        assert report.probed > 0
        # A minority of pinned destinations skip hostname checks (Stone
        # et al. found the failure class real but not universal).
        assert 0.0 <= report.vulnerability_rate < 0.5
    # The class exists somewhere in the corpus.
    assert any(r.vulnerable > 0 for r in reports)


def test_nsc_misconfigurations(results, benchmark):
    static = list(results.static_by_app("android").values())
    dynamic = results.all_dynamic("android")

    report = benchmark(find_nsc_misconfigurations, static, dynamic)
    print("\n" + misconfig_table(report).render())

    assert report.apps_with_nsc_pins > 0
    # Possemato et al.: misconfigurations exist but are a minority.
    assert 0 < report.misconfigured_count < report.apps_with_nsc_pins
    # And the neutralised pin-sets are never enforced at run time.
    for finding in report.misconfigured:
        assert finding.enforced_at_runtime is False
