"""Ablation — the differential detector vs the naive one.

The naive detector (flag any destination with a failed MITM connection)
has no baseline run and no used-connection requirement; this ablation
quantifies its false-positive rate against ground truth, which motivates
the paper's two-setting differential design (Section 4.2.2).
"""

from repro.core.dynamic.detector import naive_detect_pinned_destinations


def test_naive_detector_false_positives(results, corpus, benchmark):
    def evaluate():
        diff_fp = diff_fn = naive_fp = naive_fn = 0
        for (platform, dataset), dyn_results in results.dynamic_results.items():
            apps = {p.app.app_id: p for p in corpus.dataset(platform, dataset)}
            for result in dyn_results:
                app = apps[result.app_id].app
                gt = {
                    u.hostname
                    for u in app.behavior.usages_within(30)
                    if app.pins_domain(u.hostname)
                }
                detected = result.pinned_destinations
                diff_fp += len(detected - gt)
                diff_fn += len(gt - detected)
                naive = naive_detect_pinned_destinations(
                    result.mitm_capture, result.excluded_destinations
                )
                naive_fp += len(naive - gt)
                naive_fn += len(gt - naive)
        return diff_fp, diff_fn, naive_fp, naive_fn

    diff_fp, diff_fn, naive_fp, naive_fn = benchmark(evaluate)
    print(
        f"\ndifferential: fp={diff_fp} fn={diff_fn} | "
        f"naive: fp={naive_fp} fn={naive_fn}"
    )

    # The differential detector is (near-)exact; the naive one drowns in
    # false positives from redundant connections and transient failures.
    assert diff_fp <= 2
    assert diff_fn <= 2
    assert naive_fp > 10 * max(diff_fp, 1)
