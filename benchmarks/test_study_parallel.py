"""Serial-vs-parallel study throughput (the engine's raison d'être).

Runs the static and dynamic stages through the execution engine once
serially and once with ``PARALLEL_WORKERS`` processes, asserts result
parity, and reports per-stage throughput in apps/second.

On a machine with >= ``PARALLEL_WORKERS`` cores the parallel run must be
at least 2x faster end-to-end; on smaller machines the speedup assertion
is skipped (process scheduling cannot beat physics) but parity and the
throughput report still run.

Set ``REPRO_BENCH_WRITE=1`` to (re)generate ``BENCH_study.json`` in the
repo root.  ``REPRO_BENCH_PARALLEL_SCALE`` (default 0.05) sizes the
corpus.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.exec import ExecutionEngine, ExecutionPlan
from repro.corpus import CorpusConfig, CorpusGenerator

PARALLEL_WORKERS = 4
PARALLEL_SCALE = float(os.environ.get("REPRO_BENCH_PARALLEL_SCALE", "0.05"))


@pytest.fixture(scope="module")
def quick_corpus():
    config = CorpusConfig(seed=2022).scaled(PARALLEL_SCALE)
    return CorpusGenerator(config).generate()


def _run_stages(corpus, workers):
    """Run the static and dynamic stages under one plan; return
    ``(static_reports, dynamic_results, static_s, dynamic_s)``."""
    keys = sorted(corpus.datasets)
    with ExecutionEngine(corpus, ExecutionPlan(workers=workers)) as engine:
        started = time.perf_counter()
        static = {
            key: engine.map_dataset(
                "static", key, range(len(corpus.dataset(*key)))
            )
            for key in keys
        }
        static_s = time.perf_counter() - started
        started = time.perf_counter()
        dynamic = {
            key: engine.map_dataset(
                "dynamic", key, range(len(corpus.dataset(*key))), 0.0
            )
            for key in keys
        }
        dynamic_s = time.perf_counter() - started
    return static, dynamic, static_s, dynamic_s


def test_parallel_matches_serial_and_speeds_up(quick_corpus):
    corpus = quick_corpus
    total_apps = sum(len(apps) for apps in corpus.datasets.values())

    serial_static, serial_dynamic, ser_static_s, ser_dynamic_s = _run_stages(
        corpus, 1
    )
    par_static, par_dynamic, par_static_s, par_dynamic_s = _run_stages(
        corpus, PARALLEL_WORKERS
    )

    # Parity first: parallel output must be indistinguishable.
    for key in serial_static:
        assert [r.app_id for r in par_static[key]] == [
            r.app_id for r in serial_static[key]
        ]
        assert [r.scan.unique_pins() for r in par_static[key]] == [
            r.scan.unique_pins() for r in serial_static[key]
        ]
    for key in serial_dynamic:
        assert [r.pinned_destinations for r in par_dynamic[key]] == [
            r.pinned_destinations for r in serial_dynamic[key]
        ]

    record = {
        "scale": PARALLEL_SCALE,
        "total_apps": total_apps,
        "workers": PARALLEL_WORKERS,
        "cpu_count": os.cpu_count(),
        "serial": {
            "static_s": round(ser_static_s, 3),
            "dynamic_s": round(ser_dynamic_s, 3),
            "static_apps_per_s": round(total_apps / ser_static_s, 2),
            "dynamic_apps_per_s": round(total_apps / ser_dynamic_s, 2),
        },
        "parallel": {
            "static_s": round(par_static_s, 3),
            "dynamic_s": round(par_dynamic_s, 3),
            "static_apps_per_s": round(total_apps / par_static_s, 2),
            "dynamic_apps_per_s": round(total_apps / par_dynamic_s, 2),
        },
        "speedup": {
            "static": round(ser_static_s / par_static_s, 2),
            "dynamic": round(ser_dynamic_s / par_dynamic_s, 2),
            "overall": round(
                (ser_static_s + ser_dynamic_s)
                / (par_static_s + par_dynamic_s),
                2,
            ),
        },
    }
    print("\n" + json.dumps(record, indent=2))

    if os.environ.get("REPRO_BENCH_WRITE"):
        out = Path(__file__).resolve().parent.parent / "BENCH_study.json"
        out.write_text(json.dumps(record, indent=2) + "\n")

    cores = os.cpu_count() or 1
    if cores < PARALLEL_WORKERS:
        pytest.skip(
            f"speedup assertion needs >= {PARALLEL_WORKERS} cores "
            f"(have {cores}); parity and throughput recorded above"
        )
    overall = record["speedup"]["overall"]
    assert overall >= 2.0, (
        f"expected >= 2x speedup at {PARALLEL_WORKERS} workers, "
        f"got {overall}x"
    )
