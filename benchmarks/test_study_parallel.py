"""Serial-vs-parallel study throughput (the engine's raison d'être).

Three measured runs over the same corpus:

1. **serial** — the baseline: static + dynamic stages, one process;
2. **adaptive** — the production configuration (``workers="auto"`` on a
   single-CPU machine, ``workers=2, adaptive=True`` otherwise): the
   cost-aware scheduler decides per batch whether the pool can win;
3. **instrumented pool** — a forced 2-worker pool under a telemetry
   recorder, harvesting the dispatch-overhead figures (worker init
   seconds, IPC bytes over the boundary, per-unit queue wait) that the
   ``overhead`` section of ``BENCH_study.json`` records and
   ``tools/check_bench_regression.py --overhead`` gates on.

Assertions: result parity between runs 1 and 2 always; adaptive speedup
``>= 0.95`` on a single-CPU machine (the fallback must make parallelism
harmless); ``> 1.0`` with two or more CPUs (the pool must actually win);
and the corpus bytes shipped per worker must be at least 10× smaller
than pickling the corpus into ``initargs``.

Set ``REPRO_BENCH_WRITE=1`` to (re)generate ``BENCH_study.json`` in the
repo root.  ``REPRO_BENCH_PARALLEL_SCALE`` (default 0.05) sizes the
corpus.
"""

import json
import os
import pickle
import time
from pathlib import Path

import pytest

from repro.core import obs
from repro.core.exec import ExecutionEngine, ExecutionPlan, WorkerBootstrap
from repro.corpus import CorpusConfig, CorpusGenerator

PARALLEL_WORKERS = 2
PARALLEL_SCALE = float(os.environ.get("REPRO_BENCH_PARALLEL_SCALE", "0.05"))


@pytest.fixture(scope="module")
def quick_corpus():
    config = CorpusConfig(seed=2022).scaled(PARALLEL_SCALE)
    return CorpusGenerator(config).generate()


def _adaptive_plan():
    """The configuration a user who just wants speed should run."""
    if (os.cpu_count() or 1) >= 2:
        return ExecutionPlan(workers=PARALLEL_WORKERS, adaptive=True)
    return ExecutionPlan(workers="auto")


def _run_stages(corpus, plan, recorder=None):
    """Run the static and dynamic stages under one plan; return
    ``(static_reports, dynamic_results, static_s, dynamic_s)``."""
    keys = sorted(corpus.datasets)
    with ExecutionEngine(corpus, plan, recorder=recorder) as engine:
        started = time.perf_counter()
        static = {
            key: engine.map_dataset(
                "static", key, range(len(corpus.dataset(*key)))
            )
            for key in keys
        }
        static_s = time.perf_counter() - started
        started = time.perf_counter()
        dynamic = {
            key: engine.map_dataset(
                "dynamic", key, range(len(corpus.dataset(*key))), 0.0
            )
            for key in keys
        }
        dynamic_s = time.perf_counter() - started
    return static, dynamic, static_s, dynamic_s


def _overhead_record(corpus):
    """The instrumented forced-pool run: dispatch-overhead figures."""
    recorder = obs.Recorder()
    plan = ExecutionPlan(workers=PARALLEL_WORKERS)
    _run_stages(corpus, plan, recorder=recorder)
    metrics = recorder.metrics()
    counters = metrics["counters"]
    histograms = metrics["histograms"]
    init = histograms.get("exec.worker.init_s", {})
    queue_wait = histograms.get("exec.unit_queue_wait_s", {})
    full_corpus_bytes = len(pickle.dumps(corpus))
    bootstrap_bytes = WorkerBootstrap.for_corpus(corpus).payload_bytes()
    return {
        "workers": PARALLEL_WORKERS,
        "worker_init_s_mean": round(init.get("mean", 0.0), 4),
        "worker_init_s_max": round(init.get("max", 0.0), 4),
        "unit_queue_wait_s_mean": round(queue_wait.get("mean", 0.0), 4),
        "ipc_bytes_out": counters.get("exec.ipc.bytes_out", 0),
        "ipc_bytes_in": counters.get("exec.ipc.bytes_in", 0),
        "corpus_bootstrap_bytes": bootstrap_bytes,
        "full_corpus_pickle_bytes": full_corpus_bytes,
        "corpus_bytes_reduction": round(
            full_corpus_bytes / max(1, bootstrap_bytes), 1
        ),
        "ipc_corpus_bytes_counter": counters.get("exec.ipc.corpus_bytes", 0),
    }


def test_parallel_matches_serial_and_speeds_up(quick_corpus):
    corpus = quick_corpus
    total_apps = sum(len(apps) for apps in corpus.datasets.values())

    serial_static, serial_dynamic, ser_static_s, ser_dynamic_s = _run_stages(
        corpus, ExecutionPlan(workers=1)
    )
    plan = _adaptive_plan()
    par_static, par_dynamic, par_static_s, par_dynamic_s = _run_stages(
        corpus, plan
    )

    # Parity first: the scheduler's choices must be invisible in output.
    for key in serial_static:
        assert [r.app_id for r in par_static[key]] == [
            r.app_id for r in serial_static[key]
        ]
        assert [r.scan.unique_pins() for r in par_static[key]] == [
            r.scan.unique_pins() for r in serial_static[key]
        ]
    for key in serial_dynamic:
        assert [r.pinned_destinations for r in par_dynamic[key]] == [
            r.pinned_destinations for r in serial_dynamic[key]
        ]

    overhead = _overhead_record(corpus)

    record = {
        "scale": PARALLEL_SCALE,
        "total_apps": total_apps,
        "workers": plan.worker_count,
        "adaptive": plan.adaptive,
        "cpu_count": os.cpu_count(),
        "serial": {
            "static_s": round(ser_static_s, 3),
            "dynamic_s": round(ser_dynamic_s, 3),
            "static_apps_per_s": round(total_apps / ser_static_s, 2),
            "dynamic_apps_per_s": round(total_apps / ser_dynamic_s, 2),
        },
        "parallel": {
            "static_s": round(par_static_s, 3),
            "dynamic_s": round(par_dynamic_s, 3),
            "static_apps_per_s": round(total_apps / par_static_s, 2),
            "dynamic_apps_per_s": round(total_apps / par_dynamic_s, 2),
        },
        "speedup": {
            "static": round(ser_static_s / par_static_s, 2),
            "dynamic": round(ser_dynamic_s / par_dynamic_s, 2),
            "overall": round(
                (ser_static_s + ser_dynamic_s)
                / (par_static_s + par_dynamic_s),
                2,
            ),
        },
        "overhead": overhead,
    }
    print("\n" + json.dumps(record, indent=2))

    if os.environ.get("REPRO_BENCH_WRITE"):
        out = Path(__file__).resolve().parent.parent / "BENCH_study.json"
        out.write_text(json.dumps(record, indent=2) + "\n")

    # Spec bootstrap: the corpus bytes a worker costs must be at least
    # 10x smaller than pickling the whole corpus into initargs.
    assert overhead["corpus_bytes_reduction"] >= 10.0, overhead

    overall = record["speedup"]["overall"]
    cores = os.cpu_count() or 1
    if cores < 2:
        # Single CPU: a pool cannot win; the adaptive scheduler must
        # make parallelism harmless (serial fallback), not catastrophic
        # (the old flat heuristic measured 0.41x here).
        assert overall >= 0.95, (
            f"adaptive run lost {1 - overall:.0%} to serial on a "
            f"single-CPU machine — the fallback did not engage"
        )
    else:
        assert overall > 1.0, (
            f"expected the pool to beat serial with {cores} CPUs and "
            f"{plan.worker_count} workers, got {overall}x"
        )
