"""Table 9 — PII in pinned vs non-pinned traffic.

Paper: advertisement ID is the dominant identifier on both platforms
(~26% pinned vs ~18–20% non-pinned); location/email identifiers are rare;
the only statistically significant pinned-vs-non-pinned difference is the
Ad ID on iOS.  Conclusion: pinning is not typically used to hide
(non-credential) PII collection.
"""


def test_table9_pii(results, benchmark):
    table = benchmark(results.table9)
    print("\n" + table.render())

    for platform in ("android", "ios"):
        comparison = results.pii[platform]
        ad = comparison.row("ad_id")

        # Ad ID dominates every other identifier by an order of magnitude.
        for other in ("city", "state", "latitude"):
            row = comparison.row(other)
            assert ad.non_pinned_rate > row.non_pinned_rate

        # Ad ID appears in both pinned and non-pinned traffic at the
        # 15–35% level.
        assert 0.10 < ad.non_pinned_rate < 0.40
        assert 0.10 < ad.pinned_rate < 0.45

        # No identifier other than the Ad ID shows a significant
        # difference (the paper's core negative result).
        for pii_type in ("email", "state", "city", "latitude"):
            row = comparison.row(pii_type)
            assert not row.significant, (platform, pii_type)
