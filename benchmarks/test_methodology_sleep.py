"""Section 4.2.1 — sleep-window calibration.

Paper: average TLS handshakes per app were 20.78 / 23.5 / 24.62 at
15 / 30 / 60 second windows — diminishing returns beyond 30 s, which is
why 30 s became the study's capture window.
"""

from repro.util.stats import mean


def test_sleep_window_calibration(corpus, benchmark):
    apps = corpus.dataset("android", "popular") + corpus.dataset(
        "ios", "popular"
    )

    def averages():
        return {
            window: mean(
                [a.app.behavior.expected_handshakes(window) for a in apps]
            )
            for window in (15, 30, 60)
        }

    result = benchmark(averages)
    print(
        f"\navg handshakes: 15s={result[15]:.2f} 30s={result[30]:.2f} "
        f"60s={result[60]:.2f} (paper: 20.78 / 23.5 / 24.62)"
    )

    # Monotone growth with diminishing returns past 30 s.
    assert result[15] < result[30] < result[60]
    gain_15_30 = result[30] - result[15]
    gain_30_60 = result[60] - result[30]
    assert gain_30_60 < gain_15_30
    # Magnitudes within ~40% of the paper's.
    assert 12 < result[15] < 30
    assert 14 < result[30] < 33
