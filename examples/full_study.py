#!/usr/bin/env python
"""Full-scale reproduction: every table and figure in the paper.

Generates the corpus at the paper's scale (575 Common pairs + 1,000
Popular + 1,000 Random per platform; 5,150 apps), runs all four pipeline
stages, and prints Tables 1–9 and the data behind Figures 2–5.  Takes a
few minutes; use ``--scale`` to shrink.

Run:
    python examples/full_study.py [--scale 1.0] [--workers auto] \
        [--resume study.ckpt] [--max-retries 2] [--out results.txt] \
        [--store results.store] \
        [--trace-out study.trace.json] [--metrics-out study.metrics.json]

An interrupted run resumes from ``--resume``'s journal; per-app failures
never abort the study — they are retried, quarantined, and reported in
the "error ledger" section of the output.  ``--trace-out`` /
``--metrics-out`` instrument the run (spans, counters, cache hit rates)
without changing its results; the trace loads in Perfetto.  ``--store``
makes repeated runs incremental: per-app results are published to a
content-addressed store and a re-run with the same configuration
recomputes only what is missing, with identical output.
"""

import argparse
import os
import sys

from repro.core import obs
from repro.core.analysis import Study
from repro.core.exec import ExecutionPlan, ResultStore, SeededFaults
from repro.core.analysis.certificates import (
    analyze_pin_positions,
    check_validation_subversion,
    self_signed_validity_years,
)
from repro.core.analysis.misconfig import (
    find_nsc_misconfigurations,
    misconfig_table,
)
from repro.core.analysis.spinner import spinner_scan, spinner_table
from repro.corpus import CorpusConfig, CorpusGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--workers",
        type=lambda v: v if v == "auto" else int(v),
        default=1,
        help="worker processes (results identical for any value; 'auto' "
        "sizes the pool to the machine and falls back to serial when "
        "the pool cannot win)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="retries per failed work unit before quarantine + ledger",
    )
    parser.add_argument(
        "--resume",
        type=str,
        default="",
        help="checkpoint journal path; completed units are recorded and "
        "replayed across runs with the same seed/scale",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="fault-injection testing hook: deterministically fail this "
        "fraction of per-app work",
    )
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument(
        "--store",
        type=str,
        default="",
        help="content-addressed result store directory; later runs with "
        "the same configuration recompute only what changed",
    )
    parser.add_argument(
        "--no-store-read",
        action="store_true",
        help="do not consult --store before computing",
    )
    parser.add_argument(
        "--no-store-write",
        action="store_true",
        help="do not publish results to --store",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default="",
        help="instrument the run; write Chrome trace-event JSON here "
        "(loads in Perfetto / about://tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default="",
        help="instrument the run; write flat metrics JSON here",
    )
    parser.add_argument("--out", type=str, default="")
    args = parser.parse_args()

    # Fail on an unwritable export path before the run, not after.
    for path in (args.trace_out, args.metrics_out):
        if path and not os.path.isdir(os.path.dirname(path) or "."):
            parser.error(f"output directory does not exist: {path}")

    out = open(args.out, "w") if args.out else sys.stdout

    def emit(text=""):
        print(text, file=out)

    stopwatch = obs.Stopwatch()
    config = CorpusConfig(seed=args.seed)
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    corpus = CorpusGenerator(config).generate()
    emit(
        f"corpus: {corpus.total_unique_apps()} unique apps "
        f"({stopwatch.elapsed():.0f}s)"
    )

    stopwatch.restart()
    faults = (
        SeededFaults(args.fault_rate, seed=args.fault_seed)
        if args.fault_rate > 0
        else None
    )
    recorder = (
        obs.Recorder() if (args.trace_out or args.metrics_out) else None
    )
    plan = ExecutionPlan(workers=args.workers, max_retries=args.max_retries)
    study = Study(corpus, plan=plan, fault_predicate=faults)
    store = None
    if args.store:
        store = ResultStore(
            args.store,
            corpus,
            sleep_s=study.sleep_s,
            read=not args.no_store_read,
            write=not args.no_store_write,
        )
    results = study.run(
        resume=args.resume or None, recorder=recorder, store=store
    )
    emit(f"study: complete ({stopwatch.elapsed():.0f}s)")
    if store is not None:
        print(f"result store: {store.stats.describe()}", file=sys.stderr)
    emit()

    if recorder is not None:
        if args.trace_out:
            recorder.write_trace(args.trace_out)
            emit(f"trace written to {args.trace_out}")
        if args.metrics_out:
            recorder.write_metrics(args.metrics_out)
            emit(f"metrics written to {args.metrics_out}")
        emit(results.telemetry_table().render())
        emit()

    # The error ledger: a fault-free run prints "0 unit failure(s)" and
    # nothing else; a degraded run lists every abandoned app so the
    # partial results below are interpretable.
    emit(f"error ledger: {len(results.failures)} unit failure(s)")
    for line in results.error_ledger():
        emit(f"  {line}")
    emit()

    for table in (
        results.table1(),
        results.table2(),
        results.table3(),
        results.table4(),
        results.table5(),
        results.table6(),
        results.table7(),
        results.table8(),
        results.table9(),
        results.figure2(),
        results.figure3(),
    ):
        emit(table.render())
        emit()
    figure4a, figure4b = results.figure4()
    emit(figure4a.render())
    emit()
    emit(figure4b.render())
    emit()
    emit(results.figure5().render())
    emit()

    emit("Section 4.3 — circumvention rates (paper: 51.5% / 66.2%):")
    emit(f"  android: {results.circumvention_rate('android'):.2%}")
    emit(f"  ios    : {results.circumvention_rate('ios'):.2%}")
    emit()

    for platform in ("android", "ios"):
        analysis = analyze_pin_positions(
            corpus,
            results.static_by_app(platform),
            results.all_dynamic(platform),
        )
        emit(
            f"Section 5.3.2 ({platform}) — CA pins: {analysis.ca_pins}, "
            f"leaf pins: {analysis.leaf_pins} "
            f"(CA fraction {analysis.ca_fraction:.0%}; paper: 80/110 ≈ 73%)"
        )
        subversion = check_validation_subversion(
            corpus, results.all_dynamic(platform)
        )
        emit(
            f"Section 5.3.4 ({platform}) — expired-but-accepted certs at "
            f"pinned destinations: {subversion.expired_accepted} "
            f"of {subversion.checked_destinations} (paper: 0)"
        )
        years = self_signed_validity_years(
            corpus, results.all_dynamic(platform)
        )
        if years:
            emit(
                f"Section 5.3.1 ({platform}) — self-signed pinned cert "
                f"validity years: {[round(y) for y in years]} "
                "(paper: 27 and 10)"
            )
    emit()

    # Extensions beyond the paper (related-work analyses).
    stores = {
        "android": corpus.stores.android_aosp,
        "ios": corpus.stores.ios,
    }
    spinner_reports = [
        spinner_scan(corpus, p, results.all_dynamic(p), stores[p])
        for p in ("android", "ios")
    ]
    emit(spinner_table(spinner_reports).render())
    emit()
    emit(
        misconfig_table(
            find_nsc_misconfigurations(
                list(results.static_by_app("android").values()),
                results.all_dynamic("android"),
            )
        ).render()
    )
    if args.out:
        out.close()
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
