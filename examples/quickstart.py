#!/usr/bin/env python
"""Quickstart: generate a small corpus, run the full study, print the
headline table.

The paper's headline result (Table 3) is that dynamic analysis finds far
more certificate pinning than the configuration-file technique prior work
used — 6.7 % of popular Android apps and 11.4 % of popular iOS apps pin at
run time.  This script reproduces the pipeline end to end at 10 % of the
paper's corpus scale (~500 apps), which takes well under a minute.

Run:
    python examples/quickstart.py [--scale 0.1] [--seed 2022]
"""

import argparse
import time

from repro.core.analysis import Study
from repro.corpus import CorpusConfig, CorpusGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    print(f"Generating corpus (scale={args.scale}, seed={args.seed})...")
    started = time.time()
    corpus = CorpusGenerator(CorpusConfig(seed=args.seed).scaled(args.scale)).generate()
    print(
        f"  {corpus.total_unique_apps()} unique apps, "
        f"{len(corpus.registry)} TLS endpoints "
        f"({time.time() - started:.1f}s)"
    )

    print("Running the study (static + dynamic + circumvention + PII)...")
    started = time.time()
    results = Study(corpus).run()
    print(f"  done ({time.time() - started:.1f}s)\n")

    print(results.table3().render())
    print()
    print(results.table2().render())
    print()
    print(
        "Pinning circumvention (Frida): "
        f"{results.circumvention_rate('android'):.1%} of pinned Android "
        f"destinations, {results.circumvention_rate('ios'):.1%} of pinned "
        "iOS destinations (paper: 51.5% / 66.2%)."
    )


if __name__ == "__main__":
    main()
