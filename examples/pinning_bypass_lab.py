#!/usr/bin/env python
"""Pinning-bypass lab: why Frida defeats some pins and not others.

Builds one iOS app with three pinned destinations implemented three ways —
TrustKit (hookable), NSURLSession delegate checks (hookable), and a custom
TLS stack (not hookable) — then shows, step by step, what the paper's
Section 4.3 methodology observes:

1. under plain MITM all three destinations fail (they are pinned);
2. after Frida instrumentation the TrustKit and URLSession pins fall,
   while the custom stack keeps rejecting the proxy.

Run:
    python examples/pinning_bypass_lab.py
"""

from repro.appmodel.app import MobileApp
from repro.appmodel.behavior import DestinationUsage, NetworkBehavior
from repro.appmodel.ios import build_ios_package
from repro.appmodel.package import PackagingContext
from repro.appmodel.pinning import PinMechanism, PinningSpec, PinScope
from repro.core.circumvent import FridaSession
from repro.core.dynamic import DynamicPipeline
from repro.corpus import CorpusConfig, CorpusGenerator
from repro.device.automation import RunConfig
from repro.util.rng import DeterministicRng

MECHANISMS = [
    ("trustkit.lab.com", PinMechanism.TRUSTKIT),
    ("urlsession.lab.com", PinMechanism.URLSESSION),
    ("custom.lab.com", PinMechanism.CUSTOM_TLS),
]


def build_lab_app(corpus):
    registry = corpus.registry
    specs = []
    usages = []
    for host, mechanism in MECHANISMS:
        endpoint = registry.create_default_pki_endpoint(host, "PinLab")
        spec = PinningSpec(
            domains=(host,), mechanism=mechanism, scope=PinScope.ROOT
        )
        spec.resolve_domain(host, endpoint.chain)
        specs.append(spec)
        usages.append(DestinationUsage(host))
    app = MobileApp(
        app_id="com.pinlab.app",
        name="Pin Lab",
        platform="ios",
        category="Developer Tools",
        owner="PinLab",
        pinning_specs=specs,
        behavior=NetworkBehavior(usages),
    )
    ctx = PackagingContext(
        public_root_pems=[c.to_pem() for c in corpus.hierarchy.root_certificates()],
        rng=DeterministicRng(5),
    )
    return build_ios_package(app, ctx)


def main() -> None:
    corpus = CorpusGenerator(CorpusConfig(seed=11).scaled(0.01)).generate()
    packaged = build_lab_app(corpus)
    dynamic = DynamicPipeline(corpus)
    harness = dynamic._harnesses["ios"]
    device = dynamic.ios_device

    print("== Step 1: plain MITM — every pinned destination fails ==")
    result = dynamic.run_app(packaged)
    for host, mechanism in MECHANISMS:
        verdict = result.verdicts[host]
        print(f"  {host:24s} ({mechanism.value:12s}) pinned={verdict.pinned}")

    print("\n== Step 2: Frida instrumentation ==")
    session = FridaSession(device)
    policy = packaged.app.runtime_policy(device.system_store)
    outcome = session.instrument(policy)
    print(f"  hooks bypassed : {sorted(outcome.bypassed_domains)}")
    print(f"  hooks resisted : {sorted(outcome.resistant_domains)}")

    print("\n== Step 3: MITM re-run with hooks in place ==")
    capture = harness.run_app(
        packaged,
        RunConfig(
            mitm=True,
            policy_override=outcome.patched_policy,
            transient_failure_prob=0.0,
        ),
    )
    for host, mechanism in MECHANISMS:
        flows = capture.for_destination(host).flows
        decrypted = any(f.plaintext_visible for f in flows)
        print(
            f"  {host:24s} ({mechanism.value:12s}) "
            f"{'DECRYPTED' if decrypted else 'still rejects the proxy'}"
        )

    print(
        "\nThe custom TLS stack has no public hook points — exactly why the "
        "paper could only circumvent ~51.5% (Android) / ~66.2% (iOS) of "
        "pinned destinations."
    )


if __name__ == "__main__":
    main()
