#!/usr/bin/env python
"""Archive captures to JSON and re-run detection offline.

The original study published its dataset so others could re-analyze it
without a testbed.  This example shows the reproduction's equivalent:
run the dynamic experiments once, archive both captures per app, then —
as a separate consumer with no access to the simulation — reload them and
re-run the differential detector, verifying the verdicts agree.

Run:
    python examples/archive_and_reanalyze.py [--outdir captures/]
"""

import argparse
import pathlib

from repro.core.dynamic import DynamicPipeline, detect_pinned_destinations
from repro.corpus import CorpusConfig, CorpusGenerator
from repro.netsim.export import dump_capture, load_capture


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", type=str, default="captures")
    parser.add_argument("--scale", type=float, default=0.03)
    args = parser.parse_args()

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    corpus = CorpusGenerator(CorpusConfig(seed=2022).scaled(args.scale)).generate()
    pipeline = DynamicPipeline(corpus)

    print("== Phase 1: measure and archive ==")
    archived = []
    for packaged in corpus.dataset("ios", "popular"):
        result = pipeline.run_app(packaged)
        stem = packaged.app.app_id
        (outdir / f"{stem}.direct.json").write_text(
            dump_capture(result.direct_capture)
        )
        (outdir / f"{stem}.mitm.json").write_text(
            dump_capture(result.mitm_capture)
        )
        archived.append(
            (stem, result.pinned_destinations, sorted(result.excluded_destinations))
        )
    print(f"archived {2 * len(archived)} capture files to {outdir}/")

    print("\n== Phase 2: offline re-analysis from the archive ==")
    agreements = 0
    for app_id, original_verdict, excluded in archived:
        direct = load_capture((outdir / f"{app_id}.direct.json").read_text())
        mitm = load_capture((outdir / f"{app_id}.mitm.json").read_text())
        verdicts = detect_pinned_destinations(direct, mitm, excluded)
        pinned = {d for d, v in verdicts.items() if v.pinned}
        if pinned == original_verdict:
            agreements += 1
        if pinned:
            print(f"  {app_id}: pinned {sorted(pinned)}")
    print(
        f"\noffline verdicts agree with the live run for "
        f"{agreements}/{len(archived)} apps"
    )


if __name__ == "__main__":
    main()
