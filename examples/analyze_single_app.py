#!/usr/bin/env python
"""Audit one app, the way the paper's pipeline does.

Builds a synthetic banking app that (a) pins its own backend with OkHttp
SPKI pins, (b) embeds the Twitter SDK (which pins api.twitter.com), and
(c) talks to several unpinned third parties.  Then:

1. static analysis: decompile, scan for certificates/pins, resolve hashes
   through the CT log;
2. dynamic analysis: run it with and without TLS interception and diff;
3. circumvention: hook its TLS libraries with Frida and read the pinned
   traffic.

Run:
    python examples/analyze_single_app.py
"""

from repro.appmodel.android import build_android_package
from repro.appmodel.app import MobileApp
from repro.appmodel.behavior import DestinationUsage, NetworkBehavior
from repro.appmodel.package import PackagingContext
from repro.appmodel.pinning import PinMechanism, PinningSpec, PinScope
from repro.appmodel.sdk import sdk_by_name
from repro.core.circumvent import CircumventionPipeline
from repro.core.dynamic import DynamicPipeline
from repro.core.static import StaticPipeline
from repro.corpus import CorpusConfig, CorpusGenerator
from repro.util.rng import DeterministicRng


def build_app(corpus):
    """Wire a bespoke app into the corpus world."""
    registry = corpus.registry
    rng = DeterministicRng(99)

    backend = registry.create_default_pki_endpoint("api.acmebank.com", "AcmeBank")
    registry.create_default_pki_endpoint("www.acmebank.com", "AcmeBank")

    own_pin = PinningSpec(
        domains=("api.acmebank.com",),
        mechanism=PinMechanism.OKHTTP,
        scope=PinScope.ROOT,
    )
    own_pin.resolve_domain("api.acmebank.com", backend.chain)

    twitter = sdk_by_name("Twitter")
    twitter_spec = twitter.make_pinning_spec("android")
    for host in twitter_spec.domains:
        endpoint = registry.create_default_pki_endpoint(host, "Twitter")
        twitter_spec.resolve_domain(host, endpoint.chain)

    for host in ("graph.facebook.com", "ssl.google-analytics.com"):
        if not registry.knows(host):
            registry.create_default_pki_endpoint(host, host.split(".")[1])

    app = MobileApp(
        app_id="com.acmebank.app",
        name="Acme Bank",
        platform="android",
        category="Finance",
        owner="AcmeBank",
        sdk_names=["Twitter", "Firebase"],
        pinning_specs=[own_pin, twitter_spec],
        behavior=NetworkBehavior(
            [
                DestinationUsage("api.acmebank.com", used_connections=2),
                DestinationUsage("www.acmebank.com"),
                DestinationUsage("api.twitter.com", source="Twitter"),
                DestinationUsage("graph.facebook.com", source="Facebook"),
                DestinationUsage("ssl.google-analytics.com", source="Google"),
            ]
        ),
    )
    ctx = PackagingContext(
        public_root_pems=[c.to_pem() for c in corpus.hierarchy.root_certificates()],
        rng=rng,
    )
    return build_android_package(app, ctx)


def main() -> None:
    # A tiny world provides the PKI, stores and shared endpoints.
    corpus = CorpusGenerator(CorpusConfig(seed=7).scaled(0.01)).generate()
    packaged = build_app(corpus)

    print("== Static analysis ==")
    static = StaticPipeline(corpus.registry.ctlog)
    report = static.analyze_app(packaged)
    print(f"embedded material found: {report.embedded_material}")
    print(f"pin strings found      : {sorted(report.all_pin_strings())}")
    print(f"finding paths          : {sorted(report.finding_paths())}")
    print(
        f"CT resolution          : {len(report.ct.resolved)} resolved, "
        f"{len(report.ct.unresolved)} unresolved"
    )
    for pin, certs in report.ct.resolved.items():
        names = ", ".join(c.common_name for c in certs)
        print(f"  {pin[:24]}... -> {names}")

    print("\n== Dynamic analysis ==")
    dynamic = DynamicPipeline(corpus)
    result = dynamic.run_app(packaged)
    for destination, verdict in sorted(result.verdicts.items()):
        label = "PINNED" if verdict.pinned else "not pinned"
        print(f"  {destination:32s} {label}")

    print("\n== Circumvention ==")
    circumvention = CircumventionPipeline(dynamic)
    circ = circumvention.circumvent_app(packaged, result)
    print(f"bypassed : {sorted(circ.bypassed_destinations)}")
    print(f"resistant: {sorted(circ.resistant_destinations)}")
    for flow in circ.decrypted_pinned_flows()[:3]:
        for payload in flow.decrypted_payloads():
            print(f"  decrypted {flow.sni}: {payload.flattened()!r}")


if __name__ == "__main__":
    main()
