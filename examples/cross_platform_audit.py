#!/usr/bin/env python
"""Cross-platform consistency audit (the paper's Section 5.1 / Figures 2–4).

The Common dataset holds the same product on Android and iOS.  One entity
controls both builds, so you would expect identical pinning policies —
the paper found fewer than half of both-platform pinners are consistent.
This script reproduces the audit: it runs the dynamic pipeline over the
Common pairs, classifies every pair, and prints Figures 2, 3 and 4.

Run:
    python examples/cross_platform_audit.py [--scale 0.15]
"""

import argparse

from repro.core.analysis import Study
from repro.core.analysis.consistency import summarize_pairs
from repro.corpus import CorpusConfig, CorpusGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    corpus = CorpusGenerator(CorpusConfig(seed=args.seed).scaled(args.scale)).generate()
    print(
        f"Common dataset: {len(corpus.common_pairs())} app pairs "
        f"(paper: 575)\n"
    )
    results = Study(corpus).run()

    print(results.figure2().render())
    print()
    print(results.figure3().render())
    print()
    figure4a, figure4b = results.figure4()
    print(figure4a.render())
    print()
    print(figure4b.render())

    classifications = [c for _, c in results.pair_classifications()]
    summary = summarize_pairs(classifications)

    from repro.reporting.figures import stacked_bar

    print("\nConsistency mix among both-platform pinners:")
    print(
        stacked_bar(
            "both-platform",
            [
                ("consistent", summary.both_consistent),
                ("inconsistent", summary.both_inconsistent),
                ("inconclusive", summary.both_inconclusive),
            ],
        )
    )
    if summary.pins_both:
        consistent_share = summary.both_consistent / summary.pins_both
        print(
            f"\nOf the {summary.pins_both} apps pinning on both platforms, "
            f"{summary.both_consistent} ({consistent_share:.0%}) are fully "
            "consistent — the paper found 15/27 (56%), with only 13 pinning "
            "identical domain sets."
        )


if __name__ == "__main__":
    main()
