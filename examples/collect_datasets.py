#!/usr/bin/env python
"""Re-run the paper's dataset collection (§3 and Appendix A).

Demonstrates the collection substrate: the AlternativeTo crawl that
produces the Common pairs (1 request/second, contact info in the
User-Agent — the §7 etiquette), Play Store chart downloads, iTunes
category search, and the semi-automated iTunes 12.6 download session
whose periodic re-authentication capped the study's iOS corpus size.

Run:
    python examples/collect_datasets.py [--scale 0.1]
"""

import argparse

from repro.corpus import CollectionCampaign, CorpusConfig, CorpusGenerator
from repro.corpus.stores import ITunesSession


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    corpus = CorpusGenerator(CorpusConfig(seed=args.seed).scaled(args.scale)).generate()
    campaign = CollectionCampaign(corpus, seed=args.seed)

    print("== Common: AlternativeTo crawl + both-store downloads ==")
    common = campaign.collect_common()
    print(f"  crawl requests        : {common.crawl_requests} (1/s, polite UA)")
    print(f"  both-store pairs      : {len(common.common_pairs)}")
    print(f"  iTunes interventions  : {common.itunes_interventions}")

    print("\n== Popular: Top-Free charts / iTunes search ==")
    popular = campaign.collect_popular(per_platform=round(1000 * args.scale))
    print(f"  android downloads     : {len(popular.android_apps)}")
    print(f"  ios downloads         : {len(popular.ios_apps)}")

    print("\n== Random: id-list sampling ==")
    random_report = campaign.collect_random(per_platform=round(1000 * args.scale))
    print(f"  android downloads     : {len(random_report.android_apps)}")
    print(f"  ios downloads         : {len(random_report.ios_apps)}")

    print("\n== Why the iOS corpus stays small (Appendix A) ==")
    session = ITunesSession(downloads_per_reauth=50)
    attempted = 0
    interventions = 0
    for app_id in campaign.app_store.all_app_ids():
        try:
            campaign.app_store.download(app_id, session)
        except Exception:
            session.reauthenticate()
            campaign.app_store.download(app_id, session)
            interventions += 1
        attempted += 1
    print(
        f"  {attempted} downloads needed {interventions} manual "
        f"interventions at 50 downloads per re-auth — the reason the "
        "paper restricted its iOS analysis to thousands of apps."
    )


if __name__ == "__main__":
    main()
