"""Stage-granular result-store tests (DESIGN.md §15).

The contract under test: flipping one configuration knob invalidates
exactly the declaring stage and its downstream — upstream stages are
served from the store bit-for-bit — and a partially recomputed result
equals what a cold run under the flipped configuration produces.
"""

from __future__ import annotations

import pytest

from repro.core import obs
from repro.core.analysis import Study
from repro.core.circumvent.pipeline import CircumventionPipeline
from repro.core.dynamic.pipeline import DynamicPipeline
from repro.core.exec import ExecutionPlan
from repro.core.exec.resultstore import ResultStore
from repro.core.static.pipeline import StaticPipeline


@pytest.fixture()
def store(small_corpus, tmp_path):
    return ResultStore(tmp_path / "store", small_corpus)


def _app(small_corpus, platform="android", dataset="popular", index=0):
    return small_corpus.dataset(platform, dataset)[index]


def _flows(capture):
    return list(capture.flows)


class TestStaticStageCache:
    def test_cold_run_publishes_then_warm_run_hits(self, small_corpus, store):
        pipeline = StaticPipeline(small_corpus.registry.ctlog)
        packaged = _app(small_corpus)
        cold = pipeline.analyze_app(packaged, cache=store, dataset="popular")
        assert store.stats.stage_misses == 3
        assert store.stats.stage_published == 3
        warm = pipeline.analyze_app(packaged, cache=store, dataset="popular")
        assert store.stats.stage_hits == 3
        assert warm == cold

    def test_include_native_flip_recomputes_only_downstream(
        self, small_corpus, store
    ):
        baseline = StaticPipeline(small_corpus.registry.ctlog)
        packaged = _app(small_corpus)
        baseline.analyze_app(packaged, cache=store, dataset="popular")

        flipped = StaticPipeline(
            small_corpus.registry.ctlog, include_native=False
        )
        recorder = obs.Recorder().install()
        try:
            partial = flipped.analyze_app(
                packaged, cache=store, dataset="popular"
            )
        finally:
            recorder.uninstall()
        # decompile was served from the store; scan and ct_lookup were
        # invalidated by the knob flip and recomputed.
        assert recorder.counter_value("pipeline.static.decompile.computed") == 0
        assert recorder.counter_value("pipeline.static.scan.computed") == 1
        assert recorder.counter_value("pipeline.static.ct_lookup.computed") == 1
        assert recorder.counter_value("store.stage.static.decompile.hit") == 1
        assert recorder.counter_value("store.stage.static.scan.miss") == 1

        cold = StaticPipeline(
            small_corpus.registry.ctlog, include_native=False
        ).analyze_app(packaged)
        assert partial == cold


class TestDynamicStageCache:
    def test_detector_flip_reuses_captures(self, small_corpus, store):
        packaged = _app(small_corpus)
        baseline = DynamicPipeline(small_corpus)
        cold = baseline.run_app(packaged, cache=store, dataset="popular")
        hits_before = store.stats.stage_hits

        flipped = DynamicPipeline(small_corpus, detector="naive")
        partial = flipped.run_app(packaged, cache=store, dataset="popular")
        # run_direct, run_mitm and exclusions hit; detect went cold.
        assert store.stats.stage_hits == hits_before + 3

        # Upstream artifacts are bit-for-bit the cold run's.
        assert _flows(partial.direct_capture) == _flows(cold.direct_capture)
        assert _flows(partial.mitm_capture) == _flows(cold.mitm_capture)
        assert partial.excluded_destinations == cold.excluded_destinations

        # The partially recomputed result equals a cache-less run under
        # the flipped configuration.
        reference = DynamicPipeline(small_corpus, detector="naive").run_app(
            packaged
        )
        assert partial.verdicts == reference.verdicts
        assert partial.pinned_destinations == reference.pinned_destinations

    def test_wait_param_invalidates_everything(self, small_corpus, store):
        packaged = _app(small_corpus, platform="ios", dataset="common")
        pipeline = DynamicPipeline(small_corpus)
        pipeline.run_app(packaged, cache=store, dataset="common")
        misses_before = store.stats.stage_misses
        hits_before = store.stats.stage_hits
        pipeline.run_app(
            packaged, pre_launch_wait_s=120.0, cache=store, dataset="common"
        )
        # The re-run wait is a per-app parameter of every run stage, so
        # nothing of the first pass is reusable.
        assert store.stats.stage_hits == hits_before
        assert store.stats.stage_misses == misses_before + 4


class TestCircumventStageCache:
    @pytest.fixture()
    def pinning(self, small_corpus):
        pipeline = DynamicPipeline(small_corpus)
        for packaged in small_corpus.dataset("android", "popular"):
            result = pipeline.run_app(packaged)
            if result.pins():
                return pipeline, packaged, result
        raise AssertionError("no pinning app in android/popular")

    def test_hook_set_flip_invalidates_hooked_run(
        self, small_corpus, store, pinning
    ):
        dynamic, packaged, result = pinning
        baseline = CircumventionPipeline(dynamic)
        baseline.circumvent_app_pins(
            packaged, result.pinned_destinations, cache=store, dataset="popular"
        )
        misses_before = store.stats.stage_misses

        # Same hook set again: the capture is served from the store.
        again = CircumventionPipeline(dynamic)
        rerun = again.circumvent_app_pins(
            packaged, result.pinned_destinations, cache=store, dataset="popular"
        )
        assert store.stats.stage_hits == 1
        assert store.stats.stage_misses == misses_before
        assert rerun.bypassed_destinations
        assert (
            rerun.bypassed_destinations | rerun.resistant_destinations
            == result.pinned_destinations
        )

        # Restricting the hook set re-keys the instrumented run.
        restricted = CircumventionPipeline(dynamic, hook_set=("okhttp",))
        restricted.circumvent_app_pins(
            packaged, result.pinned_destinations, cache=store, dataset="popular"
        )
        assert store.stats.stage_misses == misses_before + 1

    def test_pinned_set_change_reuses_capture(
        self, small_corpus, store, pinning
    ):
        dynamic, packaged, result = pinning
        pipeline = CircumventionPipeline(dynamic)
        full = pipeline.circumvent_app_pins(
            packaged, result.pinned_destinations, cache=store, dataset="popular"
        )
        subset = {sorted(result.pinned_destinations)[0]}
        hits_before = store.stats.stage_hits
        narrowed = pipeline.circumvent_app_pins(
            packaged, subset, cache=store, dataset="popular"
        )
        # The hooked capture keys on the hook set and run knobs alone, so
        # a changed pinned set (a detector flip upstream) still reuses it
        # and only the cheap verdict assembly reruns.
        assert store.stats.stage_hits == hits_before + 1
        assert _flows(narrowed.hooked_capture) == _flows(full.hooked_capture)
        assert (
            narrowed.bypassed_destinations | narrowed.resistant_destinations
            == subset
        )


class TestStoreStats:
    def test_describe_reports_stage_tallies(self, small_corpus, store):
        assert "stage" not in store.stats.describe()
        pipeline = StaticPipeline(small_corpus.registry.ctlog)
        pipeline.analyze_app(_app(small_corpus), cache=store, dataset="popular")
        description = store.stats.describe()
        assert "3 stage hit(s) / 3 miss(es)" not in description
        assert "stage entr(ies) published" in description
        assert store.stats.stage_hit_rate == 0.0
        pipeline.analyze_app(_app(small_corpus), cache=store, dataset="popular")
        assert store.stats.stage_hit_rate == pytest.approx(0.5)


class TestEngineIntegration:
    """Stage invalidation through the engine: a detector flip over a
    stored study recomputes only the detect suffix, runs the partial
    units serially on the parent's store handle, and produces the same
    results as a cold run under the flipped configuration."""

    @pytest.fixture(scope="class")
    def tiny_corpus(self):
        from repro.corpus import CorpusConfig, CorpusGenerator

        return CorpusGenerator(CorpusConfig(seed=1337).scaled(0.015)).generate()

    def test_detector_flip_study_is_partial_and_equal(
        self, tiny_corpus, tmp_path
    ):
        plan = ExecutionPlan(workers=1)
        root = tmp_path / "store"

        cold = Study(tiny_corpus, plan=plan).run(store=root)

        # A pooled plan exercises the partial-unit partition: units with
        # reusable stage artifacts are pulled off the pool and run on the
        # parent's store handle (workers have none).
        recorder = obs.Recorder()
        flipped = Study(
            tiny_corpus, plan=ExecutionPlan(workers=2), detector="no-tls13"
        ).run(store=root, recorder=recorder)
        counters = recorder.counters()
        # Every dynamic unit is partial: captures warm, detect cold.
        assert counters.get("store.units.partial", 0) > 0
        assert counters.get("store.stage.dynamic.detect.hit", 0) == 0
        assert counters.get("store.stage.dynamic.detect.miss", 0) > 0
        assert counters.get("store.stage.dynamic.run_direct.hit", 0) > 0
        assert counters.get("store.stage.dynamic.run_direct.miss", 0) == 0
        assert counters.get("store.stage.dynamic.run_mitm.miss", 0) == 0
        # Static units are untouched by the flip and hit at unit level.
        assert counters.get("store.units.hit", 0) > 0

        reference = Study(tiny_corpus, plan=plan, detector="no-tls13").run()
        for key in reference.dynamic_results:
            assert [r.verdicts for r in flipped.dynamic_results[key]] == [
                r.verdicts for r in reference.dynamic_results[key]
            ]
        for key in reference.circumvention:
            assert [
                (c.app_id, c.bypassed_destinations, c.resistant_destinations)
                for c in flipped.circumvention[key]
            ] == [
                (c.app_id, c.bypassed_destinations, c.resistant_destinations)
                for c in reference.circumvention[key]
            ]
