"""Tests for repro.appmodel.app, behavior, package builders."""

import pytest

from repro.appmodel.android import build_android_package
from repro.appmodel.app import MobileApp
from repro.appmodel.behavior import DestinationUsage, NetworkBehavior
from repro.appmodel.ios import build_ios_package
from repro.appmodel.package import (
    PackagingContext,
    deobfuscate_token,
    obfuscate_token,
)
from repro.appmodel.pinning import PinForm, PinMechanism, PinningSpec, PinScope
from repro.errors import AppModelError, PackageEncryptedError
from repro.pki.authority import PKIHierarchy
from repro.pki.store import StoreCatalog
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START


@pytest.fixture(scope="module")
def world():
    hierarchy = PKIHierarchy(DeterministicRng(91))
    catalog = StoreCatalog.build(hierarchy)
    issued = hierarchy.issue_leaf_chain("api.pinme.com", DeterministicRng(92))
    return hierarchy, catalog, issued


def make_app(world, platform="android", mechanism=PinMechanism.OKHTTP, **kwargs):
    hierarchy, catalog, issued = world
    spec = PinningSpec(
        domains=("api.pinme.com",), mechanism=mechanism, scope=PinScope.LEAF
    )
    spec.resolve_domain("api.pinme.com", issued.chain)
    defaults = dict(
        app_id=f"com.pinme.{platform}",
        name="Pin Me",
        platform=platform,
        category="Finance",
        owner="PinMe Inc",
        pinning_specs=[spec],
        behavior=NetworkBehavior(
            [
                DestinationUsage("api.pinme.com"),
                DestinationUsage("cdn.other.com", start_offset_s=40.0),
            ]
        ),
    )
    defaults.update(kwargs)
    return MobileApp(**defaults)


class TestMobileApp:
    def test_platform_validation(self, world):
        with pytest.raises(AppModelError):
            make_app(world, platform="windows")

    def test_ground_truth_predicates(self, world):
        app = make_app(world)
        assert app.pins_at_runtime()
        assert app.pins_domain("api.pinme.com")
        assert app.pins_domain("sub.api.pinme.com")
        assert not app.pins_domain("cdn.other.com")
        assert app.runtime_pinned_domains() == {"api.pinme.com"}

    def test_dormant_spec_not_runtime(self, world):
        app = make_app(world)
        app.pinning_specs[0].dormant = True
        assert not app.pins_at_runtime()
        assert app.static_visible_specs()

    def test_obfuscated_spec_not_static(self, world):
        app = make_app(world)
        app.pinning_specs[0].obfuscated = True
        assert app.pins_at_runtime()
        assert not app.static_visible_specs()
        assert not app.embeds_pin_material()

    def test_nsc_specs_excluded_from_embed_ground_truth(self, world):
        app = make_app(world, mechanism=PinMechanism.NSC)
        assert not app.embeds_pin_material()

    def test_runtime_policy_pins(self, world):
        _, catalog, issued = world
        app = make_app(world)
        policy = app.runtime_policy(catalog.android_aosp)
        assert policy.pins_hostname("api.pinme.com")
        assert policy.accepts(issued.chain, "api.pinme.com", STUDY_START)

    def test_runtime_policy_nsc(self, world):
        _, catalog, issued = world
        app = make_app(world, mechanism=PinMechanism.NSC)
        policy = app.runtime_policy(catalog.android_aosp)
        assert policy.pins_hostname("api.pinme.com")

    def test_runtime_policy_raw_certificate(self, world):
        hierarchy, catalog, issued = world
        spec = PinningSpec(
            domains=("api.pinme.com",),
            mechanism=PinMechanism.CUSTOM_TLS,
            scope=PinScope.LEAF,
            form=PinForm.RAW_CERTIFICATE,
        )
        spec.resolve_domain("api.pinme.com", issued.chain)
        app = make_app(world, pinning_specs=[spec])
        policy = app.runtime_policy(catalog.android_aosp)
        assert policy.accepts(issued.chain, "api.pinme.com", STUDY_START)

    def test_unresolved_spec_raises(self, world):
        _, catalog, _ = world
        spec = PinningSpec(
            domains=("api.pinme.com",), mechanism=PinMechanism.OKHTTP
        )
        app = make_app(world, pinning_specs=[spec])
        with pytest.raises(AppModelError):
            app.runtime_policy(catalog.android_aosp)

    def test_weak_system_stack_suites(self, world):
        ios_app = make_app(world, platform="ios", weak_system_stack=True)
        from repro.tls.ciphers import advertises_weak

        assert advertises_weak(ios_app.suites_for_destination("cdn.other.com"))
        modern_app = make_app(world, platform="ios", weak_system_stack=False)
        assert not advertises_weak(
            modern_app.suites_for_destination("cdn.other.com")
        )

    def test_pinned_destination_modern_suites(self, world):
        from repro.tls.ciphers import advertises_weak

        app = make_app(world, weak_system_stack=True)
        assert not advertises_weak(app.suites_for_destination("api.pinme.com"))

    def test_pinned_weak_flag_wins(self, world):
        from repro.tls.ciphers import advertises_weak

        app = make_app(world)
        app.behavior.usage_for("api.pinme.com").weak_ciphers = True
        assert advertises_weak(app.suites_for_destination("api.pinme.com"))


class TestBehavior:
    def test_usages_within_window(self, world):
        app = make_app(world)
        hosts = [u.hostname for u in app.behavior.usages_within(30)]
        assert hosts == ["api.pinme.com"]

    def test_expected_handshakes(self):
        behavior = NetworkBehavior(
            [
                DestinationUsage("a.com", used_connections=2, redundant_connections=1),
                DestinationUsage("b.com", start_offset_s=50.0, used_connections=3),
            ]
        )
        assert behavior.expected_handshakes(30) == 3
        assert behavior.expected_handshakes(60) == 6

    def test_usage_for_case_insensitive(self, world):
        app = make_app(world)
        assert app.behavior.usage_for("API.PINME.COM") is not None
        assert app.behavior.usage_for("nope.com") is None

    def test_payloads_per_connection(self):
        usage = DestinationUsage("a.com", used_connections=3)
        assert len(usage.payloads()) == 3


class TestObfuscation:
    def test_roundtrip(self):
        token = "sha256/QUJDREVGRw=="
        blob = obfuscate_token(token)
        assert "sha256/" not in blob
        assert deobfuscate_token(blob) == token

    def test_deobfuscate_rejects_plain(self):
        with pytest.raises(ValueError):
            deobfuscate_token("sha256/QUJD")


class TestPackageBuilders:
    def _ctx(self, world):
        hierarchy, _, _ = world
        return PackagingContext(
            public_root_pems=[c.to_pem() for c in hierarchy.root_certificates()],
            rng=DeterministicRng(7),
        )

    def test_android_package_shape(self, world):
        app = make_app(world, sdk_names=["Firebase"])
        pkg = build_android_package(app, self._ctx(world))
        assert "AndroidManifest.xml" in pkg.package
        assert any(
            p.startswith("smali/com/google/firebase")
            for p in pkg.package.paths()
        )

    def test_android_nsc_file_emitted(self, world):
        app = make_app(world, mechanism=PinMechanism.NSC)
        pkg = build_android_package(app, self._ctx(world))
        assert "res/xml/network_security_config.xml" in pkg.package
        from repro.appmodel.nsc import NSCConfig

        config = NSCConfig.from_xml(
            pkg.package.get("res/xml/network_security_config.xml").content
        )
        assert config.has_pins()

    def test_android_nsc_file_without_pins(self, world):
        app = make_app(world, pinning_specs=[], uses_nsc=True)
        pkg = build_android_package(app, self._ctx(world))
        from repro.appmodel.nsc import NSCConfig

        config = NSCConfig.from_xml(
            pkg.package.get("res/xml/network_security_config.xml").content
        )
        assert not config.has_pins()

    def test_android_platform_mismatch(self, world):
        app = make_app(world, platform="ios")
        with pytest.raises(AppModelError):
            build_android_package(app, self._ctx(world))

    def test_android_custom_tls_pins_in_native_lib(self, world):
        app = make_app(world, mechanism=PinMechanism.CUSTOM_TLS)
        pkg = build_android_package(app, self._ctx(world))
        native = [p for p in pkg.package.paths() if p.startswith("lib/")]
        assert native
        assert pkg.package.get(native[0]).binary

    def test_ios_package_encrypted_gate(self, world):
        app = make_app(world, platform="ios", mechanism=PinMechanism.URLSESSION)
        pkg = build_ios_package(app, self._ctx(world))
        with pytest.raises(PackageEncryptedError):
            pkg.ipa.payload()
        tree = pkg.ipa.decrypt()
        assert any("Info.plist" in p for p in tree.paths())

    def test_ios_entitlements_carry_associated_domains(self, world):
        app = make_app(
            world,
            platform="ios",
            mechanism=PinMechanism.URLSESSION,
            associated_domains=("pinme.com",),
        )
        pkg = build_ios_package(app, self._ctx(world))
        tree = pkg.ipa.decrypt()
        xcent = [p for p in tree.paths() if p.endswith(".xcent")]
        assert xcent
        from repro.appmodel.plist import Entitlements

        parsed = Entitlements.from_plist_xml(tree.get(xcent[0]).content)
        assert parsed.associated_domains == ("pinme.com",)

    def test_ios_platform_mismatch(self, world):
        app = make_app(world)
        with pytest.raises(AppModelError):
            build_ios_package(app, self._ctx(world))

    def test_ios_raw_cert_as_cer_file(self, world):
        _, _, issued = world
        spec = PinningSpec(
            domains=("api.pinme.com",),
            mechanism=PinMechanism.AFNETWORKING,
            form=PinForm.RAW_CERTIFICATE,
        )
        spec.resolve_domain("api.pinme.com", issued.chain)
        app = make_app(world, platform="ios", pinning_specs=[spec])
        pkg = build_ios_package(app, self._ctx(world))
        tree = pkg.ipa.decrypt()
        assert any(p.endswith(".cer") for p in tree.paths())
