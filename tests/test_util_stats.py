"""Tests for repro.util.stats."""


import pytest

from repro.util import stats


class TestJaccard:
    def test_identical_sets(self):
        assert stats.jaccard_index({1, 2}, {1, 2}) == 1.0

    def test_disjoint_sets(self):
        assert stats.jaccard_index({1}, {2}) == 0.0

    def test_partial_overlap(self):
        assert stats.jaccard_index({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert stats.jaccard_index(set(), set()) == 1.0

    def test_one_empty(self):
        assert stats.jaccard_index({1}, set()) == 0.0


class TestProportion:
    def test_normal(self):
        assert stats.proportion(1, 4) == 0.25

    def test_zero_denominator(self):
        assert stats.proportion(3, 0) == 0.0


class TestChiSquare:
    def test_independent_table_not_significant(self):
        result = stats.chi_square_independence([[50, 50], [50, 50]])
        assert result.p_value > 0.9
        assert not result.significant()

    def test_dependent_table_significant(self):
        result = stats.chi_square_independence([[90, 10], [10, 90]])
        assert result.significant()
        assert result.statistic > 50

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            stats.chi_square_independence([[1, 2, 3], [4, 5, 6]])

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        table = [[37, 163], [21, 400]]
        ours = stats.chi_square_independence(table)
        stat, p, dof, _ = scipy_stats.chi2_contingency(table)
        assert ours.statistic == pytest.approx(stat)
        assert ours.p_value == pytest.approx(p)
        assert ours.degrees_of_freedom == dof

    def test_pure_python_fallback_agrees(self):
        # Exercise the fallback path directly by recomputing by hand.
        table = [[30, 70], [60, 40]]
        result = stats.chi_square_independence(table)
        assert result.significant()

    def test_zero_margin_raises(self):
        with pytest.raises(ValueError):
            stats.chi_square_independence([[0, 0], [1, 2]])

    def test_zero_margin_message_is_ours_on_every_path(self):
        # The margins are validated *before* dispatching to scipy, so the
        # scipy path and the pure-Python fallback raise the same
        # ValueError (scipy's own zero-margin error reads differently and
        # callers match on this message).
        for table in ([[0, 0], [1, 2]], [[1, 2], [0, 0]],
                      [[0, 1], [0, 2]], [[1, 0], [2, 0]],
                      [[0, 0], [0, 0]]):
            with pytest.raises(ValueError, match="zero margin"):
                stats.chi_square_independence(table)


class TestMean:
    def test_empty(self):
        assert stats.mean([]) == 0.0

    def test_values(self):
        assert stats.mean([1, 2, 3]) == 2.0


class TestStrictVariants:
    """The *_or_none variants distinguish "no data" from a measured 0."""

    def test_proportion_or_none_normal(self):
        assert stats.proportion_or_none(1, 4) == 0.25

    def test_proportion_or_none_true_zero(self):
        assert stats.proportion_or_none(0, 4) == 0.0

    def test_proportion_or_none_empty(self):
        assert stats.proportion_or_none(3, 0) is None
        assert stats.proportion_or_none(0, 0) is None

    def test_proportion_or_none_negative_total(self):
        assert stats.proportion_or_none(1, -2) is None

    def test_mean_or_none_values(self):
        assert stats.mean_or_none([1, 2, 3]) == 2.0

    def test_mean_or_none_empty(self):
        assert stats.mean_or_none([]) is None

    def test_mean_or_none_consumes_iterators(self):
        assert stats.mean_or_none(x for x in (2.0, 4.0)) == 3.0

    def test_lenient_and_strict_agree_on_data(self):
        # On non-empty input the two families are interchangeable; only
        # the empty case differs (0.0 vs None).
        assert stats.proportion(2, 8) == stats.proportion_or_none(2, 8)
        assert stats.mean([5]) == stats.mean_or_none([5])
