"""Tests for repro.appmodel.plist."""

import pytest

from repro.appmodel.plist import (
    ATSPinnedDomain,
    Entitlements,
    InfoPlist,
)
from repro.errors import AppModelError


class TestInfoPlist:
    def test_roundtrip_minimal(self):
        info = InfoPlist(bundle_id="com.a.b", bundle_name="AB")
        parsed = InfoPlist.from_plist_xml(info.to_plist_xml())
        assert parsed.bundle_id == "com.a.b"
        assert parsed.bundle_name == "AB"
        assert parsed.ats_pinned_domains == []

    def test_roundtrip_with_pinned_domains(self):
        info = InfoPlist(
            bundle_id="com.a.b",
            bundle_name="AB",
            ats_pinned_domains=[
                ATSPinnedDomain(
                    domain="api.a.com",
                    include_subdomains=False,
                    spki_sha256_base64=("QUJD", "REVG"),
                )
            ],
        )
        parsed = InfoPlist.from_plist_xml(info.to_plist_xml())
        assert len(parsed.ats_pinned_domains) == 1
        entry = parsed.ats_pinned_domains[0]
        assert entry.domain == "api.a.com"
        assert entry.include_subdomains is False
        assert entry.spki_sha256_base64 == ("QUJD", "REVG")

    def test_arbitrary_loads_flag(self):
        info = InfoPlist(
            bundle_id="x", bundle_name="x", ats_allows_arbitrary_loads=True
        )
        assert InfoPlist.from_plist_xml(
            info.to_plist_xml()
        ).ats_allows_arbitrary_loads

    def test_malformed(self):
        with pytest.raises(AppModelError):
            InfoPlist.from_plist_xml("not a plist")

    def test_missing_bundle_id(self):
        import plistlib

        xml = plistlib.dumps({"CFBundleName": "X"}).decode()
        with pytest.raises(AppModelError):
            InfoPlist.from_plist_xml(xml)


class TestEntitlements:
    def test_roundtrip(self):
        ent = Entitlements(
            bundle_id="com.a.b", associated_domains=("a.com", "www.a.com")
        )
        parsed = Entitlements.from_plist_xml(ent.to_plist_xml())
        assert parsed.bundle_id == "com.a.b"
        assert parsed.associated_domains == ("a.com", "www.a.com")

    def test_empty_domains(self):
        parsed = Entitlements.from_plist_xml(
            Entitlements(bundle_id="x").to_plist_xml()
        )
        assert parsed.associated_domains == ()

    def test_malformed(self):
        with pytest.raises(AppModelError):
            Entitlements.from_plist_xml("garbage")


class TestNarrowedExceptionContract:
    """Parse errors wrap as AppModelError; caller bugs propagate."""

    def test_binary_garbage_wraps(self):
        with pytest.raises(AppModelError, match="malformed Info.plist"):
            InfoPlist.from_plist_xml("bplist00-but-not-really\x00\x01")

    def test_non_dict_top_level_wraps(self):
        import plistlib

        xml = plistlib.dumps(["an", "array"]).decode()
        with pytest.raises(AppModelError, match="expected dict"):
            InfoPlist.from_plist_xml(xml)
        with pytest.raises(AppModelError, match="expected dict"):
            Entitlements.from_plist_xml(xml)

    def test_none_input_propagates_attribute_error(self):
        # .encode on None — a caller bug the old `except Exception`
        # silently relabelled as a malformed plist.
        with pytest.raises(AttributeError):
            InfoPlist.from_plist_xml(None)
        with pytest.raises(AttributeError):
            Entitlements.from_plist_xml(None)
