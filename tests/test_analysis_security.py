"""Unit tests for the cipher-security analysis (Table 8)."""


from repro.core.analysis.security import analyze_ciphers
from repro.core.dynamic.pipeline import DynamicAppResult
from repro.core.dynamic.detector import DestinationVerdict
from repro.netsim.capture import TrafficCapture
from repro.netsim.flow import FlowRecord
from repro.tls.ciphers import MODERN_SUITES, WEAK_SUITES
from repro.util.simtime import STUDY_START


def flow(sni, weak):
    suites = MODERN_SUITES + ((WEAK_SUITES[0],) if weak else ())
    return FlowRecord(
        sni=sni, started_at=STUDY_START, offered_suites=tuple(suites)
    )


def result(app_id, flows, pinned=()):
    verdicts = {}
    for f in flows:
        verdicts.setdefault(
            f.sni,
            DestinationVerdict(destination=f.sni, pinned=f.sni in pinned),
        )
    return DynamicAppResult(
        app_id=app_id,
        platform="android",
        verdicts=verdicts,
        direct_capture=TrafficCapture(flows),
    )


class TestAnalyzeCiphers:
    def test_overall_counts_any_weak_flow(self):
        results = [
            result("a", [flow("x.com", True), flow("y.com", False)]),
            result("b", [flow("x.com", False)]),
        ]
        cell = analyze_ciphers(results)
        assert cell.overall_rate == 0.5
        assert cell.pinning_apps == 0
        assert cell.pinning_rate == 0.0

    def test_pinning_rate_only_pinned_flows(self):
        results = [
            # Weak cipher only on an unpinned destination: the pinning
            # column must not count it.
            result(
                "a",
                [flow("pin.com", False), flow("other.com", True)],
                pinned={"pin.com"},
            ),
            # Weak cipher on the pinned destination itself.
            result(
                "b",
                [flow("pin.com", True)],
                pinned={"pin.com"},
            ),
        ]
        cell = analyze_ciphers(results)
        assert cell.pinning_apps == 2
        assert cell.pinning_rate == 0.5
        assert cell.overall_rate == 1.0

    def test_empty(self):
        cell = analyze_ciphers([])
        assert cell.overall_rate == 0.0
        assert cell.pinning_rate == 0.0

    def test_weak_advertisement_detection(self):
        assert flow("x.com", True).advertised_weak_cipher()
        assert not flow("x.com", False).advertised_weak_cipher()
