"""Tests for reporting tables and the prevalence/security helpers."""

import pytest

from repro.core.analysis.prevalence import PrevalenceCell, prevalence_table
from repro.core.analysis.security import CipherSecurityCell, cipher_table
from repro.reporting.tables import Table, percent


class TestTable:
    def test_add_row_validates_width(self):
        table = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
        table.add_row(1, 2)
        assert table.rows == [[1, 2]]

    def test_render_contains_everything(self):
        table = Table(title="My Table", headers=["x", "y"])
        table.add_row("hello", 3.14159)
        rendered = table.render()
        assert "My Table" in rendered
        assert "hello" in rendered
        assert "3.14" in rendered

    def test_column(self):
        table = Table(title="T", headers=["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_csv(self):
        table = Table(title="T", headers=["a", "b"])
        table.add_row("x", 1)
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert "x,1" in csv_text

    def test_percent(self):
        assert percent(0.123456) == "12.35%"
        assert percent(0.5, 0) == "50%"


class TestPrevalenceCells:
    def test_rate(self):
        cell = PrevalenceCell(count=5, total=100)
        assert cell.rate == 0.05
        assert cell.render() == "5.00% (5)"

    def test_zero_total(self):
        assert PrevalenceCell(0, 0).rate == 0.0

    def test_prevalence_table_layout(self):
        cells = {
            ("android", "popular"): {
                "dynamic": PrevalenceCell(67, 1000),
                "embedded": PrevalenceCell(197, 1000),
                "nsc": PrevalenceCell(18, 1000),
            },
            ("ios", "popular"): {
                "dynamic": PrevalenceCell(114, 1000),
                "embedded": PrevalenceCell(334, 1000),
                "nsc": PrevalenceCell(0, 1000),
            },
        }
        table = prevalence_table(cells)
        assert len(table.rows) == 2
        ios_row = table.rows[1]
        assert ios_row[-1] == "-"  # no NSC column on iOS


class TestCipherTable:
    def test_layout(self):
        cells = {
            ("android", "popular"): CipherSecurityCell(0.18, 0.015, 1000, 67),
            ("ios", "popular"): CipherSecurityCell(0.95, 0.46, 1000, 114),
        }
        table = cipher_table(cells)
        assert len(table.rows) == 2
        assert table.rows[0][2] == "18.00%"
