"""Tests for reporting tables and the prevalence/security helpers."""

import pytest

from repro.core.analysis.prevalence import PrevalenceCell, prevalence_table
from repro.core.analysis.security import CipherSecurityCell, cipher_table
from repro.reporting.tables import Table, percent


class TestTable:
    def test_add_row_validates_width(self):
        table = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
        table.add_row(1, 2)
        assert table.rows == [[1, 2]]

    def test_render_contains_everything(self):
        table = Table(title="My Table", headers=["x", "y"])
        table.add_row("hello", 3.14159)
        rendered = table.render()
        assert "My Table" in rendered
        assert "hello" in rendered
        assert "3.14" in rendered

    def test_column(self):
        table = Table(title="T", headers=["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_csv(self):
        table = Table(title="T", headers=["a", "b"])
        table.add_row("x", 1)
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert "x,1" in csv_text

    def test_percent(self):
        assert percent(0.123456) == "12.35%"
        assert percent(0.5, 0) == "50%"


class TestPrevalenceCells:
    def test_rate(self):
        cell = PrevalenceCell(count=5, total=100)
        assert cell.rate == 0.05
        assert cell.render() == "5.00% (5)"

    def test_zero_total(self):
        assert PrevalenceCell(0, 0).rate == 0.0

    def test_prevalence_table_layout(self):
        cells = {
            ("android", "popular"): {
                "dynamic": PrevalenceCell(67, 1000),
                "embedded": PrevalenceCell(197, 1000),
                "nsc": PrevalenceCell(18, 1000),
            },
            ("ios", "popular"): {
                "dynamic": PrevalenceCell(114, 1000),
                "embedded": PrevalenceCell(334, 1000),
                "nsc": PrevalenceCell(0, 1000),
            },
        }
        table = prevalence_table(cells)
        assert len(table.rows) == 2
        ios_row = table.rows[1]
        assert ios_row[-1] == "-"  # no NSC column on iOS


class TestCipherTable:
    def test_layout(self):
        cells = {
            ("android", "popular"): CipherSecurityCell(0.18, 0.015, 1000, 67),
            ("ios", "popular"): CipherSecurityCell(0.95, 0.46, 1000, 114),
        }
        table = cipher_table(cells)
        assert len(table.rows) == 2
        assert table.rows[0][2] == "18.00%"


class TestNoDataRendering:
    """An empty denominator renders as the no-data dash, never 0.00%."""

    def test_percent_none_is_no_data(self):
        from repro.reporting.tables import NO_DATA

        assert percent(None) == NO_DATA
        assert NO_DATA not in percent(0.0)

    def test_none_cell_formats_as_no_data(self):
        from repro.reporting.tables import NO_DATA

        table = Table(title="T", headers=["a"])
        table.add_row(None)
        assert NO_DATA in table.render()
        assert NO_DATA in table.to_csv()

    def test_prevalence_cell_distinguishes_empty_from_zero(self):
        from repro.reporting.tables import NO_DATA

        empty = PrevalenceCell(0, 0)
        zero = PrevalenceCell(0, 50)
        assert empty.render() == NO_DATA
        assert empty.rate_or_none is None
        assert zero.render() == "0.00% (0)"
        assert zero.rate_or_none == 0.0

    def test_cipher_table_empty_dataset(self):
        from repro.reporting.tables import NO_DATA

        cells = {
            ("android", "popular"): CipherSecurityCell(
                overall_rate=0.0, pinning_rate=0.0,
                total_apps=0, pinning_apps=0,
            ),
            ("ios", "popular"): CipherSecurityCell(
                overall_rate=0.25, pinning_rate=0.0,
                total_apps=4, pinning_apps=2,
            ),
        }
        rendered = cipher_table(cells).render()
        rows = rendered.splitlines()
        android_row = next(r for r in rows if "Android" in r)
        ios_row = next(r for r in rows if "iOS" in r)
        # No apps measured → both cells dash out.
        assert android_row.count(NO_DATA) == 2
        # Measured zero among pinning apps stays a real 0.00%.
        assert "25.00%" in ios_row and "0.00%" in ios_row
        assert NO_DATA not in ios_row


class TestLenientStatsGuard:
    """No render-path module may use the lenient stats helpers.

    ``stats.proportion`` / ``stats.mean`` collapse "no data" into 0.0;
    fed into ``percent()`` or cell formatting they print a fabricated
    measured zero.  Every table/figure call site must go through the
    strict ``*_or_none`` variants, whose ``None`` renders as NO_DATA.
    """

    RENDER_PACKAGES = ("core/analysis", "reporting", "core/sweep")
    LENIENT = {"proportion", "mean"}

    def test_no_lenient_stats_in_render_paths(self):
        import ast
        from pathlib import Path

        import repro

        src_root = Path(repro.__file__).parent
        offenders = []
        for rel in self.RENDER_PACKAGES:
            for path in sorted((src_root / rel).rglob("*.py")):
                tree = ast.parse(path.read_text(encoding="utf-8"))
                for node in ast.walk(tree):
                    if (
                        isinstance(node, ast.ImportFrom)
                        and node.module == "repro.util.stats"
                    ):
                        for alias in node.names:
                            if alias.name in self.LENIENT:
                                offenders.append(
                                    f"{rel}/{path.name}:{node.lineno} "
                                    f"imports lenient {alias.name}"
                                )
                    if (
                        isinstance(node, ast.Attribute)
                        and node.attr in self.LENIENT
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "stats"
                    ):
                        offenders.append(
                            f"{rel}/{path.name}:{node.lineno} "
                            f"uses stats.{node.attr}"
                        )
        assert not offenders, (
            "lenient stats helpers reached a render path; use "
            f"proportion_or_none/mean_or_none instead: {offenders}"
        )
