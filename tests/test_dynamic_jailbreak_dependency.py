"""Behaviour without a jailbroken iOS device.

The jailbreak gates two things: IPA decryption (static analysis and
entitlement reading) and Frida (circumvention).  The Apple-domain
exclusion needs neither.
"""

import pytest

from repro.core.dynamic.pipeline import DynamicPipeline
from repro.corpus import CorpusConfig, CorpusGenerator


@pytest.fixture(scope="module")
def locked_world():
    """A corpus plus a pipeline whose iPhone is NOT jailbroken."""
    corpus = CorpusGenerator(CorpusConfig(seed=31337).scaled(0.02)).generate()
    pipeline = DynamicPipeline(corpus)
    pipeline.ios_device.jailbroken = False
    return corpus, pipeline


class TestWithoutJailbreak:
    def test_apple_domains_still_excluded(self, locked_world):
        corpus, pipeline = locked_world
        packaged = corpus.dataset("ios", "popular")[0]
        result = pipeline.run_app(packaged)
        assert "icloud.com" in result.excluded_destinations
        # No entitlement access: associated domains are not excluded.
        for domain in packaged.app.associated_domains:
            assert domain not in result.excluded_destinations

    def test_associated_domains_become_false_positives(self, locked_world):
        """Without the entitlements, OS verification traffic to associated
        domains is indistinguishable from pinning — the §4.5 problem."""
        corpus, pipeline = locked_world
        false_positives = 0
        for packaged in corpus.dataset("ios", "popular"):
            app = packaged.app
            if not app.associated_domains:
                continue
            result = pipeline.run_app(packaged)
            for destination in result.pinned_destinations:
                if not app.pins_domain(destination):
                    false_positives += 1
        # Some associated-domain traffic is resolvable and verifies,
        # looking pinned.
        assert false_positives > 0

    def test_rerun_methodology_still_works(self, locked_world):
        """The 2-minute-wait re-run avoids the problem without needing
        entitlements at all."""
        corpus, pipeline = locked_world
        for packaged in corpus.dataset("ios", "popular"):
            app = packaged.app
            if not app.associated_domains:
                continue
            result = pipeline.run_app(packaged, pre_launch_wait_s=120.0)
            for destination in result.pinned_destinations:
                assert app.pins_domain(destination), destination

    def test_static_analysis_blocked(self, locked_world):
        from repro.core.static.pipeline import StaticPipeline
        from repro.errors import DeviceError

        corpus, _ = locked_world
        pipeline = StaticPipeline(
            corpus.registry.ctlog, jailbroken_device_available=False
        )
        with pytest.raises(DeviceError):
            pipeline.analyze_app(corpus.dataset("ios", "popular")[1])

    def test_frida_blocked(self, locked_world):
        from repro.core.circumvent import FridaSession
        from repro.errors import InstrumentationError

        _, pipeline = locked_world
        with pytest.raises(InstrumentationError):
            FridaSession(pipeline.ios_device)
