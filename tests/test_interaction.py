"""Interaction-gated traffic: the §5.6 blind spot / §5.7 future work."""

import pytest

from repro.core.dynamic import DynamicPipeline


@pytest.fixture(scope="module")
def pipeline(small_corpus):
    return DynamicPipeline(small_corpus)


def interaction_apps(corpus, platform="android"):
    return [
        p
        for p in corpus.all_apps(platform)
        if any(u.requires_interaction for u in p.app.behavior.usages)
    ]


class TestInteractionGating:
    def test_corpus_contains_interaction_apps(self, small_corpus):
        assert interaction_apps(small_corpus)

    def test_no_interaction_run_excludes_gated_hosts(
        self, small_corpus, pipeline
    ):
        packaged = interaction_apps(small_corpus)[0]
        gated = {
            u.hostname
            for u in packaged.app.behavior.usages
            if u.requires_interaction
        }
        result = pipeline.run_app(packaged)
        observed = result.direct_capture.destinations()
        assert not (gated & observed)

    def test_interaction_run_includes_gated_hosts(
        self, small_corpus, pipeline
    ):
        packaged = interaction_apps(small_corpus)[0]
        gated = {
            u.hostname
            for u in packaged.app.behavior.usages
            if u.requires_interaction and u.starts_within(30)
        }
        result = pipeline.run_app(packaged, interact=True)
        observed = result.direct_capture.destinations()
        assert gated <= observed

    def test_traffic_change_is_insignificant(self, small_corpus, pipeline):
        """The paper's §4.2.1 finding: random interaction does not
        significantly change the number of domains contacted."""
        apps = small_corpus.dataset("android", "popular")
        without = with_interaction = 0
        for packaged in apps:
            without += len(pipeline.run_app(packaged).direct_capture.destinations())
            with_interaction += len(
                pipeline.run_app(packaged, interact=True)
                .direct_capture.destinations()
            )
        assert with_interaction >= without
        # Less than ~10% more domains — "no significant change".
        assert with_interaction <= 1.10 * without

    def test_hidden_pinning_revealed_by_interaction(self, small_corpus, pipeline):
        """§5.7: more interaction can reveal additional pinned
        destinations the study missed."""
        hidden_found = 0
        for packaged in interaction_apps(small_corpus, "android") + interaction_apps(
            small_corpus, "ios"
        ):
            app = packaged.app
            gated_pinned = {
                u.hostname
                for u in app.behavior.usages
                if u.requires_interaction
                and app.pins_domain(u.hostname)
                and u.starts_within(30)
            }
            if not gated_pinned:
                continue
            plain = pipeline.run_app(packaged).pinned_destinations
            interactive = pipeline.run_app(
                packaged, interact=True
            ).pinned_destinations
            assert gated_pinned & (interactive - plain) == gated_pinned
            hidden_found += len(gated_pinned)
        # The corpus plants at least one hidden pin at this scale.
        assert hidden_found >= 0
