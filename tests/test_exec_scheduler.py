"""Tests for the cost-aware scheduler: chunk sizing, the parallel-vs-
serial decision, the bounded dispatch window, and strict-path cleanup.

The cost model's thresholds are part of the engine's documented
behaviour (DESIGN.md §11), so they are asserted at explicit values with
explicit CPU counts — no test here depends on the machine it runs on.
"""

import threading
from concurrent.futures import Future

import pytest

from repro.core import obs
from repro.core.exec import ExecutionEngine, ExecutionPlan
from repro.core.exec import costmodel
from repro.core.exec.plan import AUTO_WORKERS
from repro.corpus import CorpusConfig, CorpusGenerator


@pytest.fixture(scope="module")
def tiny_corpus():
    return CorpusGenerator(CorpusConfig(seed=1337).scaled(0.015)).generate()


def _units(kind, n_units, apps_per_unit, extra=None):
    return [
        (kind, "android", "common", tuple(range(apps_per_unit)), extra)
        for _ in range(n_units)
    ]


class TestCostModelChunks:
    def test_static_units_carry_more_apps_than_dynamic(self):
        static = costmodel.chunk_size("static", 10_000, 4)
        dynamic = costmodel.chunk_size("dynamic", 10_000, 4)
        assert static > dynamic
        # Target-seconds sizing: TARGET_UNIT_S over the per-app cost.
        assert static == int(
            costmodel.TARGET_UNIT_S / costmodel.APP_COST_S["static"]
        )
        assert dynamic == int(
            costmodel.TARGET_UNIT_S / costmodel.APP_COST_S["dynamic"]
        )

    def test_small_dataset_still_spreads_over_workers(self):
        # 1000 static apps would fit one TARGET_UNIT_S unit; an even
        # split across workers wins so the pool is not left idle.
        assert costmodel.chunk_size("static", 1000, 4) == 250

    def test_unknown_kind_assumes_dynamic_cost(self):
        assert costmodel.chunk_size(None, 10_000, 4) == costmodel.chunk_size(
            "dynamic", 10_000, 4
        )

    def test_plan_chunk_for_is_kind_aware(self):
        plan = ExecutionPlan(workers=4)
        assert plan.chunk_for(10_000, "static") > plan.chunk_for(
            10_000, "dynamic"
        )
        # Explicit chunk_size still overrides the model.
        assert ExecutionPlan(workers=4, chunk_size=3).chunk_for(
            10_000, "static"
        ) == 3


class TestAutoWorkers:
    def test_auto_plan_implies_adaptive(self):
        plan = ExecutionPlan(workers=AUTO_WORKERS)
        assert plan.adaptive
        assert plan.worker_count >= 1

    def test_integer_plan_is_not_adaptive_by_default(self):
        assert not ExecutionPlan(workers=4).adaptive

    def test_bad_workers_string_rejected(self):
        with pytest.raises(ValueError):
            ExecutionPlan(workers="many")


class TestShouldParallelize:
    def test_single_cpu_never_parallelizes(self):
        units = _units("dynamic", 50, 80, 0.0)
        assert not costmodel.should_parallelize(units, 4, cpus=1)

    def test_tiny_batch_never_parallelizes(self):
        # 100 static apps model to 10 ms of compute — under the
        # MIN_PARALLEL_SERIAL_S floor even with a warm pool and 8 CPUs.
        units = _units("static", 1, 100)
        assert costmodel.serial_estimate_s(units) < (
            costmodel.MIN_PARALLEL_SERIAL_S
        )
        assert not costmodel.should_parallelize(
            units, 8, pool_started=True, cpus=8
        )

    def test_cold_pool_spawn_cost_can_flip_the_decision(self):
        # 40 dynamic apps: 120 ms of modeled compute.  Against a cold
        # 4-worker pool the 320 ms spawn charge loses; against a warm
        # pool the same batch wins.
        units = _units("dynamic", 1, 40, 0.0)
        assert not costmodel.should_parallelize(
            units, 4, pool_started=False, cpus=4
        )
        assert costmodel.should_parallelize(
            units, 4, pool_started=True, cpus=4
        )

    def test_large_batch_parallelizes_even_cold(self):
        units = _units("dynamic", 20, 80, 0.0)  # ~4.8 s modeled serial
        assert costmodel.should_parallelize(
            units, 4, pool_started=False, cpus=4
        )

    def test_margin_requires_a_real_win(self):
        # Workers beyond the CPU count only contend: 2 effective workers
        # halve compute but dispatch + spawn must still clear the 1.1×
        # margin.
        units = _units("dynamic", 2, 40, 0.0)
        serial = costmodel.serial_estimate_s(units)
        pool = costmodel.parallel_estimate_s(
            units, 2, pool_started=True, cpus=2
        )
        expected = pool * costmodel.PARALLEL_MARGIN < serial
        assert (
            costmodel.should_parallelize(
                units, 2, pool_started=True, cpus=2
            )
            == expected
        )

    def test_inflight_window_scales_with_workers(self):
        assert costmodel.inflight_window(1) == costmodel.INFLIGHT_PER_WORKER
        assert costmodel.inflight_window(4) == 4 * (
            costmodel.INFLIGHT_PER_WORKER
        )


class _AdversarialPool:
    """A fake pool that completes futures in reverse submission order.

    Each submitted future resolves to its unit after a delay that is
    *longer* for earlier submissions, so collection order is roughly the
    reverse of submission order — the worst case for merge ordering.
    Tracks the maximum number of simultaneously incomplete futures, which
    a windowed dispatcher must bound.
    """

    def __init__(self, total: int, step_s: float = 0.004):
        self.total = total
        self.step_s = step_s
        self.submitted = 0
        self.incomplete = 0
        self.max_incomplete = 0
        self._lock = threading.Lock()

    def submit(self, fn, unit):
        future = Future()
        with self._lock:
            order = self.submitted
            self.submitted += 1
            self.incomplete += 1
            self.max_incomplete = max(self.max_incomplete, self.incomplete)
        delay = (self.total - order) * self.step_s

        def complete():
            with self._lock:
                self.incomplete -= 1
            future.set_result(("result-for", unit))

        threading.Timer(delay, complete).start()
        return future


class TestBoundedWindow:
    def test_merge_order_survives_adversarial_completion(self, tiny_corpus):
        plan = ExecutionPlan(workers=2)
        engine = ExecutionEngine(tiny_corpus, plan)
        units = _units("static", 20, 1)
        pool = _AdversarialPool(total=len(units))
        engine._submit = lambda p, unit: p.submit(None, unit)

        collected = [None] * len(units)
        arrival = []

        def collect(position, unit, future):
            collected[position] = future.result()
            arrival.append(position)

        engine._dispatch_windowed(pool, enumerate(units), collect)
        assert collected == [("result-for", unit) for unit in units]
        # The adversarial pool actually exercised out-of-order arrival...
        assert arrival != sorted(arrival)
        # ...and the window stayed bounded the whole time.
        assert pool.max_incomplete <= costmodel.inflight_window(
            plan.worker_count
        )
        assert pool.submitted == len(units)


class TestAdaptiveFallback:
    def test_tiny_batch_runs_serial_without_a_pool(self, tiny_corpus):
        recorder = obs.Recorder()
        plan = ExecutionPlan(workers=2, adaptive=True)
        with ExecutionEngine(
            tiny_corpus, plan, recorder=recorder
        ) as engine:
            results = engine.execute(
                [("static", "android", "common", (0, 1), None)]
            )
            assert engine._pool is None
        assert len(results) == 1 and len(results[0]) == 2
        assert recorder.counter_value("exec.sched.serial_fallbacks") == 1
        assert recorder.counter_value("exec.sched.parallel_batches") == 0

    def test_worthwhile_batch_chooses_the_pool(self, tiny_corpus):
        engine = ExecutionEngine(
            tiny_corpus, ExecutionPlan(workers=4, adaptive=True)
        )
        # Decision only — no execution: 4.8 s of modeled dynamic work.
        units = _units("dynamic", 20, 80, 0.0)
        decision = costmodel.should_parallelize(
            units, 4, pool_started=False
        )
        assert engine._use_pool(units) == decision

    def test_non_adaptive_plan_always_uses_its_pool(self, tiny_corpus):
        engine = ExecutionEngine(tiny_corpus, ExecutionPlan(workers=2))
        assert engine._use_pool(
            [("static", "android", "common", (0,), None)]
        )


class TestStrictCleanup:
    def test_failed_strict_run_cancels_queued_work(self, tiny_corpus):
        """The strict error path shuts the pool down with
        ``cancel_futures=True`` — queued units are dropped, not drained."""
        calls = []
        engine = ExecutionEngine(tiny_corpus, ExecutionPlan(workers=2))
        original = engine.close

        def spying_close(cancel_futures=False):
            calls.append(cancel_futures)
            original(cancel_futures=cancel_futures)

        engine.close = spying_close
        units = _units("static", 3, 2) + [
            ("explodes", "android", "common", (0,), None)
        ]
        with pytest.raises(ValueError):
            engine.execute(units)
        assert calls == [True]
        assert engine._pool is None
