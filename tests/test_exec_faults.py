"""Tests for the engine's fault-tolerance layer.

Covers the escalation ladder (retry → quarantine → error ledger), the
checkpoint journal (resume replays journaled units bit-for-bit), pool
hygiene on strict-path errors, and graceful degradation of a full
``Study.run()`` under injected faults.
"""

from dataclasses import dataclass
from typing import Tuple

import pytest

from repro.core.analysis import Study
from repro.core.exec import (
    ExecutionEngine,
    ExecutionPlan,
    InjectedFault,
    SeededFaults,
    StudyCheckpoint,
    TransientFaults,
)
from repro.core.exec.checkpoint import split_unit
from repro.corpus import CorpusConfig, CorpusGenerator


@dataclass(frozen=True)
class FailApps:
    """Picklable predicate failing exactly the given (phase, app_id) pairs."""

    app_ids: Tuple[str, ...]
    phases: Tuple[str, ...] = ("static", "dynamic", "circumvent")

    def __call__(self, phase: str, app_id: str) -> bool:
        return phase in self.phases and app_id in self.app_ids


class CountingFaults:
    """Counts every consultation; fails the apps of an inner predicate."""

    def __init__(self, inner=None):
        self.inner = inner
        self.calls = {}

    def __call__(self, phase: str, app_id: str) -> bool:
        key = (phase, app_id)
        self.calls[key] = self.calls.get(key, 0) + 1
        return self.inner is not None and self.inner(phase, app_id)


@pytest.fixture(scope="module")
def tiny_corpus():
    return CorpusGenerator(CorpusConfig(seed=1337).scaled(0.015)).generate()


def _app_ids(corpus, key):
    return [p.app.app_id for p in corpus.dataset(*key)]


KEY = ("android", "common")


class TestQuarantine:
    def test_quarantine_isolates_the_failing_app(self, tiny_corpus):
        ids = _app_ids(tiny_corpus, KEY)
        bad = ids[1]
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(max_retries=1, chunk_size=len(ids)),
            fault_predicate=FailApps((bad,), phases=("static",)),
        )
        units = engine.units_for("static", KEY, range(len(ids)))
        assert len(units) == 1  # one chunk holds every app
        outcome = engine.execute_resilient(units)

        surviving = [r.app_id for r in outcome.items]
        assert bad not in surviving
        assert surviving == [i for i in ids if i != bad]
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.app_id == bad
        assert failure.phase == "static"
        assert failure.quarantined
        assert "InjectedFault" in failure.error

    def test_quarantine_disabled_drops_whole_unit(self, tiny_corpus):
        ids = _app_ids(tiny_corpus, KEY)
        bad = ids[1]
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(max_retries=0, chunk_size=len(ids), quarantine=False),
            fault_predicate=FailApps((bad,), phases=("static",)),
        )
        outcome = engine.execute_resilient(
            engine.units_for("static", KEY, range(len(ids)))
        )
        assert outcome.items == []
        assert sorted(f.app_id for f in outcome.failures) == sorted(ids)
        assert not any(f.quarantined for f in outcome.failures)

    def test_quarantined_survivors_match_fault_free_run(self, tiny_corpus):
        ids = _app_ids(tiny_corpus, KEY)
        bad = ids[0]
        clean = ExecutionEngine(tiny_corpus, ExecutionPlan())
        reference = {
            r.app_id: r.pinned_destinations
            for r in clean.map_dataset("dynamic", KEY, range(len(ids)), 0.0)
        }
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(chunk_size=len(ids)),
            fault_predicate=FailApps((bad,), phases=("dynamic",)),
        )
        outcome = engine.map_dataset_resilient(
            "dynamic", KEY, range(len(ids)), 0.0
        )
        for result in outcome.items:
            assert result.pinned_destinations == reference[result.app_id]


class TestRetries:
    def test_retries_attempted_exactly_max_retries_times(self, tiny_corpus):
        ids = _app_ids(tiny_corpus, KEY)
        bad = ids[0]
        faults = CountingFaults(FailApps((bad,), phases=("static",)))
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(max_retries=2, chunk_size=1),
            fault_predicate=faults,
        )
        outcome = engine.execute_resilient(
            engine.units_for("static", KEY, range(len(ids)))
        )
        # Initial attempt + exactly plan.max_retries retries.
        assert faults.calls[("static", bad)] == 3
        assert outcome.failures[0].attempts == 3
        # Healthy apps are consulted once — no gratuitous re-runs.
        assert faults.calls[("static", ids[1])] == 1

    def test_transient_fault_recovers_via_retry(self, tiny_corpus):
        ids = _app_ids(tiny_corpus, KEY)
        bad = ids[0]
        faults = TransientFaults(
            FailApps((bad,), phases=("static",)), attempts=1
        )
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(max_retries=1, chunk_size=1),
            fault_predicate=faults,
        )
        outcome = engine.execute_resilient(
            engine.units_for("static", KEY, range(len(ids)))
        )
        assert outcome.failures == []
        assert [r.app_id for r in outcome.items] == ids

    def test_zero_retries_fails_after_one_attempt(self, tiny_corpus):
        ids = _app_ids(tiny_corpus, KEY)
        faults = CountingFaults(FailApps((ids[0],), phases=("static",)))
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(max_retries=0, chunk_size=1),
            fault_predicate=faults,
        )
        outcome = engine.execute_resilient(
            engine.units_for("static", KEY, range(2))
        )
        assert faults.calls[("static", ids[0])] == 1
        assert outcome.failures[0].attempts == 1

    def test_backoff_doubles_and_is_capped(self):
        plan = ExecutionPlan(retry_backoff_s=0.5)
        assert plan.backoff_for(0) == 0.5
        assert plan.backoff_for(1) == 1.0
        assert plan.backoff_for(30) == 30.0  # RETRY_BACKOFF_CAP_S
        assert ExecutionPlan().backoff_for(5) == 0.0

    def test_plan_rejects_negative_fault_knobs(self):
        with pytest.raises(ValueError):
            ExecutionPlan(max_retries=-1)
        with pytest.raises(ValueError):
            ExecutionPlan(retry_backoff_s=-0.1)
        with pytest.raises(ValueError):
            ExecutionPlan(retry_deadline_s=-1.0)


class TestPoolHygiene:
    def test_strict_execute_shuts_pool_down_on_error(self, tiny_corpus):
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(workers=2, chunk_size=2),
            fault_predicate=FailApps(
                tuple(_app_ids(tiny_corpus, KEY)[:1]), phases=("static",)
            ),
        )
        units = engine.units_for("static", KEY, range(4))
        with pytest.raises(InjectedFault):
            engine.execute(units)
        assert engine._pool is None

    def test_parallel_resilient_keeps_pool_and_degrades(self, tiny_corpus):
        ids = _app_ids(tiny_corpus, KEY)
        bad = ids[0]
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(workers=2, chunk_size=len(ids)),
            fault_predicate=FailApps((bad,), phases=("static",)),
        )
        try:
            outcome = engine.execute_resilient(
                engine.units_for("static", KEY, range(len(ids)))
            )
            assert [r.app_id for r in outcome.items] == [
                i for i in ids if i != bad
            ]
            assert [f.app_id for f in outcome.failures] == [bad]
            assert engine._pool is not None  # healthy pool survives
        finally:
            engine.close()


class TestCheckpoint:
    def test_resume_replays_journaled_units_bit_for_bit(
        self, tiny_corpus, tmp_path
    ):
        path = tmp_path / "study.ckpt"
        ids = _app_ids(tiny_corpus, KEY)
        engine = ExecutionEngine(tiny_corpus, ExecutionPlan())
        units = engine.units_for("dynamic", KEY, range(len(ids)), 0.0)
        with StudyCheckpoint(path, tiny_corpus.seed, 30.0) as checkpoint:
            first = engine.execute_resilient(units, checkpoint)
            assert checkpoint.completed_units == len(units)

        counter = CountingFaults()
        replay_engine = ExecutionEngine(
            tiny_corpus, ExecutionPlan(), fault_predicate=counter
        )
        with StudyCheckpoint(path, tiny_corpus.seed, 30.0) as checkpoint:
            replayed = replay_engine.execute_resilient(units, checkpoint)
        assert counter.calls == {}  # nothing recomputed
        assert [
            (r.app_id, sorted(r.pinned_destinations))
            for r in replayed.items
        ] == [
            (r.app_id, sorted(r.pinned_destinations)) for r in first.items
        ]
        assert [
            [(f.sni, f.started_at, f.handshake_completed) for f in r.direct_capture]
            for r in replayed.items
        ] == [
            [(f.sni, f.started_at, f.handshake_completed) for f in r.direct_capture]
            for r in first.items
        ]

    def test_lookup_composes_quarantined_solo_units(
        self, tiny_corpus, tmp_path
    ):
        path = tmp_path / "solo.ckpt"
        engine = ExecutionEngine(tiny_corpus, ExecutionPlan())
        unit = engine.units_for("static", KEY, range(3))[0]
        solos = split_unit(unit)
        with StudyCheckpoint(path, tiny_corpus.seed, 30.0) as checkpoint:
            for solo in solos:
                checkpoint.record(solo, engine.execute([solo])[0])
            composed = checkpoint.lookup(unit)
        assert composed is not None
        assert [r.app_id for r in composed] == _app_ids(tiny_corpus, KEY)[:3]

    def test_seed_mismatch_is_rejected(self, tiny_corpus, tmp_path):
        path = tmp_path / "seeded.ckpt"
        with StudyCheckpoint(path, 1, 30.0):
            pass
        with pytest.raises(ValueError, match="seed"):
            StudyCheckpoint(path, 2, 30.0).open()

    def test_truncated_tail_is_discarded(self, tiny_corpus, tmp_path):
        path = tmp_path / "trunc.ckpt"
        engine = ExecutionEngine(tiny_corpus, ExecutionPlan())
        units = engine.units_for("static", KEY, range(2))
        with StudyCheckpoint(path, tiny_corpus.seed, 30.0) as checkpoint:
            checkpoint.record(units[0], engine.execute(units)[0])
        with open(path, "ab") as fh:
            fh.write(b"\x80\x04garbage")  # killed mid-write
        reopened = StudyCheckpoint(path, tiny_corpus.seed, 30.0).open()
        assert reopened.completed_units == 1
        reopened.close()

    def test_key_binds_sleep_and_unit_identity(self, tiny_corpus, tmp_path):
        path = tmp_path / "keys.ckpt"
        engine = ExecutionEngine(tiny_corpus, ExecutionPlan())
        unit = engine.units_for("static", KEY, range(2))[0]
        with StudyCheckpoint(path, tiny_corpus.seed, 30.0) as checkpoint:
            checkpoint.record(unit, engine.execute([unit])[0])
        other_window = StudyCheckpoint(path, tiny_corpus.seed, 60.0).open()
        assert other_window.lookup(unit) is None
        other_window.close()


class TestStudyDegradation:
    def test_faulted_study_completes_and_resume_converges(
        self, tiny_corpus, tmp_path
    ):
        path = tmp_path / "study.ckpt"
        baseline = Study(tiny_corpus).run()
        assert baseline.failures == []

        faulted = Study(
            tiny_corpus, fault_predicate=SeededFaults(0.1, seed=7)
        ).run(resume=path)
        assert faulted.failures  # something failed...
        assert faulted.table3().render()  # ...yet the study delivered
        failed_ids = {f.app_id for f in faulted.failures}
        for platform in ("android", "ios"):
            assert set(faulted.dynamic_by_app(platform)) <= set(
                baseline.dynamic_by_app(platform)
            )

        resumed = Study(tiny_corpus).run(resume=path)
        assert resumed.failures == []
        assert resumed.table3().render() == baseline.table3().render()
        assert resumed.figure2().render() == baseline.figure2().render()
        for platform in ("android", "ios"):
            ref = baseline.dynamic_by_app(platform)
            got = resumed.dynamic_by_app(platform)
            assert set(got) == set(ref)
            for app_id, result in ref.items():
                assert (
                    got[app_id].pinned_destinations
                    == result.pinned_destinations
                )
        assert failed_ids  # the faulted run really did lose apps

    def test_dynamic_failure_excludes_app_downstream(self, tiny_corpus):
        ids = _app_ids(tiny_corpus, ("android", "popular"))
        bad = ids[0]
        results = Study(
            tiny_corpus,
            fault_predicate=FailApps((bad,), phases=("dynamic",)),
        ).run()
        assert [f.app_id for f in results.failures] == [bad]
        assert bad not in results.dynamic_by_app("android")
        assert all(c.app_id != bad for c in results.circumvention["android"])


@dataclass(frozen=True)
class BuggyPredicate:
    """Picklable stand-in for a programming error inside per-app work:
    consulting it for a target app raises ``AttributeError``, the way a
    detector dereferencing a missing attribute would."""

    app_ids: Tuple[str, ...]
    phases: Tuple[str, ...] = ("static",)

    def __call__(self, phase: str, app_id: str) -> bool:
        if phase in self.phases and app_id in self.app_ids:
            raise AttributeError("simulated detector bug: no attribute 'verdict'")
        return False


class CountingBuggyPredicate:
    """Serial-only variant counting how often the bug site is reached."""

    def __init__(self, app_id: str):
        self.app_id = app_id
        self.calls = 0

    def __call__(self, phase: str, app_id: str) -> bool:
        if phase == "static" and app_id == self.app_id:
            self.calls += 1
            raise AttributeError("simulated detector bug")
        return False


class TestNonRetryableErrors:
    """Programming errors must surface as a failed run, not be retried
    or quarantined into the error ledger as fake per-app flakiness."""

    def test_classification_policy(self):
        from repro.core.exec import NON_RETRYABLE_ERRORS, is_retryable

        for exc_type in NON_RETRYABLE_ERRORS:
            assert not is_retryable(exc_type("boom"))
        # Transient/data-dependent errors keep the retry ladder.
        assert is_retryable(InjectedFault("static", "app-1"))
        assert is_retryable(ValueError("boom"))
        assert is_retryable(KeyError("boom"))
        assert is_retryable(OSError("boom"))

    def test_programming_error_propagates_without_retry(self, tiny_corpus):
        from repro.core import obs

        ids = _app_ids(tiny_corpus, KEY)
        predicate = CountingBuggyPredicate(ids[1])
        recorder = obs.Recorder()
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(max_retries=3, chunk_size=len(ids)),
            fault_predicate=predicate,
            recorder=recorder,
        )
        units = engine.units_for("static", KEY, range(len(ids)))
        with pytest.raises(AttributeError):
            engine.execute_resilient(units)
        # One consultation: the retry/quarantine ladder never engaged.
        assert predicate.calls == 1
        assert recorder.counter_value("exec.faults.nonretryable") == 1

    def test_programming_error_propagates_from_pool(self, tiny_corpus):
        ids = _app_ids(tiny_corpus, KEY)
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(workers=2, max_retries=2, chunk_size=2),
            fault_predicate=BuggyPredicate((ids[1],)),
        )
        try:
            with pytest.raises(AttributeError):
                engine.execute_resilient(
                    engine.units_for("static", KEY, range(len(ids)))
                )
        finally:
            engine.close()

    def test_injected_fault_still_earns_the_ladder(self, tiny_corpus):
        # The narrowing must not over-reach: an InjectedFault on the same
        # app still degrades into the ledger instead of raising.
        ids = _app_ids(tiny_corpus, KEY)
        engine = ExecutionEngine(
            tiny_corpus,
            ExecutionPlan(max_retries=1, chunk_size=len(ids)),
            fault_predicate=FailApps((ids[1],), phases=("static",)),
        )
        outcome = engine.execute_resilient(
            engine.units_for("static", KEY, range(len(ids)))
        )
        assert [f.app_id for f in outcome.failures] == [ids[1]]
