"""Regression tests for the study's memoization layers.

Three layers are covered:

* :class:`StudyResults` derived-view memos — rendering every table must
  compute each expensive aggregation exactly once;
* the windowed :func:`~repro.pki.validation.validate_chain` cache —
  replayed only inside the chain's validity window, keyed on the store
  generation, bypassed under revocation;
* the :class:`~repro.pki.ctlog.CTLog` search cache and its invalidation.
"""

import pytest

from repro.core.analysis import consistency as consistency_mod
from repro.core.analysis import prevalence as prevalence_mod
from repro.core.analysis.study import StudyResults
from repro.errors import ChainValidationError
from repro.pki import validation as validation_mod
from repro.pki.authority import PKIHierarchy
from repro.pki.ctlog import CTLog
from repro.pki.revocation import RevocationList
from repro.pki.store import RootStore
from repro.pki.validation import ValidationContext, validate_chain
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START


@pytest.fixture()
def fresh_results(study_results):
    """The session study's data behind a cold memo cache."""
    return StudyResults(
        corpus=study_results.corpus,
        static_reports=study_results.static_reports,
        dynamic_results=study_results.dynamic_results,
        circumvention=study_results.circumvention,
        pii=study_results.pii,
    )


class TestStudyResultsMemos:
    def test_prevalence_computed_once(self, fresh_results, monkeypatch):
        calls = {"n": 0}
        real = prevalence_mod.dataset_prevalence

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(prevalence_mod, "dataset_prevalence", counting)
        fresh_results.table2().render()
        fresh_results.table3().render()
        fresh_results.table2().render()
        assert calls["n"] == len(fresh_results.static_reports)

    def test_pair_classification_computed_once(self, fresh_results, monkeypatch):
        calls = {"n": 0}
        real = consistency_mod.classify_pair

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(consistency_mod, "classify_pair", counting)
        fresh_results.figure2().render()
        fresh_results.figure3().render()
        fresh_results.figure4()
        assert calls["n"] == len(fresh_results.pair_classifications())

    def test_per_app_indexes_are_identity_stable(self, fresh_results):
        for platform in ("android", "ios"):
            assert fresh_results.dynamic_by_app(
                platform
            ) is fresh_results.dynamic_by_app(platform)
            assert fresh_results.static_by_app(
                platform
            ) is fresh_results.static_by_app(platform)
        assert fresh_results.dynamic_by_app(
            "android"
        ) is not fresh_results.dynamic_by_app("ios")


@pytest.fixture()
def pki_world():
    hierarchy = PKIHierarchy(DeterministicRng(71))
    issued = hierarchy.issue_leaf_chain("api.cached.com", DeterministicRng(72))
    store = RootStore("test", hierarchy.root_certificates())
    return hierarchy, issued, store


class TestValidationCache:
    def _count_checks(self, monkeypatch):
        calls = {"n": 0}
        real = validation_mod._validate_chain_checks

        def counting(chain, ctx):
            calls["n"] += 1
            return real(chain, ctx)

        monkeypatch.setattr(validation_mod, "_validate_chain_checks", counting)
        return calls

    def test_repeat_validation_served_from_cache(
        self, pki_world, monkeypatch
    ):
        _, issued, store = pki_world
        calls = self._count_checks(monkeypatch)
        ctx = ValidationContext(
            store=store, hostname="api.cached.com", at_time=STUDY_START
        )
        first = validate_chain(issued.chain, ctx)
        second = validate_chain(issued.chain, ctx)
        assert calls["n"] == 1
        assert first is second

    def test_different_time_same_window_still_cached(self, pki_world):
        _, issued, store = pki_world
        a = validate_chain(
            issued.chain,
            ValidationContext(
                store=store, hostname="api.cached.com", at_time=STUDY_START
            ),
        )
        b = validate_chain(
            issued.chain,
            ValidationContext(
                store=store,
                hostname="api.cached.com",
                at_time=STUDY_START.plus_days(5),
            ),
        )
        assert a is b

    def test_cached_success_not_replayed_after_expiry(self, pki_world):
        _, issued, store = pki_world
        ok_ctx = ValidationContext(
            store=store, hostname="api.cached.com", at_time=STUDY_START
        )
        validate_chain(issued.chain, ok_ctx)
        late = ValidationContext(
            store=store,
            hostname="api.cached.com",
            at_time=STUDY_START.plus_years(5),
        )
        with pytest.raises(ChainValidationError) as err:
            validate_chain(issued.chain, late)
        assert err.value.reason == "expired"
        # And the expired outcome itself is not cached: in-window
        # validation still succeeds afterwards.
        assert validate_chain(issued.chain, ok_ctx).is_ca

    def test_cached_failure_not_replayed_outside_window(self, pki_world):
        _, issued, store = pki_world
        mismatch = ValidationContext(
            store=store, hostname="evil.com", at_time=STUDY_START
        )
        with pytest.raises(ChainValidationError) as err:
            validate_chain(issued.chain, mismatch)
        assert err.value.reason == "hostname_mismatch"
        late = ValidationContext(
            store=store, hostname="evil.com", at_time=STUDY_START.plus_years(5)
        )
        with pytest.raises(ChainValidationError) as err:
            validate_chain(issued.chain, late)
        # Validity precedes the hostname check, so the fresh computation
        # must report expiry — a stale cache hit would say mismatch.
        assert err.value.reason == "expired"

    def test_store_mutation_invalidates(self, pki_world):
        hierarchy, issued, _ = pki_world
        empty = RootStore("empty")
        ctx = ValidationContext(
            store=empty, hostname="api.cached.com", at_time=STUDY_START
        )
        with pytest.raises(ChainValidationError) as err:
            validate_chain(issued.chain, ctx)
        assert err.value.reason == "untrusted_root"
        empty.add(issued.root.certificate)
        assert validate_chain(issued.chain, ctx).is_ca

    def test_revocation_bypasses_cache(self, pki_world):
        _, issued, store = pki_world
        crl = RevocationList()
        ctx = ValidationContext(
            store=store,
            hostname="api.cached.com",
            at_time=STUDY_START,
            revocation=crl,
        )
        assert validate_chain(issued.chain, ctx).is_ca
        crl.revoke(issued.chain.leaf)
        with pytest.raises(ChainValidationError) as err:
            validate_chain(issued.chain, ctx)
        assert err.value.reason == "revoked"


class TestCTLogSearchCache:
    def test_miss_then_invalidated_on_log(self):
        hierarchy = PKIHierarchy(DeterministicRng(73))
        issued = hierarchy.issue_leaf_chain("pin.me.com", DeterministicRng(74))
        leaf = issued.chain.leaf
        ctlog = CTLog()
        pin = leaf.spki_pin()
        assert ctlog.search_pin(pin) == []  # miss is now cached
        ctlog.log_certificate(leaf)
        hits = ctlog.search_pin(pin)
        assert leaf in hits

    def test_repeat_searches_stable(self):
        hierarchy = PKIHierarchy(DeterministicRng(75))
        issued = hierarchy.issue_leaf_chain("stable.com", DeterministicRng(76))
        ctlog = CTLog()
        ctlog.log_chain(issued.chain)
        pin = issued.chain.leaf.spki_pin()
        assert ctlog.search_pin(pin) == ctlog.search_pin(pin)
