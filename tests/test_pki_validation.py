"""Tests for repro.pki.validation and revocation."""

import pytest

from repro.errors import ChainValidationError
from repro.pki.authority import CertificateAuthority, PKIHierarchy
from repro.pki.chain import CertificateChain
from repro.pki.revocation import RevocationList
from repro.pki.store import RootStore, StoreCatalog
from repro.pki.validation import (
    ValidationContext,
    chain_is_valid,
    classify_pki,
    hostname_matches,
    validate_chain,
)
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START


@pytest.fixture(scope="module")
def world():
    hierarchy = PKIHierarchy(DeterministicRng(31))
    catalog = StoreCatalog.build(hierarchy)
    issued = hierarchy.issue_leaf_chain("api.valid.com", DeterministicRng(32))
    return hierarchy, catalog, issued


def ctx_for(store, hostname="api.valid.com", at=STUDY_START, **kwargs):
    return ValidationContext(
        store=store, hostname=hostname, at_time=at, **kwargs
    )


class TestHostnameMatching:
    def test_exact_match(self):
        assert hostname_matches("api.x.com", "api.x.com")

    def test_case_insensitive(self):
        assert hostname_matches("API.X.COM", "api.x.com")

    def test_trailing_dot(self):
        assert hostname_matches("api.x.com.", "api.x.com")

    def test_wildcard_single_label(self):
        assert hostname_matches("*.x.com", "api.x.com")
        assert not hostname_matches("*.x.com", "a.b.x.com")

    def test_wildcard_does_not_match_apex(self):
        assert not hostname_matches("*.x.com", "x.com")

    def test_wildcard_only_leading(self):
        assert not hostname_matches("api.*.com", "api.x.com")

    def test_empty_patterns(self):
        assert not hostname_matches("", "x.com")
        assert not hostname_matches("x.com", "")
        assert not hostname_matches("*.", "x")


class TestChainValidation:
    def test_valid_chain_returns_anchor(self, world):
        _, catalog, issued = world
        anchor = validate_chain(issued.chain, ctx_for(catalog.mozilla))
        assert anchor.is_ca

    def test_hostname_mismatch(self, world):
        _, catalog, issued = world
        with pytest.raises(ChainValidationError) as err:
            validate_chain(
                issued.chain, ctx_for(catalog.mozilla, hostname="evil.com")
            )
        assert err.value.reason == "hostname_mismatch"

    def test_hostname_check_disabled(self, world):
        _, catalog, issued = world
        ctx = ctx_for(catalog.mozilla, hostname="evil.com", check_hostname=False)
        assert chain_is_valid(issued.chain, ctx)

    def test_expired(self, world):
        _, catalog, issued = world
        with pytest.raises(ChainValidationError) as err:
            validate_chain(
                issued.chain,
                ctx_for(catalog.mozilla, at=STUDY_START.plus_years(30)),
            )
        assert err.value.reason == "expired"

    def test_not_yet_valid(self, world):
        _, catalog, issued = world
        with pytest.raises(ChainValidationError) as err:
            validate_chain(
                issued.chain,
                ctx_for(catalog.mozilla, at=STUDY_START.plus_years(-20)),
            )
        assert err.value.reason == "not_yet_valid"

    def test_untrusted_root(self, world):
        hierarchy, _, issued = world
        empty = RootStore("empty")
        with pytest.raises(ChainValidationError) as err:
            validate_chain(issued.chain, ctx_for(empty))
        assert err.value.reason == "untrusted_root"

    def test_forged_signature_detected(self, world):
        hierarchy, catalog, issued = world
        import dataclasses

        forged_leaf = dataclasses.replace(
            issued.chain.leaf, signature=b"forged-signature"
        )
        forged = CertificateChain(
            (forged_leaf,) + issued.chain.certificates[1:]
        )
        with pytest.raises(ChainValidationError) as err:
            validate_chain(forged, ctx_for(catalog.mozilla))
        assert err.value.reason == "bad_signature"

    def test_bad_link_order(self, world):
        _, catalog, issued = world
        reversed_chain = CertificateChain(
            tuple(reversed(issued.chain.certificates))
        )
        with pytest.raises(ChainValidationError) as err:
            validate_chain(reversed_chain, ctx_for(catalog.mozilla, hostname=""))
        assert err.value.reason == "bad_link"

    def test_non_ca_issuer_rejected(self):
        root = CertificateAuthority.self_signed_root("R", DeterministicRng(1))
        leaf1, key1 = root.issue("mid.com", not_before=STUDY_START)
        # Hand-craft a grandchild "signed" by the non-CA leaf.
        from repro.pki.certificate import Certificate, DistinguishedName

        grandchild = Certificate(
            subject=DistinguishedName("victim.com"),
            issuer=leaf1.subject,
            serial="1",
            not_before=STUDY_START,
            not_after=STUDY_START.plus_days(100),
            key=key1,
            san=("victim.com",),
            signature=key1.sign(b"whatever"),
        )
        chain = CertificateChain.of(grandchild, leaf1, root.certificate)
        store = RootStore("s", [root.certificate])
        with pytest.raises(ChainValidationError) as err:
            validate_chain(
                chain,
                ValidationContext(
                    store=store, hostname="", at_time=STUDY_START
                ),
            )
        assert err.value.reason == "not_ca"

    def test_revoked_leaf(self, world):
        _, catalog, issued = world
        crl = RevocationList([issued.chain.leaf])
        ctx = ValidationContext(
            store=catalog.mozilla,
            hostname="api.valid.com",
            at_time=STUDY_START,
            revocation=crl,
        )
        with pytest.raises(ChainValidationError) as err:
            validate_chain(issued.chain, ctx)
        assert err.value.reason == "revoked"

    def test_unrevoke_restores(self, world):
        _, catalog, issued = world
        crl = RevocationList([issued.chain.leaf])
        crl.unrevoke(issued.chain.leaf)
        ctx = ValidationContext(
            store=catalog.mozilla,
            hostname="api.valid.com",
            at_time=STUDY_START,
            revocation=crl,
        )
        assert chain_is_valid(issued.chain, ctx)

    def test_trusted_terminal_direct(self, world):
        hierarchy, catalog, _ = world
        issued = hierarchy.issue_leaf_chain(
            "direct.com", DeterministicRng(40), include_root=True
        )
        anchor = validate_chain(
            issued.chain, ctx_for(catalog.mozilla, hostname="direct.com")
        )
        assert anchor.is_self_signed()


class TestClassifyPKI:
    def test_default_pki(self, world):
        _, catalog, issued = world
        assert classify_pki(issued.chain, catalog.mozilla, STUDY_START) == "default"

    def test_custom_pki(self, world):
        hierarchy, catalog, _ = world
        custom = hierarchy.mint_custom_root("Private")
        leaf, _ = custom.issue(
            "internal.private.com", not_before=STUDY_START, san=("internal.private.com",)
        )
        chain = CertificateChain.of(leaf, custom.certificate)
        assert classify_pki(chain, catalog.mozilla, STUDY_START) == "custom"
