"""Tests for repro.pki.chain."""

import pytest

from repro.errors import CertificateError
from repro.pki.authority import CertificateAuthority, PKIHierarchy
from repro.pki.chain import CertificateChain
from repro.util.rng import DeterministicRng


@pytest.fixture(scope="module")
def issued():
    hierarchy = PKIHierarchy(DeterministicRng(11))
    return hierarchy.issue_leaf_chain(
        "www.chain-test.com", DeterministicRng(12), include_root=True
    )


class TestChainStructure:
    def test_empty_chain_rejected(self):
        with pytest.raises(CertificateError):
            CertificateChain(())

    def test_leaf_and_terminal(self, issued):
        chain = issued.chain
        assert chain.leaf.common_name == "www.chain-test.com"
        assert chain.terminal.is_ca
        assert len(chain) == 3

    def test_intermediates(self, issued):
        assert len(issued.chain.intermediates) == 1
        assert issued.chain.intermediates[0].is_ca

    def test_root_first_reverses(self, issued):
        root_first = issued.chain.root_first()
        assert root_first[0] is issued.chain.terminal
        assert root_first[-1] is issued.chain.leaf

    def test_links_consistent(self, issued):
        assert issued.chain.links_consistent()

    def test_links_inconsistent_when_shuffled(self, issued):
        certs = issued.chain.certificates
        shuffled = CertificateChain((certs[1], certs[0], certs[2]))
        assert not shuffled.links_consistent()

    def test_contains(self, issued):
        assert issued.chain.leaf in issued.chain


class TestChainQueries:
    def test_find_by_common_name(self, issued):
        found = issued.chain.find_by_common_name("www.chain-test.com")
        assert found is issued.chain.leaf
        assert issued.chain.find_by_common_name("nonexistent") is None

    def test_contains_spki(self, issued):
        leaf_pin = issued.chain.leaf.spki_pin()
        root_pin = issued.chain.terminal.spki_pin()
        assert issued.chain.contains_spki(leaf_pin)
        assert issued.chain.contains_spki(root_pin)

    def test_contains_spki_sha1(self, issued):
        assert issued.chain.contains_spki(issued.chain.leaf.spki_pin("sha1"))

    def test_contains_spki_negative(self, issued):
        other = PKIHierarchy(DeterministicRng(99)).issue_leaf_chain(
            "x.com", DeterministicRng(98)
        )
        assert not issued.chain.contains_spki(other.chain.leaf.spki_pin())

    def test_spki_pins_order(self, issued):
        pins = issued.chain.spki_pins()
        assert pins[0] == issued.chain.leaf.spki_pin()
        assert len(pins) == 3

    def test_pem_bundle_has_all_blocks(self, issued):
        bundle = issued.chain.to_pem_bundle()
        assert bundle.count("-----BEGIN CERTIFICATE-----") == 3


class TestSelfSigned:
    def test_single_self_signed(self):
        root = CertificateAuthority.self_signed_root(
            "lonely.example.com", DeterministicRng(3)
        )
        chain = CertificateChain.of(root.certificate)
        assert chain.is_single_self_signed()

    def test_regular_chain_is_not_self_signed(self, issued):
        assert not issued.chain.is_single_self_signed()
