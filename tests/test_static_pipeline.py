"""Tests for the static pipeline and attribution against ground truth."""

import pytest

from repro.core.static.attribution import attribute_findings
from repro.core.static.pipeline import StaticPipeline


@pytest.fixture(scope="module")
def pipeline(small_corpus):
    return StaticPipeline(small_corpus.registry.ctlog)


class TestStaticPipeline:
    @pytest.mark.parametrize("platform", ["android", "ios"])
    @pytest.mark.parametrize("dataset", ["common", "popular", "random"])
    def test_embedded_matches_ground_truth(
        self, small_corpus, pipeline, platform, dataset
    ):
        apps = small_corpus.dataset(platform, dataset)
        reports = pipeline.analyze_dataset(apps)
        for packaged, report in zip(apps, reports):
            assert report.embedded_material == packaged.app.embeds_pin_material(), (
                packaged.app.app_id
            )

    def test_nsc_matches_ground_truth(self, small_corpus, pipeline):
        from repro.appmodel.pinning import PinMechanism

        apps = small_corpus.dataset("android", "common")
        reports = pipeline.analyze_dataset(apps)
        for packaged, report in zip(apps, reports):
            gt = any(
                s.mechanism is PinMechanism.NSC
                for s in packaged.app.pinning_specs
            )
            assert report.nsc_pins == gt

    def test_ios_reports_record_decryption_tool(self, small_corpus, pipeline):
        report = pipeline.analyze_app(small_corpus.dataset("ios", "popular")[0])
        assert report.decryption_tool == "flexdecrypt"

    def test_android_reports_record_decompiler_sentinel(
        self, small_corpus, pipeline
    ):
        # Android needs no decryption, but the tool field must never be
        # empty — the audit catalogue's static-decryption-tool rule
        # asserts provenance on every report row.
        from repro.core.static.pipeline import ANDROID_DECOMPILER

        report = pipeline.analyze_app(
            small_corpus.dataset("android", "popular")[0]
        )
        assert report.decryption_tool == ANDROID_DECOMPILER == "apktool-sim"

    def test_pin_strings_resolvable_for_default_pki(self, small_corpus, pipeline):
        # At least some statically found pins resolve through CT, and
        # custom-PKI pins never do.
        resolved_any = False
        for packaged in small_corpus.dataset("android", "popular"):
            report = pipeline.analyze_app(packaged)
            if report.ct.resolved:
                resolved_any = True
                break
        assert resolved_any

    def test_native_ablation_finds_less(self, small_corpus):
        full = StaticPipeline(small_corpus.registry.ctlog, include_native=True)
        no_native = StaticPipeline(
            small_corpus.registry.ctlog, include_native=False
        )
        apps = small_corpus.all_apps("android")
        found_full = sum(
            1 for a in apps if full.analyze_app(a).embedded_material
        )
        found_partial = sum(
            1 for a in apps if no_native.analyze_app(a).embedded_material
        )
        assert found_partial <= found_full


class TestAttribution:
    def test_recurring_sdk_paths_attributed(self):
        paths = {
            f"app{i}": [f"smali/com/twitter/sdk/CertificatePinner{i}.smali"]
            for i in range(8)
        }
        result = attribute_findings(paths)
        assert "Twitter" in result.framework_apps
        assert len(result.framework_apps["Twitter"]) == 8

    def test_below_threshold_ignored(self):
        paths = {
            f"app{i}": ["smali/com/twitter/sdk/P.smali"] for i in range(3)
        }
        result = attribute_findings(paths)
        assert "Twitter" not in result.framework_apps

    def test_generic_basenames_excluded(self):
        paths = {f"app{i}": ["assets/config.json"] for i in range(20)}
        result = attribute_findings(paths)
        assert result.framework_apps == {}
        assert result.unattributed_paths == []

    def test_unknown_recurring_path_surfaced(self):
        paths = {f"app{i}": ["mystery/certs/pinned.bin"] for i in range(9)}
        result = attribute_findings(paths)
        assert result.unattributed_paths == [("mystery/certs/pinned.bin", 9)]

    def test_top_ordering(self):
        paths = {}
        for i in range(10):
            paths[f"a{i}"] = ["smali/com/twitter/sdk/X.smali"]
        for i in range(7):
            paths[f"b{i}"] = ["smali/com/braintreepayments/api/Y.smali"]
        result = attribute_findings(paths)
        top = result.top(2)
        assert top[0] == ("Twitter", 10)
        assert top[1] == ("Braintree", 7)

    def test_ios_framework_paths(self):
        paths = {
            f"app{i}": [
                "Payload/X.app/Frameworks/Stripe.framework/Stripe"
            ]
            for i in range(6)
        }
        result = attribute_findings(paths)
        assert "Stripe" in result.framework_apps
