"""Integration tests: the full Study against paper-shape expectations.

Runs once per session on the small corpus (session fixture) and checks
every table/figure computation for the *shapes* the paper reports.
"""


from repro.corpus.profiles import DATASET_PROFILES


class TestTable3Shapes:
    def _cells(self, study_results):
        return study_results._prevalence_cells()

    def test_ios_pins_more_than_android(self, study_results):
        cells = self._cells(study_results)
        for dataset in ("popular", "random"):
            assert (
                cells[("ios", dataset)]["dynamic"].rate
                >= cells[("android", dataset)]["dynamic"].rate
            )

    def test_popular_pins_more_than_random(self, study_results):
        cells = self._cells(study_results)
        for platform in ("android", "ios"):
            assert (
                cells[(platform, "popular")]["dynamic"].rate
                > cells[(platform, "random")]["dynamic"].rate
            )

    def test_static_exceeds_dynamic(self, study_results):
        cells = self._cells(study_results)
        for key, cell in cells.items():
            assert cell["embedded"].rate >= cell["dynamic"].rate

    def test_nsc_below_dynamic(self, study_results):
        cells = self._cells(study_results)
        for dataset in ("common", "popular"):
            cell = cells[("android", dataset)]
            assert cell["nsc"].rate <= cell["dynamic"].rate

    def test_dynamic_detection_equals_ground_truth(self, study_results):
        # The detector should find exactly the apps that actually pin.
        for key, results in study_results.dynamic_results.items():
            detected = sum(1 for r in results if r.pins())
            gt = sum(
                1
                for p in study_results.corpus.dataset(*key)
                if p.app.pins_at_runtime()
            )
            assert detected == gt, key

    def test_dynamic_close_to_calibration(self, study_results):
        # Popular/Random pinner counts track the Table 3 rates exactly at
        # generation time (Common counts come from the consistency
        # profile, whose per-class minimums dominate at tiny test scales).
        cells = self._cells(study_results)
        for key, cell in cells.items():
            if key[1] == "common":
                continue
            target = DATASET_PROFILES[key].dynamic_pin_rate
            n = cell["dynamic"].total
            expected = round(target * n)
            assert abs(cell["dynamic"].count - expected) <= 1, key

    def test_table_renders(self, study_results):
        rendered = study_results.table3().render()
        assert "Dynamic analysis" in rendered
        assert "Embedded Certificates" in rendered


class TestPriorWorkComparison:
    def test_dynamic_finds_multiples_of_nsc(self, study_results):
        table = study_results.table2()
        assert len(table.rows) == 3  # android rows only
        ratios = [row[-1] for row in table.rows]
        assert all(r.endswith("x") or r == "infx" for r in ratios)


class TestCategoryTables:
    def test_finance_in_top_categories_android(self, study_results):
        table = study_results.table4()
        top_categories = [row[0].split(" (")[0] for row in table.rows[:5]]
        assert "Finance" in top_categories

    def test_games_never_tops_pinning(self, study_results):
        for table in (study_results.table4(), study_results.table5()):
            top3 = [row[0].split(" (")[0] for row in table.rows[:3]]
            assert "Games" not in top3

    def test_table1_has_all_datasets(self, study_results):
        table = study_results.table1()
        keys = {(row[0], row[1]) for row in table.rows}
        assert len(keys) == 6


class TestTable6:
    def test_default_pki_dominates(self, study_results):
        table = study_results.table6()
        for row in table.rows:
            _, default, custom, self_signed = row
            assert default > custom + self_signed


class TestTable7:
    def test_known_frameworks_only(self, study_results):
        from repro.appmodel.sdk import SDK_CATALOG

        names = {s.name for s in SDK_CATALOG}
        table = study_results.table7()
        for row in table.rows:
            assert row[1] in names


class TestTable8:
    def test_ios_overall_weak_far_above_android(self, study_results):
        table = study_results.table8()
        rates = {
            (row[0], row[1]): float(row[2].rstrip("%")) for row in table.rows
        }
        for dataset in ("Common", "Popular", "Random"):
            assert rates[(dataset, "iOS")] > rates[(dataset, "Android")] + 30

    def test_ios_pinned_connections_drop_weak(self, study_results):
        # Per-dataset cells are noisy at test scale; the paper's claim is
        # checked on the aggregate over all iOS datasets.
        table = study_results.table8()
        overall = [
            float(row[2].rstrip("%")) for row in table.rows if row[1] == "iOS"
        ]
        pinned = [
            float(row[3].rstrip("%")) for row in table.rows if row[1] == "iOS"
        ]
        assert sum(pinned) / len(pinned) < sum(overall) / len(overall)


class TestTable9:
    def test_ad_id_dominates(self, study_results):
        table = study_results.table9()
        ad_rows = [r for r in table.rows if r[1] == "ad_id"]
        other_rows = [r for r in table.rows if r[1] in ("city", "state")]
        for ad in ad_rows:
            for other in other_rows:
                assert float(ad[3].rstrip("%")) > float(other[3].rstrip("%"))


class TestFigures:
    def test_figure2_counts_consistent(self, study_results):
        from repro.core.analysis.consistency import summarize_pairs

        summary = summarize_pairs(
            [c for _, c in study_results.pair_classifications()]
        )
        assert (
            summary.pins_both + summary.android_only + summary.ios_only
            == summary.total_pinning_either
        )
        assert summary.total_pinning_either > 0
        assert (
            summary.both_consistent
            + summary.both_inconsistent
            + summary.both_inconclusive
            == summary.pins_both
        )

    def test_figure5_profiles(self, study_results):
        profiles = study_results.destination_profiles()
        assert profiles
        for profile in profiles:
            assert profile.total > 0
            assert 0 < profile.pinned_fraction <= 1.0

    def test_third_party_pins_majority(self, study_results):
        from repro.core.analysis.destinations import summarize_destinations

        summary = summarize_destinations(study_results.destination_profiles())
        # Figure 5 / Section 5.2: the majority of pinned destinations are
        # third-party sites.
        assert summary.third_party_majority

    def test_selective_pinning(self, study_results):
        from repro.core.analysis.destinations import summarize_destinations

        summary = summarize_destinations(study_results.destination_profiles())
        # "If an app uses pinning, it does so selectively": only a handful
        # of apps pin everything they contact.
        assert summary.apps_pinning_all_domains < summary.pinning_apps / 2


class TestCircumvention:
    def test_rates_in_paper_ballpark(self, study_results):
        android = study_results.circumvention_rate("android")
        ios = study_results.circumvention_rate("ios")
        assert 0.25 < android < 0.85
        assert 0.40 < ios < 0.95
        assert ios > android  # paper: 51.5% vs 66.2%


class TestCertificateAnalyses:
    def test_ca_pins_dominate(self, small_corpus, study_results):
        from repro.core.analysis.certificates import analyze_pin_positions

        analysis = analyze_pin_positions(
            small_corpus,
            study_results.static_by_app("android"),
            study_results.all_dynamic("android"),
        )
        ios_analysis = analyze_pin_positions(
            small_corpus,
            study_results.static_by_app("ios"),
            study_results.all_dynamic("ios"),
        )
        total_ca = analysis.ca_pins + ios_analysis.ca_pins
        total_leaf = analysis.leaf_pins + ios_analysis.leaf_pins
        assert total_ca > total_leaf  # Section 5.3.2: ~73% CA

    def test_no_validation_subversion(self, small_corpus, study_results):
        from repro.core.analysis.certificates import check_validation_subversion

        for platform in ("android", "ios"):
            check = check_validation_subversion(
                small_corpus, study_results.all_dynamic(platform)
            )
            assert check.expired_accepted == 0  # Section 5.3.4


class TestDuplicateAppPrecedence:
    """An app sampled into several datasets: the per-app indexes keep the
    sorted-first dataset's result (common < popular < random), count the
    shadowed duplicates, and warn only when the duplicates disagree."""

    @staticmethod
    def _results_with_duplicate(pinned_common, pinned_random):
        from repro.core.analysis.study import StudyResults
        from repro.core.dynamic.detector import DestinationVerdict
        from repro.core.dynamic.pipeline import DynamicAppResult

        def result(pinned):
            verdicts = {
                d: DestinationVerdict(
                    destination=d,
                    used_direct=True,
                    mitm_observed=True,
                    mitm_all_failed=True,
                    pinned=True,
                )
                for d in pinned
            }
            return DynamicAppResult(
                app_id="app.dup", platform="android", verdicts=verdicts
            )

        return StudyResults(
            corpus=None,
            static_reports={},
            dynamic_results={
                ("android", "random"): [result(pinned_random)],
                ("android", "common"): [result(pinned_common)],
            },
            circumvention={},
            pii={},
        )

    def test_sorted_first_dataset_wins(self):
        results = self._results_with_duplicate(
            pinned_common={"a.example"}, pinned_random={"b.example"}
        )
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("ignore")
            by_app = results.dynamic_by_app("android")
        assert by_app["app.dup"].pinned_destinations == {"a.example"}

    def test_shadowed_duplicates_are_counted(self):
        from repro.core import obs

        results = self._results_with_duplicate(
            pinned_common={"a.example"}, pinned_random={"a.example"}
        )
        recorder = obs.Recorder().install()
        try:
            results.dynamic_by_app("android")
            # Memoized: a second call must not double-count.
            results.dynamic_by_app("android")
        finally:
            recorder.uninstall()
        assert recorder.counter_value("study.dynamic_by_app.shadowed") == 1

    def test_agreeing_duplicates_do_not_warn(self):
        import warnings as warnings_mod

        results = self._results_with_duplicate(
            pinned_common={"a.example"}, pinned_random={"a.example"}
        )
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            results.dynamic_by_app("android")

    def test_disagreeing_duplicates_warn(self):
        import pytest

        results = self._results_with_duplicate(
            pinned_common={"a.example"}, pinned_random={"b.example"}
        )
        with pytest.warns(UserWarning, match="disagree across datasets"):
            results.dynamic_by_app("android")

    def test_static_precedence_matches(self):
        import pytest

        from repro.core.analysis.study import StudyResults
        from repro.core.static.nsc_analysis import NSCAnalysis
        from repro.core.static.report import StaticAppReport
        from repro.core.static.search import ScanResult

        def report(nsc_pins):
            return StaticAppReport(
                app_id="app.dup",
                platform="android",
                scan=ScanResult(),
                nsc=NSCAnalysis(
                    uses_nsc=nsc_pins, has_pins=nsc_pins,
                    pins=["sha256/AAA"] if nsc_pins else [],
                ),
                ct=None,
            )

        results = StudyResults(
            corpus=None,
            static_reports={
                ("android", "random"): [report(False)],
                ("android", "popular"): [report(True)],
            },
            dynamic_results={},
            circumvention={},
            pii={},
        )
        with pytest.warns(UserWarning, match="disagree across datasets"):
            by_app = results.static_by_app("android")
        assert by_app["app.dup"].nsc_pins is True

    def test_no_duplicates_in_real_study(self, study_results):
        # The generated corpus keeps datasets disjoint per platform, so
        # the real per-app indexes see no shadowing at all.
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            for platform in ("android", "ios"):
                study_results.dynamic_by_app(platform)
                study_results.static_by_app(platform)
