"""Tests for endpoint renewal, party attribution and the error hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    AppModelError,
    CertificateError,
    ChainValidationError,
    CorpusError,
    DeviceError,
    EncodingError,
    HandshakeError,
    InstrumentationError,
    PackageEncryptedError,
    PKIError,
    ReproError,
    TLSError,
)
from repro.pki.authority import PKIHierarchy
from repro.servers.parties import PartyDirectory, registrable_domain
from repro.util.rng import DeterministicRng


class TestEndpointRenewal:
    @pytest.fixture()
    def world(self):
        hierarchy = PKIHierarchy(DeterministicRng(121))
        from repro.servers.registry import EndpointRegistry

        registry = EndpointRegistry(hierarchy, DeterministicRng(122))
        endpoint = registry.create_default_pki_endpoint(
            "renew.example.com", "RenewCo"
        )
        return hierarchy, endpoint

    def test_renew_with_key_reuse_preserves_spki(self, world):
        hierarchy, endpoint = world
        old_pin = endpoint.chain.leaf.spki_pin()
        old_fingerprint = endpoint.chain.leaf.fingerprint_sha256()
        endpoint.renew_leaf(hierarchy, DeterministicRng(5), reuse_key=True)
        assert endpoint.chain.leaf.spki_pin() == old_pin
        assert endpoint.chain.leaf.fingerprint_sha256() != old_fingerprint

    def test_renew_without_key_reuse_breaks_spki(self, world):
        hierarchy, endpoint = world
        old_pin = endpoint.chain.leaf.spki_pin()
        endpoint.renew_leaf(hierarchy, DeterministicRng(6), reuse_key=False)
        assert endpoint.chain.leaf.spki_pin() != old_pin

    def test_spki_pin_survives_renewal_raw_pin_does_not(self, world):
        """The Section 5.3.3 mechanic end to end."""
        from repro.tls.policy import PinnedCertificatePolicy, SpkiPinPolicy
        from repro.util.simtime import STUDY_START

        hierarchy, endpoint = world
        spki = SpkiPinPolicy([endpoint.chain.leaf.spki_pin()])
        raw = PinnedCertificatePolicy(
            [endpoint.chain.leaf.fingerprint_sha256()]
        )
        endpoint.renew_leaf(hierarchy, DeterministicRng(7), reuse_key=True)
        assert spki.accepts(endpoint.chain, "renew.example.com", STUDY_START)
        assert not raw.accepts(endpoint.chain, "renew.example.com", STUDY_START)


class TestRegistrableDomain:
    def test_two_labels(self):
        assert registrable_domain("example.com") == "example.com"

    def test_deep_hostname(self):
        assert registrable_domain("a.b.example.com") == "example.com"

    def test_single_label(self):
        assert registrable_domain("localhost") == "localhost"

    def test_case_and_dot(self):
        assert registrable_domain("API.Example.COM.") == "example.com"


class TestPartyDirectory:
    def test_classify_with_cert_fallback(self):
        from repro.pki.authority import CertificateAuthority
        from repro.pki.chain import CertificateChain
        from repro.util.simtime import STUDY_START

        directory = PartyDirectory()
        root = CertificateAuthority.self_signed_root("R", DeterministicRng(1))
        leaf, _ = root.issue(
            "api.unknown.com",
            san=("api.unknown.com",),
            not_before=STUDY_START,
            organization="MysteryCorp",
        )
        chain = CertificateChain.of(leaf, root.certificate)
        assert directory.classify("api.unknown.com", "MysteryCorp", chain) == "first"
        assert directory.classify("api.unknown.com", "OtherCorp", chain) == "third"

    def test_unknown_defaults_to_third(self):
        assert PartyDirectory().classify("x.com", "Anyone") == "third"

    def test_directory_wins_over_cert(self):
        directory = PartyDirectory()
        directory.register("x.com", "RealOwner")
        assert directory.classify("api.x.com", "RealOwner") == "first"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [
            PKIError,
            CertificateError,
            ChainValidationError,
            EncodingError,
            TLSError,
            HandshakeError,
            AppModelError,
            PackageEncryptedError,
            DeviceError,
            CorpusError,
            AnalysisError,
            InstrumentationError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_class):
        assert issubclass(error_class, ReproError)

    def test_chain_validation_reason(self):
        error = ChainValidationError("boom", reason="expired")
        assert error.reason == "expired"

    def test_package_encrypted_is_app_model_error(self):
        assert issubclass(PackageEncryptedError, AppModelError)
