"""Tests for repro.core.obs: metric primitives, spans, recorder, exports.

The merge tests pin down the subsystem's core claim: folding worker
snapshots is order-independent, so instrumented parallel runs report the
same metrics no matter which worker finishes first.
"""

import importlib.util
import json
from functools import lru_cache
from pathlib import Path

import pytest

from repro.core import obs
from repro.core.obs.metrics import Counter, Gauge, Histogram
from repro.core.obs.recorder import SCHEMA_VERSION, TelemetrySnapshot
from repro.core.obs.spans import NULL_SPAN, Span

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "validate_telemetry", REPO_ROOT / "tools" / "validate_telemetry.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def recorder():
    """An installed recorder, guaranteed uninstalled afterwards."""
    instance = obs.Recorder().install()
    yield instance
    instance.uninstall()


class TestPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.add()
        counter.add(4)
        other = Counter(10)
        counter.merge(other)
        assert counter.value == 15

    def test_gauge_merge_keeps_maximum(self):
        gauge = Gauge(3.0)
        gauge.merge(Gauge(1.0))
        assert gauge.value == 3.0
        gauge.merge(Gauge(7.0))
        assert gauge.value == 7.0

    def test_histogram(self):
        histogram = Histogram()
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(5.0)
        assert histogram.as_dict() == {
            "count": 3,
            "sum": 15.0,
            "min": 2.0,
            "max": 8.0,
            "mean": 5.0,
        }

    def test_histogram_merge_widens(self):
        a = Histogram()
        a.observe(5.0)
        b = Histogram()
        b.observe(1.0)
        b.observe(9.0)
        a.merge(b)
        assert (a.count, a.minimum, a.maximum) == (3, 1.0, 9.0)

    def test_histogram_merge_empty_is_noop(self):
        a = Histogram()
        a.observe(5.0)
        a.merge(Histogram())
        assert (a.count, a.minimum, a.maximum) == (1, 5.0, 5.0)

    def test_histogram_tuple_round_trip(self):
        a = Histogram()
        a.observe(3.0)
        b = Histogram.from_tuple(a.as_tuple())
        assert b.as_dict() == a.as_dict()

    def test_empty_histogram_mean_and_dict(self):
        empty = Histogram()
        assert empty.mean == 0.0
        assert empty.as_dict()["min"] == 0.0


class TestStopwatch:
    def test_elapsed_is_monotone(self):
        watch = obs.Stopwatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert 0 <= first <= second

    def test_restart_returns_prior_elapsed(self):
        watch = obs.Stopwatch()
        prior = watch.restart()
        assert prior >= 0
        assert watch.elapsed() <= prior + watch.elapsed()


class TestFunnelOffPath:
    """With no recorder installed, every funnel call must be a no-op."""

    def test_span_returns_shared_null_span(self):
        assert obs.get_recorder() is None
        assert obs.span("anything", cat="x", arg=1) is NULL_SPAN
        with obs.span("still.null"):
            pass

    def test_count_observe_cache_event_are_noops(self):
        obs.count("nothing")
        obs.observe("nothing", 1.0)
        obs.cache_event("nothing", hit=True)


class TestSpanRecording:
    def test_nesting_depth_and_stack(self, recorder):
        with obs.span("outer", cat="t"):
            assert recorder.span_stack() == ["outer"]
            with obs.span("inner", cat="t"):
                assert recorder.span_stack() == ["outer", "inner"]
        assert recorder.span_stack() == []
        by_name = {span.name: span for span in recorder.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner"].start >= by_name["outer"].start
        assert by_name["inner"].end <= by_name["outer"].end

    def test_span_args_and_duration(self, recorder):
        with obs.span("tagged", cat="t", app="a1", n=3):
            pass
        (span,) = recorder.spans()
        assert span.args == {"app": "a1", "n": 3}
        assert span.duration >= 0
        assert span.pid > 0

    def test_span_tuple_round_trip(self):
        span = Span("n", "c", 1.0, 2.0, 1, 7, 8, {"k": "v"})
        assert Span.from_tuple(span.as_tuple()) == span


class TestCountersAndCaches:
    def test_count_and_observe(self, recorder):
        obs.count("events", 2)
        obs.count("events")
        obs.observe("latency", 0.5)
        assert recorder.counter_value("events") == 3
        assert recorder.metrics()["histograms"]["latency"]["count"] == 1

    def test_cache_event(self, recorder):
        obs.cache_event("handrolled", hit=True)
        obs.cache_event("handrolled", hit=True)
        obs.cache_event("handrolled", hit=False)
        assert recorder.counter_value("cache.handrolled.hit") == 2
        assert recorder.counter_value("cache.handrolled.miss") == 1

    def test_lru_registration_uses_install_baseline(self):
        @lru_cache(maxsize=None)
        def cached(x):
            return x * 2

        obs.register_cache("obs_test_lru", cached)
        cached(1)  # pre-install warmup must not be attributed
        recorder = obs.Recorder().install()
        try:
            cached(1)  # hit
            cached(2)  # miss
            cached(2)  # hit
            recorder.collect_caches()
            assert recorder.counter_value("cache.obs_test_lru.hit") == 2
            assert recorder.counter_value("cache.obs_test_lru.miss") == 1
            # A second collect must not double count.
            recorder.collect_caches()
            assert recorder.counter_value("cache.obs_test_lru.hit") == 2
        finally:
            recorder.uninstall()

    def test_install_uninstall_lifecycle(self):
        recorder = obs.Recorder()
        assert obs.get_recorder() is None
        recorder.install()
        assert obs.get_recorder() is recorder
        recorder.uninstall()
        assert obs.get_recorder() is None


class TestSnapshotMerge:
    def _snapshot(self, counters, spans=(), histograms=None):
        return TelemetrySnapshot(
            counters=dict(counters),
            gauges={},
            histograms=dict(histograms or {}),
            spans=list(spans),
        )

    def test_drain_clears_state(self, recorder):
        obs.count("n")
        with obs.span("s"):
            pass
        snapshot = recorder.drain()
        assert snapshot.counters["n"] == 1
        assert len(snapshot.spans) == 1
        assert recorder.counters() == {}
        assert recorder.spans() == []

    def test_compute_seconds_sums_depth_zero_only(self):
        spans = [
            ("outer", "", 0.0, 3.0, 0, 1, 1, ()),
            ("inner", "", 1.0, 2.0, 1, 1, 1, ()),
            ("outer2", "", 5.0, 6.0, 0, 1, 1, ()),
        ]
        snapshot = self._snapshot({}, spans=spans)
        assert snapshot.compute_seconds() == pytest.approx(4.0)

    def test_merge_is_order_independent(self):
        snapshots = [
            self._snapshot(
                {"a": 1, "b": 2},
                histograms={"h": (1, 5.0, 5.0, 5.0)},
            ),
            self._snapshot({"a": 10}, histograms={"h": (2, 3.0, 1.0, 2.0)}),
            self._snapshot({"b": 5, "c": 7}),
        ]
        forward = obs.Recorder()
        backward = obs.Recorder()
        for snapshot in snapshots:
            forward.merge_snapshot(snapshot)
        for snapshot in reversed(snapshots):
            backward.merge_snapshot(snapshot)
        forward_metrics = forward.metrics()
        backward_metrics = backward.metrics()
        assert forward_metrics == backward_metrics
        assert forward_metrics["counters"] == {"a": 11, "b": 7, "c": 7}
        assert forward_metrics["histograms"]["h"] == {
            "count": 3,
            "sum": 8.0,
            "min": 1.0,
            "max": 5.0,
            "mean": pytest.approx(8.0 / 3),
        }

    def test_rebase_shifts_spans_onto_parent_timeline(self):
        spans = [
            ("w", "", 100.0, 101.0, 0, 2, 2, ()),
            ("w.child", "", 100.25, 100.5, 1, 2, 2, ()),
        ]
        recorder = obs.Recorder()
        recorder.merge_snapshot(
            self._snapshot({}, spans=spans), rebase_to=10.0
        )
        starts = sorted(span.start for span in recorder.spans())
        assert starts[0] == pytest.approx(10.0)
        assert starts[1] == pytest.approx(10.25)
        durations = sorted(span.duration for span in recorder.spans())
        assert durations == [pytest.approx(0.25), pytest.approx(1.0)]


class TestExports:
    def _populated_recorder(self):
        recorder = obs.Recorder().install()
        try:
            with obs.span("outer", cat="test", app="a"):
                with obs.span("inner", cat="test"):
                    pass
            obs.count("events", 3)
            obs.observe("latency", 0.25)
        finally:
            recorder.uninstall()
        return recorder

    def test_trace_and_metrics_validate_against_schemas(self, tmp_path):
        validator = _load_validator()
        recorder = self._populated_recorder()
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        recorder.write_trace(trace_path)
        recorder.write_metrics(metrics_path)
        assert (
            validator.validate_file(
                str(REPO_ROOT / "schemas" / "telemetry_trace.schema.json"),
                str(trace_path),
            )
            == []
        )
        assert (
            validator.validate_file(
                str(REPO_ROOT / "schemas" / "telemetry_metrics.schema.json"),
                str(metrics_path),
            )
            == []
        )

    def test_validator_flags_bad_documents(self, tmp_path):
        validator = _load_validator()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "B"}]}))
        violations = validator.validate_file(
            str(REPO_ROOT / "schemas" / "telemetry_trace.schema.json"),
            str(bad),
        )
        assert violations
        assert any("ph" in violation for violation in violations)

    def test_chrome_trace_shape(self):
        recorder = self._populated_recorder()
        trace = recorder.chrome_trace()
        assert trace["otherData"]["schema"] == SCHEMA_VERSION
        events = trace["traceEvents"]
        assert len(events) == 2
        assert {event["ph"] for event in events} == {"X"}
        assert all(event["ts"] >= 0 and event["dur"] >= 0 for event in events)
        outer = next(event for event in events if event["name"] == "outer")
        assert outer["args"] == {"app": "a"}

    def test_metrics_document(self):
        recorder = self._populated_recorder()
        metrics = recorder.metrics()
        assert metrics["schema"] == SCHEMA_VERSION
        assert metrics["counters"]["events"] == 3
        assert metrics["spans"]["total"] == 2

    def test_summary_table(self):
        recorder = self._populated_recorder()
        rendered = recorder.summary_table().render()
        assert "events" in rendered
        assert "span.outer" in rendered
        assert "hist.latency" in rendered
