"""Property-based tests on validation-policy invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.pki.authority import PKIHierarchy
from repro.pki.store import StoreCatalog
from repro.tls.policy import (
    CompositePolicy,
    PinnedCertificatePolicy,
    SpkiPinPolicy,
    SystemValidationPolicy,
    TrustAllPolicy,
)
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START

# A module-level world: hypothesis drives the *choices*, not the PKI.
_HIERARCHY = PKIHierarchy(DeterministicRng(777))
_CATALOG = StoreCatalog.build(_HIERARCHY)
_CHAINS = [
    _HIERARCHY.issue_leaf_chain(f"host{i}.prop.example", DeterministicRng(1000 + i)).chain
    for i in range(8)
]
_BASE = SystemValidationPolicy(_CATALOG.mozilla)

chain_indices = st.integers(min_value=0, max_value=len(_CHAINS) - 1)


class TestSpkiPinProperties:
    @given(chain_indices, chain_indices)
    def test_pin_accepts_iff_pin_present(self, pin_from, served):
        pin_chain = _CHAINS[pin_from]
        served_chain = _CHAINS[served]
        policy = SpkiPinPolicy([pin_chain.leaf.spki_pin()], base=None)
        accepted = policy.accepts(served_chain, "irrelevant", STUDY_START)
        assert accepted == served_chain.contains_spki(pin_chain.leaf.spki_pin())

    @given(chain_indices)
    def test_own_leaf_pin_always_accepts(self, index):
        chain = _CHAINS[index]
        hostname = chain.leaf.common_name
        policy = SpkiPinPolicy([chain.leaf.spki_pin()], base=_BASE)
        assert policy.accepts(chain, hostname, STUDY_START)

    @given(chain_indices, st.sets(chain_indices, min_size=1, max_size=5))
    def test_adding_pins_is_monotone(self, served, pin_set):
        """A superset of pins never rejects what a subset accepted."""
        served_chain = _CHAINS[served]
        pins = [_CHAINS[i].leaf.spki_pin() for i in pin_set]
        small = SpkiPinPolicy(pins[:1], base=None)
        large = SpkiPinPolicy(pins + [served_chain.leaf.spki_pin()], base=None)
        if small.accepts(served_chain, "x", STUDY_START):
            assert large.accepts(served_chain, "x", STUDY_START)

    @given(chain_indices)
    def test_pin_with_base_is_stricter_than_base(self, index):
        chain = _CHAINS[index]
        hostname = chain.leaf.common_name
        other = _CHAINS[(index + 1) % len(_CHAINS)]
        policy = SpkiPinPolicy([other.leaf.spki_pin()], base=_BASE)
        if policy.accepts(chain, hostname, STUDY_START):
            assert _BASE.accepts(chain, hostname, STUDY_START)


class TestCertPinProperties:
    @given(chain_indices, chain_indices)
    def test_fingerprint_pin_exact(self, pin_from, served):
        policy = PinnedCertificatePolicy(
            [_CHAINS[pin_from].leaf.fingerprint_sha256()], base=None
        )
        accepted = policy.accepts(_CHAINS[served], "x", STUDY_START)
        assert accepted == (pin_from == served)


class TestCompositeProperties:
    @given(
        st.sets(chain_indices, min_size=0, max_size=4),
        chain_indices,
    )
    def test_routing_always_defined(self, override_set, probe):
        overrides = {
            _CHAINS[i].leaf.common_name: TrustAllPolicy() for i in override_set
        }
        policy = CompositePolicy(default=_BASE, overrides=overrides)
        hostname = _CHAINS[probe].leaf.common_name
        routed = policy.policy_for(hostname)
        if hostname in overrides:
            assert isinstance(routed, TrustAllPolicy)
        else:
            assert routed is _BASE

    @given(st.sets(chain_indices, min_size=1, max_size=4))
    def test_is_pinning_reflects_overrides(self, override_set):
        overrides = {
            _CHAINS[i].leaf.common_name: SpkiPinPolicy(
                [_CHAINS[i].leaf.spki_pin()], base=_BASE
            )
            for i in override_set
        }
        policy = CompositePolicy(default=_BASE, overrides=overrides)
        assert policy.is_pinning()
        for i in override_set:
            assert policy.pins_hostname(_CHAINS[i].leaf.common_name)
