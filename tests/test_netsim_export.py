"""Tests for capture serialization."""

import pytest

from repro.core.dynamic import DynamicPipeline
from repro.core.dynamic.classify import connection_failed, connection_used
from repro.errors import EncodingError
from repro.netsim.export import dump_capture, flow_to_dict, load_capture


@pytest.fixture(scope="module")
def sample_result(small_corpus):
    pipeline = DynamicPipeline(small_corpus)
    pinner = next(
        p
        for p in small_corpus.dataset("ios", "popular")
        if p.app.pins_at_runtime()
    )
    return pipeline.run_app(pinner)


class TestRoundtrip:
    def test_capture_roundtrip_preserves_flows(self, sample_result):
        for capture in (sample_result.direct_capture, sample_result.mitm_capture):
            restored = load_capture(dump_capture(capture))
            assert len(restored) == len(capture)
            for original, loaded in zip(capture, restored):
                assert loaded.sni == original.sni
                assert loaded.version == original.version
                assert loaded.trace.teardown == original.trace.teardown
                assert len(loaded.trace.records) == len(original.trace.records)
                assert loaded.gt_pinned == original.gt_pinned

    def test_classifiers_agree_after_roundtrip(self, sample_result):
        capture = sample_result.mitm_capture
        restored = load_capture(dump_capture(capture))
        for original, loaded in zip(capture, restored):
            assert connection_used(loaded) == connection_used(original)
            assert connection_failed(loaded) == connection_failed(original)

    def test_detector_agrees_after_roundtrip(self, sample_result):
        from repro.core.dynamic.detector import detect_pinned_destinations

        direct = load_capture(dump_capture(sample_result.direct_capture))
        mitm = load_capture(dump_capture(sample_result.mitm_capture))
        verdicts = detect_pinned_destinations(
            direct, mitm, sample_result.excluded_destinations
        )
        pinned = {d for d, v in verdicts.items() if v.pinned}
        assert pinned == sample_result.pinned_destinations

    def test_payloads_only_for_decrypted_flows(self, sample_result):
        for flow in sample_result.mitm_capture:
            data = flow_to_dict(flow)
            if not flow.plaintext_visible:
                assert data["payloads"] == []
            else:
                restored_fields = [p["fields"] for p in data["payloads"]]
                assert len(restored_fields) == len(flow.decrypted_payloads())

    def test_decrypted_payloads_survive(self, sample_result):
        capture = sample_result.mitm_capture
        restored = load_capture(dump_capture(capture))
        for original, loaded in zip(capture, restored):
            if original.plaintext_visible:
                assert (
                    loaded.decrypted_payloads()[0].fields
                    == original.decrypted_payloads()[0].fields
                )


class TestErrors:
    def test_garbage_rejected(self):
        with pytest.raises(EncodingError):
            load_capture("not json at all")

    def test_wrong_format_version(self):
        with pytest.raises(EncodingError):
            load_capture('{"format": 99, "flows": []}')

    def test_malformed_flow(self):
        with pytest.raises(EncodingError):
            load_capture('{"format": 1, "flows": [{"sni": "x"}]}')
