"""Tests for repro.pki.authority."""

import pytest

from repro.errors import CertificateError
from repro.pki.authority import (
    CertificateAuthority,
    DEFAULT_ROOT_OPERATORS,
    PKIHierarchy,
)
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START


@pytest.fixture(scope="module")
def hierarchy():
    return PKIHierarchy(DeterministicRng(21))


class TestCertificateAuthority:
    def test_root_is_self_signed_ca(self):
        root = CertificateAuthority.self_signed_root("R", DeterministicRng(1))
        assert root.certificate.is_ca
        assert root.certificate.is_self_signed()

    def test_issue_signs_with_ca_key(self):
        root = CertificateAuthority.self_signed_root("R", DeterministicRng(1))
        cert, _ = root.issue("leaf.com", not_before=STUDY_START)
        assert root.key.verify(cert.tbs_bytes(), cert.signature)
        assert cert.issuer == root.name

    def test_issue_unique_serials(self):
        root = CertificateAuthority.self_signed_root("R", DeterministicRng(1))
        a, _ = root.issue("a.com", not_before=STUDY_START)
        b, _ = root.issue("b.com", not_before=STUDY_START)
        assert a.serial != b.serial

    def test_issue_with_key_reuse(self):
        root = CertificateAuthority.self_signed_root("R", DeterministicRng(1))
        first, key = root.issue("renew.com", not_before=STUDY_START)
        renewed, key2 = root.issue(
            "renew.com", key=key, not_before=STUDY_START.plus_days(300)
        )
        assert key2 is key
        assert renewed.spki_pin() == first.spki_pin()
        assert renewed.fingerprint_sha256() != first.fingerprint_sha256()

    def test_child_cannot_predate_issuer(self):
        root = CertificateAuthority.self_signed_root("R", DeterministicRng(1))
        too_early = root.certificate.not_before.plus_days(-10)
        with pytest.raises(CertificateError):
            root.issue("x.com", not_before=too_early)

    def test_non_ca_cannot_become_authority(self):
        root = CertificateAuthority.self_signed_root("R", DeterministicRng(1))
        leaf, key = root.issue("leaf.com", not_before=STUDY_START)
        with pytest.raises(CertificateError):
            CertificateAuthority(leaf, key, DeterministicRng(2))

    def test_issue_intermediate(self):
        root = CertificateAuthority.self_signed_root("R", DeterministicRng(1))
        inter = root.issue_intermediate("R Intermediate")
        assert inter.certificate.is_ca
        assert inter.certificate.issuer == root.name


class TestPKIHierarchy:
    def test_default_operators(self, hierarchy):
        assert len(hierarchy.roots) == len(DEFAULT_ROOT_OPERATORS)
        assert len(hierarchy.root_certificates()) == len(hierarchy.roots)

    def test_leaf_chain_valid_at_study_time(self, hierarchy):
        issued = hierarchy.issue_leaf_chain("a.example.net", DeterministicRng(5))
        for cert in issued.chain:
            assert cert.valid_at(STUDY_START)

    def test_leaf_chain_without_root(self, hierarchy):
        issued = hierarchy.issue_leaf_chain("b.example.net", DeterministicRng(6))
        assert len(issued.chain) == 2
        assert issued.chain.terminal.is_ca

    def test_leaf_chain_with_root(self, hierarchy):
        issued = hierarchy.issue_leaf_chain(
            "c.example.net", DeterministicRng(7), include_root=True
        )
        assert len(issued.chain) == 3
        assert issued.chain.terminal.is_self_signed()

    def test_wildcard_chain(self, hierarchy):
        issued = hierarchy.issue_leaf_chain(
            "img.cdnhost.net", DeterministicRng(8), wildcard=True
        )
        assert "*.cdnhost.net" in issued.chain.leaf.san
        assert issued.chain.leaf.matches_hostname("anything.cdnhost.net")

    def test_pick_root_skews_to_head(self, hierarchy):
        rng = DeterministicRng(9)
        picks = [hierarchy.pick_root(rng).name.common_name for _ in range(500)]
        head = DEFAULT_ROOT_OPERATORS[0]
        tail = DEFAULT_ROOT_OPERATORS[-1]
        assert picks.count(head) > picks.count(tail)

    def test_custom_root_not_in_default_roots(self, hierarchy):
        custom = hierarchy.mint_custom_root("SomeCorp")
        defaults = {c.fingerprint_sha256() for c in hierarchy.root_certificates()}
        assert custom.certificate.fingerprint_sha256() not in defaults
