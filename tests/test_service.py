"""Tests for the long-lived study service (DESIGN.md §14).

Two layers, mirroring the package split:

* The job layer (:class:`JobQueue` / :class:`JobRunner`) is exercised
  with synthetic jobs — threads that sleep and signal — so FIFO
  ordering, the concurrency cap, cancellation semantics, and drain are
  testable in milliseconds without running studies.
* The daemon is exercised end-to-end over a real unix socket with the
  real client: byte parity against a direct ``Study.run``, warm-start on
  resubmission, and telemetry-versus-ledger reconciliation.
"""

from __future__ import annotations

import os
import socket as socket_module
import threading
import time

import pytest

from repro.core.analysis import Study
from repro.core.exec import ExecutionPlan
from repro.corpus import CorpusConfig, CorpusGenerator
from repro.reporting.render import render_study_stdout
from repro.service import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    Draining,
    JobQueue,
    JobRunner,
    QueueFull,
    ServiceClient,
    ServiceError,
    StudyService,
)

requires_unix_sockets = pytest.mark.skipif(
    not hasattr(socket_module, "AF_UNIX"),
    reason="unix domain sockets unavailable on this platform",
)


def _drained(queue: JobQueue, runner: JobRunner, timeout: float = 10.0) -> None:
    assert queue.wait_idle(timeout=timeout)
    runner.stop()


class TestJobQueue:
    def test_fifo_execution_order(self):
        queue = JobQueue(maxsize=8)
        ran = []

        def execute(job):
            ran.append(job.id)
            return {}

        jobs = [queue.submit("study", {"n": i}) for i in range(4)]
        runner = JobRunner(queue, execute, max_concurrent=1)
        runner.start()
        _drained(queue, runner)
        assert ran == [job.id for job in jobs]
        assert all(job.state == COMPLETED for job in jobs)
        assert all(job.queue_wait_s >= 0 for job in jobs)

    def test_bounded_queue_rejects_when_full(self):
        queue = JobQueue(maxsize=2)
        queue.submit("study", {})
        queue.submit("study", {})
        with pytest.raises(QueueFull):
            queue.submit("study", {})

    def test_concurrency_cap_is_respected(self):
        queue = JobQueue(maxsize=16)
        lock = threading.Lock()
        active = {"now": 0, "peak": 0}

        def execute(job):
            with lock:
                active["now"] += 1
                active["peak"] = max(active["peak"], active["now"])
            time.sleep(0.05)
            with lock:
                active["now"] -= 1
            return {}

        for _ in range(6):
            queue.submit("study", {})
        runner = JobRunner(queue, execute, max_concurrent=2)
        runner.start()
        _drained(queue, runner)
        assert active["peak"] <= 2
        assert queue.counts()[COMPLETED] == 6

    def test_serial_runner_never_overlaps(self):
        queue = JobQueue(maxsize=16)
        lock = threading.Lock()
        active = {"now": 0, "peak": 0}

        def execute(job):
            with lock:
                active["now"] += 1
                active["peak"] = max(active["peak"], active["now"])
            time.sleep(0.02)
            with lock:
                active["now"] -= 1
            return {}

        for _ in range(4):
            queue.submit("study", {})
        runner = JobRunner(queue, execute, max_concurrent=1)
        runner.start()
        _drained(queue, runner)
        assert active["peak"] == 1

    def test_cancel_before_start_never_runs(self):
        queue = JobQueue(maxsize=8)
        ran = []
        job = queue.submit("study", {})
        assert job.state == QUEUED
        cancelled = queue.cancel(job.id)
        assert cancelled.state == CANCELLED
        assert job.done.is_set()

        runner = JobRunner(queue, lambda j: ran.append(j.id) or {}, max_concurrent=1)
        runner.start()
        _drained(queue, runner, timeout=2.0)
        assert ran == []

    def test_cancel_mid_run_discards_output(self):
        queue = JobQueue(maxsize=8)
        started = threading.Event()
        release = threading.Event()

        def execute(job):
            started.set()
            assert release.wait(timeout=5)
            return {"output": "doomed"}

        runner = JobRunner(queue, execute, max_concurrent=1)
        runner.start()
        job = queue.submit("study", {})
        assert started.wait(timeout=5)
        queue.cancel(job.id)
        assert job.cancel_requested
        release.set()
        _drained(queue, runner)
        assert job.state == CANCELLED
        assert job.output is None

    def test_drain_rejects_submits_but_finishes_accepted(self):
        queue = JobQueue(maxsize=8)
        release = threading.Event()

        def execute(job):
            assert release.wait(timeout=5)
            return {"output": job.id}

        accepted = [queue.submit("study", {}) for _ in range(3)]
        runner = JobRunner(queue, execute, max_concurrent=1)
        runner.start()
        queue.start_draining()
        with pytest.raises(Draining):
            queue.submit("study", {})
        release.set()
        _drained(queue, runner)
        assert all(job.state == COMPLETED for job in accepted)
        assert all(job.output == job.id for job in accepted)

    def test_failed_execute_records_the_error(self):
        queue = JobQueue(maxsize=8)

        def execute(job):
            raise ValueError("synthetic job explosion")

        finished = []
        runner = JobRunner(queue, execute, max_concurrent=1, on_finish=finished.append)
        runner.start()
        job = queue.submit("study", {})
        _drained(queue, runner)
        assert job.state == FAILED
        assert "synthetic job explosion" in job.error
        assert finished == [job]

    def test_unknown_job_and_idempotent_cancel(self):
        from repro.service import UnknownJob

        queue = JobQueue(maxsize=8)
        with pytest.raises(UnknownJob):
            queue.job("job-9999")
        job = queue.submit("study", {})
        queue.cancel(job.id)
        # Cancelling a terminal job is a no-op, not an error.
        assert queue.cancel(job.id).state == CANCELLED


@requires_unix_sockets
class TestStudyServiceEndToEnd:
    """One daemon lifecycle covering the full tentpole contract."""

    SEED = 2022
    SCALE = 0.02

    def _direct_output(self) -> str:
        config = CorpusConfig(seed=self.SEED).scaled(self.SCALE)
        corpus = CorpusGenerator(config).generate()
        results = Study(corpus, plan=ExecutionPlan(workers=2)).run()
        return render_study_stdout(results)

    def test_service_lifecycle(self, tmp_path):
        socket_path = str(tmp_path / "svc.sock")
        service = StudyService(
            socket_path=socket_path,
            store_dir=str(tmp_path / "store"),
            workers=2,
        )
        service.start()
        try:
            client = ServiceClient(socket_path)
            assert client.ping()["pid"] == os.getpid()

            # Cold job: output must be byte-identical to a direct run.
            config = {"seed": self.SEED, "scale": self.SCALE, "workers": 2}
            metrics_path = tmp_path / "job-metrics.json"
            job = client.submit_and_wait(
                "study", config, metrics_out=str(metrics_path)
            )
            assert job["state"] == COMPLETED, job.get("error")
            assert job["output"] == self._direct_output()
            assert metrics_path.exists()

            # Warm resubmission: >=95% of units come from the shared store,
            # output unchanged.
            warm = client.submit_and_wait("study", config)
            assert warm["state"] == COMPLETED, warm.get("error")
            assert warm["output"] == job["output"]
            lookups = warm["store_hits"] + warm["store_misses"]
            assert lookups > 0
            assert warm["store_hits"] / lookups >= 0.95

            # Telemetry counters reconcile against the job ledger.
            stats = client.stats()
            counters = stats["counters"]
            ledger = stats["jobs"]
            assert counters["service.jobs.submitted"] == sum(ledger.values()) == 2
            assert counters["service.jobs.completed"] == ledger[COMPLETED] == 2
            assert counters.get("service.jobs.failed", 0) == ledger[FAILED] == 0
            assert counters.get("service.jobs.cancelled", 0) == ledger[CANCELLED]
            # The warm pool outlived the first job.
            assert counters["service.pool.created"] == 1
            assert counters["service.pool.reused"] >= 1
            assert counters["service.corpus.built"] == 1
            # Engine/store metrics merged up into the service recorder.
            assert counters["store.units.hit"] == warm["store_hits"]

            # Job-level errors come back as typed protocol errors.
            with pytest.raises(ServiceError) as err:
                client.status("job-9999")
            assert err.value.code == "unknown-job"

            # Draining rejects new submissions.
            service.queue.start_draining()
            with pytest.raises(ServiceError) as err:
                client.submit("study", config)
            assert err.value.code == "draining"
        finally:
            assert service.drain(timeout=60)
            service.stop()
        # A clean stop removes the socket file.
        assert not os.path.exists(socket_path)

    def test_failed_job_surfaces_error(self, tmp_path):
        socket_path = str(tmp_path / "svc.sock")
        service = StudyService(socket_path=socket_path, workers=1)
        service.start()
        try:
            client = ServiceClient(socket_path)
            job = client.submit_and_wait("study", {"scale": "not-a-number"})
            assert job["state"] == FAILED
            assert job["error"]
            stats = client.stats()
            assert stats["counters"]["service.jobs.failed"] == 1
        finally:
            service.drain(timeout=30)
            service.stop()

    def test_bad_requests_are_rejected(self, tmp_path):
        socket_path = str(tmp_path / "svc.sock")
        service = StudyService(socket_path=socket_path, workers=1)
        service.start()
        try:
            client = ServiceClient(socket_path)
            with pytest.raises(ServiceError) as err:
                client.submit("frobnicate", {})
            assert err.value.code == "bad-request"
        finally:
            service.drain(timeout=30)
            service.stop()
