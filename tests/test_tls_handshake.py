"""Tests for repro.tls.handshake and connection-trace synthesis."""

import pytest

from repro.pki.authority import PKIHierarchy
from repro.pki.store import StoreCatalog
from repro.servers.registry import EndpointRegistry
from repro.tls.alerts import AlertDescription
from repro.tls.ciphers import MODERN_SUITES, TLS13_SUITES, WEAK_SUITES
from repro.tls.connection import (
    TEARDOWN_FIN,
    TEARDOWN_OPEN,
    TEARDOWN_RST,
    synthesize_trace,
)
from repro.tls.handshake import (
    ClientProfile,
    negotiate_cipher,
    negotiate_version,
    perform_handshake,
)
from repro.tls.policy import SpkiPinPolicy, SystemValidationPolicy
from repro.tls.records import TLSVersion, TLS13_ENCRYPTED_ALERT_LEN
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START


@pytest.fixture(scope="module")
def world():
    hierarchy = PKIHierarchy(DeterministicRng(61))
    catalog = StoreCatalog.build(hierarchy)
    registry = EndpointRegistry(hierarchy, DeterministicRng(62))
    endpoint = registry.create_default_pki_endpoint("hs.example.com", "HS")
    return catalog, endpoint


class TestNegotiation:
    def test_version_highest_common(self):
        assert (
            negotiate_version(
                [TLSVersion.TLS12, TLSVersion.TLS13],
                [TLSVersion.TLS12, TLSVersion.TLS13],
            )
            is TLSVersion.TLS13
        )

    def test_version_none_common(self):
        assert negotiate_version([TLSVersion.TLS13], [TLSVersion.TLS10]) is None

    def test_cipher_respects_version(self):
        suite = negotiate_cipher(TLSVersion.TLS13, MODERN_SUITES, MODERN_SUITES)
        assert suite.min_version == "1.3"
        suite12 = negotiate_cipher(TLSVersion.TLS12, MODERN_SUITES, MODERN_SUITES)
        assert suite12.min_version != "1.3"

    def test_cipher_none_common(self):
        assert (
            negotiate_cipher(TLSVersion.TLS12, TLS13_SUITES, list(WEAK_SUITES))
            is None
        )


class TestHandshake:
    def test_success(self, world):
        catalog, endpoint = world
        client = ClientProfile(
            sni="hs.example.com",
            policy=SystemValidationPolicy(catalog.android_aosp),
        )
        outcome = perform_handshake(client, endpoint, STUDY_START)
        assert outcome.success
        assert outcome.version is not None
        assert outcome.cipher is not None
        assert outcome.served_chain is endpoint.chain

    def test_version_mismatch(self, world):
        catalog, endpoint = world
        client = ClientProfile(
            sni="hs.example.com",
            policy=SystemValidationPolicy(catalog.android_aosp),
            offered_versions=(TLSVersion.TLS10,),
        )
        # Endpoint may or may not support 1.0; force a mismatch with 1.3-only client
        client13 = ClientProfile(
            sni="hs.example.com",
            policy=SystemValidationPolicy(catalog.android_aosp),
            offered_versions=(TLSVersion.TLS13,),
        )
        if TLSVersion.TLS13 not in endpoint.supported_versions:
            outcome = perform_handshake(client13, endpoint, STUDY_START)
            assert not outcome.success
            assert outcome.failure_reason == "no_common_version"
            assert (
                outcome.server_alert.description
                is AlertDescription.PROTOCOL_VERSION
            )

    def test_pin_rejection(self, world):
        catalog, endpoint = world
        other = PKIHierarchy(DeterministicRng(63)).issue_leaf_chain(
            "x.com", DeterministicRng(64)
        )
        policy = SpkiPinPolicy(
            [other.chain.leaf.spki_pin()],
            base=SystemValidationPolicy(catalog.android_aosp),
        )
        client = ClientProfile(sni="hs.example.com", policy=policy)
        outcome = perform_handshake(client, endpoint, STUDY_START)
        assert not outcome.success
        assert outcome.failure_reason == "pin_mismatch"
        assert outcome.rejected_certificate

    def test_presented_chain_override(self, world):
        catalog, endpoint = world
        forged = PKIHierarchy(DeterministicRng(65)).issue_leaf_chain(
            "hs.example.com", DeterministicRng(66)
        )
        client = ClientProfile(
            sni="hs.example.com",
            policy=SystemValidationPolicy(catalog.android_aosp),
        )
        outcome = perform_handshake(
            client, endpoint, STUDY_START, presented_chain=forged.chain
        )
        assert outcome.served_chain is forged.chain


class TestTraceSynthesis:
    def _success_outcome(self, world, version=TLSVersion.TLS13):
        catalog, endpoint = world
        client = ClientProfile(
            sni="hs.example.com",
            policy=SystemValidationPolicy(catalog.android_aosp),
            offered_versions=(version,),
        )
        return perform_handshake(client, endpoint, STUDY_START)

    def test_used_tls13_trace(self, world):
        outcome = self._success_outcome(world)
        if not outcome.success:
            pytest.skip("endpoint lacks TLS 1.3")
        trace = synthesize_trace(
            outcome, DeterministicRng(1), client_payload_records=2
        )
        app_data = trace.client_app_data_records()
        # Finished (disguised) + 2 payload records.
        assert len(app_data) == 3
        assert trace.teardown == TEARDOWN_OPEN

    def test_idle_tls13_clean_close_is_alert_sized(self, world):
        outcome = self._success_outcome(world)
        if not outcome.success:
            pytest.skip("endpoint lacks TLS 1.3")
        trace = synthesize_trace(
            outcome,
            DeterministicRng(2),
            client_payload_records=0,
            closes_cleanly=True,
        )
        app_data = trace.client_app_data_records()
        assert len(app_data) == 2
        assert app_data[1].length == TLS13_ENCRYPTED_ALERT_LEN
        assert trace.teardown == TEARDOWN_FIN

    def test_idle_tls13_left_open(self, world):
        outcome = self._success_outcome(world)
        if not outcome.success:
            pytest.skip("endpoint lacks TLS 1.3")
        trace = synthesize_trace(
            outcome,
            DeterministicRng(3),
            client_payload_records=0,
            closes_cleanly=False,
        )
        assert trace.teardown == TEARDOWN_OPEN
        assert len(trace.client_app_data_records()) == 1  # just Finished

    def test_used_tls12_trace_visible_app_data(self, world):
        outcome = self._success_outcome(world, TLSVersion.TLS12)
        trace = synthesize_trace(
            outcome, DeterministicRng(4), client_payload_records=1
        )
        assert len(trace.client_app_data_records()) == 1

    def test_rejection_trace_aborts(self, world):
        catalog, endpoint = world
        other = PKIHierarchy(DeterministicRng(67)).issue_leaf_chain(
            "y.com", DeterministicRng(68)
        )
        policy = SpkiPinPolicy(
            [other.chain.leaf.spki_pin()],
            base=SystemValidationPolicy(catalog.android_aosp),
        )
        client = ClientProfile(sni="hs.example.com", policy=policy)
        outcome = perform_handshake(client, endpoint, STUDY_START)
        trace = synthesize_trace(outcome, DeterministicRng(5))
        assert trace.teardown in (TEARDOWN_RST, TEARDOWN_FIN)
        assert trace.aborted()
