"""The StudyResults invariant auditor and the audit report.

Same philosophy as the oracle tests: a clean run must pass every rule,
and each hand-corrupted results object must trip exactly the rule that
owns the broken contract — a rule that cannot fail is not a check.
"""

from __future__ import annotations

import copy
import importlib.util
from pathlib import Path

import pytest

from repro.core import obs
from repro.core.exec import UnitFailure
from repro.core.verify import (
    AUDIT_LEVELS,
    RULE_CATALOG,
    audit_study,
    run_invariants,
    study_digest,
)
from tests.test_verify_oracle import fresh_results, replace_result

REPO = Path(__file__).resolve().parents[1]


def load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def violated(results):
    """Names of the rules a results object trips."""
    return {r.name for r in run_invariants(results) if not r.passed}


def test_clean_run_passes_every_rule(study_results):
    outcomes = run_invariants(study_results)
    assert len(outcomes) == len(RULE_CATALOG) >= 14
    broken = [
        v.describe() for r in outcomes for v in r.violations
    ]
    assert not broken, broken


def test_catalogue_is_complete_and_named():
    names = [r.name for r in RULE_CATALOG]
    assert len(names) == len(set(names)), "duplicate rule names"
    assert all(r.contract for r in RULE_CATALOG)


def test_verdict_differential_trips(study_results):
    def break_used_direct(result):
        destination = sorted(result.pinned_destinations)[0]
        result.verdicts[destination].used_direct = False

    corrupted = replace_result(
        study_results, ("android", "common"), break_used_direct
    )
    assert "verdict-differential" in violated(corrupted)


def test_verdict_partition_trips(study_results):
    def misfile_verdict(result):
        destination = sorted(result.verdicts)[0]
        result.verdicts[destination].destination = "evil.example"

    corrupted = replace_result(
        study_results, ("android", "common"), misfile_verdict
    )
    assert "verdict-partition" in violated(corrupted)


def test_capture_consistency_trips(study_results):
    def strip_direct_capture(result):
        pinned = sorted(result.pinned_destinations)[0]
        result.direct_capture.flows = [
            f for f in result.direct_capture.flows if f.sni != pinned
        ]

    corrupted = replace_result(
        study_results, ("ios", "popular"), strip_direct_capture
    )
    assert "capture-consistency" in violated(corrupted)


def test_duplicate_result_trips_membership(study_results):
    corrupted = fresh_results(study_results)
    dataset = corrupted.dynamic_results[("android", "random")]
    dataset.append(dataset[0])
    assert "dynamic-membership" in violated(corrupted)


def test_silently_missing_app_trips_ledger_exclusion(study_results):
    corrupted = fresh_results(study_results)
    corrupted.dynamic_results[("android", "random")].pop()
    assert "ledger-exclusion" in violated(corrupted)


def test_ledgered_app_is_a_legitimate_absence(study_results):
    corrupted = fresh_results(study_results)
    dropped = corrupted.dynamic_results[("android", "random")].pop()
    corrupted.failures = list(corrupted.failures) + [
        UnitFailure(
            app_id=dropped.app_id,
            phase="dynamic",
            platform="android",
            dataset="random",
            index=0,
            attempts=2,
            error="RuntimeError('device wedged')",
        )
    ]
    names = violated(corrupted)
    assert "ledger-exclusion" not in names


def test_circumvention_partition_trips(study_results):
    corrupted = fresh_results(study_results)
    circ = copy.deepcopy(corrupted.circumvention["android"][0])
    circ.bypassed_destinations.add("fabricated.example")
    corrupted.circumvention["android"] = [circ] + corrupted.circumvention[
        "android"
    ][1:]
    assert "circumvention-partition" in violated(corrupted)


def test_unswept_pinning_app_trips_coverage(study_results):
    corrupted = fresh_results(study_results)
    assert corrupted.circumvention["ios"], "need at least one iOS sweep"
    # Drop *every* sweep of one app: an app pinning in several datasets
    # is swept once per dataset, and any surviving entry would keep it
    # covered.
    target = corrupted.circumvention["ios"][-1].app_id
    corrupted.circumvention["ios"] = [
        c for c in corrupted.circumvention["ios"] if c.app_id != target
    ]
    assert "circumvention-coverage" in violated(corrupted)


def test_rerun_flag_outside_ios_common_trips(study_results):
    def misplace_flag(result):
        result.reran_with_wait = True

    corrupted = replace_result(
        study_results, ("android", "common"), misplace_flag
    )
    assert "ios-rerun" in violated(corrupted)


def test_stale_memo_trips_prevalence_margins(study_results):
    corrupted = fresh_results(study_results)
    # Poison the memo the tables consume: rendering would now disagree
    # with the raw results, which is precisely the silent-corruption
    # scenario the audit exists for.
    from repro.core.analysis.prevalence import PrevalenceCell

    cells = copy.deepcopy(study_results._prevalence_cells())
    key = ("android", "common")
    cells[key]["dynamic"] = PrevalenceCell(
        count=cells[key]["dynamic"].count + 3,
        total=cells[key]["dynamic"].total,
    )
    corrupted._cache["prevalence_cells"] = cells
    assert "prevalence-margins" in violated(corrupted)


def test_telemetry_ledger_trips_on_counter_drift(study_results):
    recorder = obs.Recorder()
    corrupted = fresh_results(study_results, telemetry=recorder)
    corrupted.failures = list(corrupted.failures) + [
        UnitFailure(
            app_id="app.phantom",
            phase="dynamic",
            platform="android",
            dataset="random",
            index=0,
            attempts=2,
            error="RuntimeError('ghost')",
        )
    ]
    assert "telemetry-ledger" in violated(corrupted)


def test_audit_counters_accumulate(study_results):
    recorder = obs.Recorder().install()
    try:
        run_invariants(study_results)
    finally:
        recorder.uninstall()
    assert recorder.counter_value("verify.rule.checked") == len(RULE_CATALOG)
    assert recorder.counter_value("verify.rule.violated") == 0


# -- audit_study / AuditReport ------------------------------------------------


def test_audit_study_clean_pass(study_results):
    report = audit_study(study_results)
    assert report.passed
    assert report.level == "standard"
    assert report.window_s == study_results.window_s
    assert report.determinism is None
    rendered = report.render()
    assert "Audit verdict: PASS" in rendered
    assert "OUT OF BAND" not in rendered


def test_audit_study_fails_on_corruption(study_results):
    def drop_pin(result):
        destination = sorted(result.pinned_destinations)[0]
        result.verdicts[destination].pinned = False

    corrupted = replace_result(study_results, ("android", "common"), drop_pin)
    report = audit_study(corrupted)
    assert not report.passed
    assert report.oracle_failures
    assert "Audit verdict: FAIL" in report.render()


def test_audit_study_rejects_unknown_level(study_results):
    with pytest.raises(ValueError, match="unknown audit level"):
        audit_study(study_results, level="paranoid")
    assert AUDIT_LEVELS == ("standard", "deep")


def test_audit_json_round_trips_through_schema(study_results, tmp_path):
    import json

    report = audit_study(study_results)
    out = tmp_path / "audit.json"
    out.write_text(json.dumps(report.to_json_dict(), indent=2))
    validate_audit = load_tool("validate_audit")
    assert (
        validate_audit.main(
            [str(REPO / "schemas" / "audit_report.schema.json"), str(out),
             "--require-pass"]
        )
        == 0
    )


def test_validate_audit_require_pass_fails_failed_audit(
    study_results, tmp_path
):
    import json

    def drop_pin(result):
        destination = sorted(result.pinned_destinations)[0]
        result.verdicts[destination].pinned = False

    corrupted = replace_result(study_results, ("ios", "common"), drop_pin)
    report = audit_study(corrupted)
    out = tmp_path / "audit.json"
    out.write_text(json.dumps(report.to_json_dict(), indent=2))
    validate_audit = load_tool("validate_audit")
    schema = str(REPO / "schemas" / "audit_report.schema.json")
    # Shape is still valid...
    assert validate_audit.main([schema, str(out)]) == 0
    # ...but --require-pass must reject the failed verdict.
    assert validate_audit.main([schema, str(out), "--require-pass"]) == 1


def test_study_digest_is_stable_and_sensitive(study_results):
    baseline = study_digest(study_results)
    assert baseline == study_digest(study_results)

    corrupted = fresh_results(study_results)
    corrupted.dynamic_results[("android", "random")].pop()
    assert study_digest(corrupted) != baseline


def _replace_static_report(results, key, mutate):
    """Deep-copy one dataset's first static report, apply ``mutate``,
    and return fresh results containing it."""
    out = fresh_results(results)
    reports = out.static_reports[key]
    mutated = copy.deepcopy(reports[0])
    mutate(mutated)
    reports[0] = mutated
    return out


def test_static_decryption_tool_trips_on_empty_tool(study_results):
    def blank_tool(report):
        report.decryption_tool = ""

    corrupted = _replace_static_report(
        study_results, ("android", "common"), blank_tool
    )
    assert "static-decryption-tool" in violated(corrupted)


def test_static_decryption_tool_trips_on_foreign_tool(study_results):
    def android_tool_on_ios(report):
        report.decryption_tool = "apktool-sim"

    corrupted = _replace_static_report(
        study_results, ("ios", "common"), android_tool_on_ios
    )
    assert "static-decryption-tool" in violated(corrupted)
