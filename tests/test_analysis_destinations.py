"""Unit tests for destination profiles and summaries (Figure 5)."""

import pytest

from repro.core.analysis.destinations import (
    AppDestinationProfile,
    build_destination_profiles,
    figure5_table,
    summarize_destinations,
)


class TestAppDestinationProfile:
    def test_totals_and_fraction(self):
        profile = AppDestinationProfile(
            app_id="a",
            platform="android",
            dataset="popular",
            pinned_first=1,
            pinned_third=2,
            unpinned_first=1,
            unpinned_third=4,
        )
        assert profile.total == 8
        assert profile.pinned_fraction == pytest.approx(3 / 8)
        assert not profile.pins_all_contacted()
        assert not profile.pins_all_first_party()

    def test_pins_all_contacted(self):
        profile = AppDestinationProfile(
            app_id="a", platform="ios", dataset="random", pinned_first=2
        )
        assert profile.pins_all_contacted()

    def test_pins_all_first_party(self):
        profile = AppDestinationProfile(
            app_id="a",
            platform="android",
            dataset="popular",
            pinned_first=2,
            unpinned_third=3,
        )
        assert profile.pins_all_first_party()

    def test_empty_profile(self):
        profile = AppDestinationProfile(app_id="a", platform="ios", dataset="x")
        assert profile.pinned_fraction == 0.0
        assert not profile.pins_all_contacted()


class TestSummaries:
    def _profiles(self):
        return [
            AppDestinationProfile(
                "a", "android", "popular", pinned_first=1, unpinned_third=2
            ),
            AppDestinationProfile(
                "b", "android", "popular", pinned_third=3, unpinned_first=1
            ),
            AppDestinationProfile("c", "ios", "random", pinned_third=1),
        ]

    def test_summary_counts(self):
        summary = summarize_destinations(self._profiles())
        assert summary.pinning_apps == 3
        assert summary.pinned_destinations_first == 1
        assert summary.pinned_destinations_third == 4
        assert summary.third_party_majority
        assert summary.apps_pinning_all_domains == 1
        assert summary.apps_with_first_party_pins == 1
        assert summary.apps_with_third_party_pins == 2

    def test_figure5_table_sorted_by_pinned_fraction(self):
        table = figure5_table(self._profiles())
        fractions = [row[-1] for row in table.rows]
        values = [float(f.rstrip("%")) for f in fractions]
        assert values == sorted(values, reverse=True)


class TestBuildFromStudy:
    def test_profiles_only_for_pinning_apps(self, small_corpus, study_results):
        profiles = build_destination_profiles(
            small_corpus, study_results.dynamic_results
        )
        by_id = {p.app.app_id: p for p in small_corpus.all_apps()}
        for profile in profiles:
            app = by_id[profile.app_id].app
            assert app.pins_at_runtime()
            assert profile.pinned_first + profile.pinned_third > 0

    def test_common_dataset_excluded_by_default(self, small_corpus, study_results):
        profiles = build_destination_profiles(
            small_corpus, study_results.dynamic_results
        )
        assert all(p.dataset in ("popular", "random") for p in profiles)

    def test_party_split_matches_ownership(self, small_corpus, study_results):
        profiles = build_destination_profiles(
            small_corpus, study_results.dynamic_results
        )
        by_id = {p.app.app_id: p for p in small_corpus.all_apps()}
        # Apps whose first-party api host is pinned should register a
        # pinned-first destination.
        for profile in profiles:
            app = by_id[profile.app_id].app
            own_pinned = any(
                app.owner == small_corpus.registry.parties.owner_of(d)
                for d in app.runtime_pinned_domains()
                if small_corpus.registry.parties.owner_of(d)
            )
            if own_pinned:
                assert profile.pinned_first > 0
