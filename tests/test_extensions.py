"""Tests for the extension analyses: Spinner probing and NSC misconfigs."""


from repro.core.analysis.misconfig import (
    find_nsc_misconfigurations,
    misconfig_table,
)
from repro.core.analysis.spinner import build_probe_chain, spinner_scan, spinner_table


class TestProbeChain:
    def test_probe_for_default_pki(self, small_corpus):
        endpoint = next(
            e for e in small_corpus.registry if e.pki_kind == "default"
        )
        probe = build_probe_chain(small_corpus, endpoint.hostname)
        assert probe is not None
        assert probe.leaf.matches_hostname("attacker-controlled.example")
        assert not probe.leaf.matches_hostname(endpoint.hostname)
        # Same issuing CA: same intermediate in the chain.
        assert probe.certificates[1:] == endpoint.chain.certificates[1:]

    def test_probe_verifies_under_public_store(self, small_corpus):
        from repro.pki.validation import ValidationContext, chain_is_valid
        from repro.util.simtime import STUDY_START

        endpoint = next(
            e for e in small_corpus.registry if e.pki_kind == "default"
        )
        probe = build_probe_chain(small_corpus, endpoint.hostname)
        ctx = ValidationContext(
            store=small_corpus.stores.mozilla,
            hostname="attacker-controlled.example",
            at_time=STUDY_START,
        )
        assert chain_is_valid(probe, ctx)

    def test_no_probe_for_custom_pki(self, small_corpus):
        customs = [
            e for e in small_corpus.registry if e.pki_kind != "default"
        ]
        for endpoint in customs:
            assert build_probe_chain(small_corpus, endpoint.hostname) is None

    def test_no_probe_for_unknown_host(self, small_corpus):
        assert build_probe_chain(small_corpus, "nope.example.org") is None


class TestSpinnerScan:
    def test_scan_flags_only_lax_implementations(
        self, small_corpus, study_results
    ):

        for platform in ("android", "ios"):
            store = (
                small_corpus.stores.android_aosp
                if platform == "android"
                else small_corpus.stores.ios
            )
            report = spinner_scan(
                small_corpus,
                platform,
                study_results.all_dynamic(platform),
                store,
            )
            by_id = {p.app.app_id: p for p in small_corpus.all_apps(platform)}
            for finding in report.findings:
                app = by_id[finding.app_id].app
                lax_domains = {
                    d
                    for s in app.active_specs()
                    if s.skips_hostname_check and s.scope.is_ca
                    for d in s.domains
                }
                if finding.vulnerable:
                    assert finding.destination in lax_domains, finding

    def test_scan_table_renders(self, small_corpus, study_results):
        reports = [
            spinner_scan(
                small_corpus,
                "android",
                study_results.all_dynamic("android"),
                small_corpus.stores.android_aosp,
            )
        ]
        rendered = spinner_table(reports).render()
        assert "Spinner probe" in rendered

    def test_vulnerable_app_detected(self, small_corpus):
        """Craft an app with the vulnerability and confirm the probe."""
        from repro.appmodel.app import MobileApp
        from repro.appmodel.behavior import DestinationUsage, NetworkBehavior
        from repro.appmodel.pinning import (
            PinMechanism,
            PinningSpec,
            PinScope,
        )

        endpoint = next(
            e for e in small_corpus.registry if e.pki_kind == "default"
        )
        spec = PinningSpec(
            domains=(endpoint.hostname,),
            mechanism=PinMechanism.CUSTOM_TLS,
            scope=PinScope.INTERMEDIATE,
            skips_hostname_check=True,
        )
        spec.resolve_domain(endpoint.hostname, endpoint.chain)
        app = MobileApp(
            app_id="com.vulnerable.app",
            name="Vulnerable",
            platform="android",
            category="Finance",
            owner="VulnCo",
            pinning_specs=[spec],
            behavior=NetworkBehavior([DestinationUsage(endpoint.hostname)]),
        )
        policy = app.runtime_policy(small_corpus.stores.android_aosp)
        probe = build_probe_chain(small_corpus, endpoint.hostname)
        assert policy.accepts(probe, endpoint.hostname, __import__(
            "repro.util.simtime", fromlist=["STUDY_START"]
        ).STUDY_START)

    def test_strict_app_rejects_probe(self, small_corpus):
        from repro.appmodel.app import MobileApp
        from repro.appmodel.behavior import DestinationUsage, NetworkBehavior
        from repro.appmodel.pinning import (
            PinMechanism,
            PinningSpec,
            PinScope,
        )
        from repro.util.simtime import STUDY_START

        endpoint = next(
            e for e in small_corpus.registry if e.pki_kind == "default"
        )
        spec = PinningSpec(
            domains=(endpoint.hostname,),
            mechanism=PinMechanism.OKHTTP,
            scope=PinScope.INTERMEDIATE,
        )
        spec.resolve_domain(endpoint.hostname, endpoint.chain)
        app = MobileApp(
            app_id="com.strict.app",
            name="Strict",
            platform="android",
            category="Finance",
            owner="StrictCo",
            pinning_specs=[spec],
            behavior=NetworkBehavior([DestinationUsage(endpoint.hostname)]),
        )
        policy = app.runtime_policy(small_corpus.stores.android_aosp)
        probe = build_probe_chain(small_corpus, endpoint.hostname)
        assert not policy.accepts(probe, endpoint.hostname, STUDY_START)


class TestNSCMisconfig:
    def test_misconfig_report(self, small_corpus, study_results):
        reports = list(study_results.static_by_app("android").values())
        dynamic = study_results.all_dynamic("android")
        report = find_nsc_misconfigurations(reports, dynamic)
        assert report.apps_with_nsc_pins > 0
        # Any misconfigured declaration must be unenforced at run time.
        for finding in report.misconfigured:
            assert finding.enforced_at_runtime is False

    def test_misconfigured_domains_not_pinned_dynamically(
        self, small_corpus, study_results
    ):
        by_id = {p.app.app_id: p for p in small_corpus.all_apps("android")}
        for result in study_results.all_dynamic("android"):
            app = by_id[result.app_id].app
            for spec in app.pinning_specs:
                if spec.nsc_override_pins:
                    for domain in spec.domains:
                        assert domain not in result.pinned_destinations

    def test_table_renders(self, study_results):
        reports = list(study_results.static_by_app("android").values())
        rendered = misconfig_table(
            find_nsc_misconfigurations(reports)
        ).render()
        assert "overridePins" in rendered
