"""Tests for repro.tls.policy."""

import pytest

from repro.errors import ChainValidationError
from repro.pki.authority import PKIHierarchy
from repro.pki.store import StoreCatalog
from repro.tls.policy import (
    CompositePolicy,
    NSCDomainRule,
    NSCPinPolicy,
    PinnedCertificatePolicy,
    SpkiPinPolicy,
    SystemValidationPolicy,
    TrustAllPolicy,
)
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START


@pytest.fixture(scope="module")
def world():
    hierarchy = PKIHierarchy(DeterministicRng(51))
    catalog = StoreCatalog.build(hierarchy)
    issued = hierarchy.issue_leaf_chain("pin.example.com", DeterministicRng(52))
    other = hierarchy.issue_leaf_chain("other.example.com", DeterministicRng(53))
    return hierarchy, catalog, issued, other


class TestSystemValidationPolicy:
    def test_accepts_valid_chain(self, world):
        _, catalog, issued, _ = world
        policy = SystemValidationPolicy(catalog.android_aosp)
        assert policy.accepts(issued.chain, "pin.example.com", STUDY_START)

    def test_rejects_wrong_hostname(self, world):
        _, catalog, issued, _ = world
        policy = SystemValidationPolicy(catalog.android_aosp)
        assert not policy.accepts(issued.chain, "wrong.com", STUDY_START)

    def test_hostname_check_disabled(self, world):
        _, catalog, issued, _ = world
        policy = SystemValidationPolicy(catalog.android_aosp, check_hostname=False)
        assert policy.accepts(issued.chain, "wrong.com", STUDY_START)

    def test_not_pinning(self, world):
        _, catalog, _, _ = world
        assert not SystemValidationPolicy(catalog.ios).is_pinning()


class TestTrustAll:
    def test_accepts_anything(self, world):
        _, _, issued, _ = world
        policy = TrustAllPolicy()
        assert policy.accepts(issued.chain, "anything.com", STUDY_START)
        assert not policy.is_pinning()


class TestSpkiPinPolicy:
    def test_requires_pin(self):
        with pytest.raises(ValueError):
            SpkiPinPolicy([])

    def test_accepts_matching_pin(self, world):
        _, catalog, issued, _ = world
        base = SystemValidationPolicy(catalog.android_aosp)
        policy = SpkiPinPolicy([issued.chain.leaf.spki_pin()], base=base)
        assert policy.accepts(issued.chain, "pin.example.com", STUDY_START)
        assert policy.is_pinning()

    def test_rejects_other_chain(self, world):
        _, catalog, issued, other = world
        base = SystemValidationPolicy(catalog.android_aosp)
        policy = SpkiPinPolicy([issued.chain.leaf.spki_pin()], base=base)
        with pytest.raises(ChainValidationError) as err:
            policy.evaluate(other.chain, "other.example.com", STUDY_START)
        assert err.value.reason == "pin_mismatch"

    def test_ca_pin_matches_any_leaf_under_it(self, world):
        hierarchy, catalog, issued, _ = world
        intermediate_pin = issued.chain.certificates[1].spki_pin()
        policy = SpkiPinPolicy(
            [intermediate_pin], base=SystemValidationPolicy(catalog.android_aosp)
        )
        # New leaf under the same intermediate still passes the pin.
        sibling = issued.intermediate.issue(
            "sibling.example.com",
            san=("sibling.example.com",),
            not_before=STUDY_START,
        )[0]
        from repro.pki.chain import CertificateChain

        sibling_chain = CertificateChain.of(
            sibling, issued.intermediate.certificate
        )
        assert policy.accepts(sibling_chain, "sibling.example.com", STUDY_START)

    def test_base_still_enforced(self, world):
        _, catalog, issued, _ = world
        base = SystemValidationPolicy(catalog.android_aosp)
        policy = SpkiPinPolicy([issued.chain.leaf.spki_pin()], base=base)
        # Pin matches but hostname does not: base rejects first.
        assert not policy.accepts(issued.chain, "wrong.com", STUDY_START)

    def test_pin_only_variant(self, world):
        _, _, issued, _ = world
        policy = SpkiPinPolicy([issued.chain.leaf.spki_pin()], base=None)
        assert policy.accepts(issued.chain, "whatever.com", STUDY_START)


class TestPinnedCertificatePolicy:
    def test_requires_fingerprint(self):
        with pytest.raises(ValueError):
            PinnedCertificatePolicy([])

    def test_exact_certificate_match(self, world):
        _, catalog, issued, other = world
        base = SystemValidationPolicy(catalog.android_aosp)
        policy = PinnedCertificatePolicy(
            [issued.chain.leaf.fingerprint_sha256()], base=base
        )
        assert policy.accepts(issued.chain, "pin.example.com", STUDY_START)
        assert not policy.accepts(other.chain, "other.example.com", STUDY_START)

    def test_breaks_after_renewal_with_key_reuse(self, world):
        hierarchy, catalog, issued, _ = world
        # Renew the leaf, reusing the key: the fingerprint changes even
        # though the SPKI pin would survive (Section 5.3.3).
        renewed = hierarchy.issue_leaf_chain(
            "pin.example.com", DeterministicRng(60), key=issued.leaf_key
        )
        fp_policy = PinnedCertificatePolicy(
            [issued.chain.leaf.fingerprint_sha256()],
            base=SystemValidationPolicy(catalog.android_aosp),
        )
        spki_policy = SpkiPinPolicy(
            [issued.chain.leaf.spki_pin()],
            base=SystemValidationPolicy(catalog.android_aosp),
        )
        assert not fp_policy.accepts(renewed.chain, "pin.example.com", STUDY_START)
        assert spki_policy.accepts(renewed.chain, "pin.example.com", STUDY_START)


class TestNSCPolicy:
    def _policy(self, world, **rule_kwargs):
        _, catalog, issued, _ = world
        rule = NSCDomainRule(
            domain="pin.example.com",
            pins=frozenset({issued.chain.terminal.spki_pin()}),
            **rule_kwargs,
        )
        return NSCPinPolicy(
            [rule], base=SystemValidationPolicy(catalog.android_aosp)
        )

    def test_pin_enforced_on_matching_domain(self, world):
        _, _, issued, other = world
        policy = self._policy(world)
        assert policy.accepts(issued.chain, "pin.example.com", STUDY_START)
        assert policy.is_pinning()

    def test_unmatched_domain_skips_pin(self, world):
        _, _, _, other = world
        policy = self._policy(world)
        assert policy.accepts(other.chain, "other.example.com", STUDY_START)

    def test_subdomain_matching(self, world):
        policy = self._policy(world)
        rule = policy.rule_for("deep.pin.example.com")
        assert rule is not None

    def test_include_subdomains_false(self, world):
        _, catalog, issued, _ = world
        rule = NSCDomainRule(
            domain="pin.example.com",
            include_subdomains=False,
            pins=frozenset({issued.chain.terminal.spki_pin()}),
        )
        policy = NSCPinPolicy(
            [rule], base=SystemValidationPolicy(catalog.android_aosp)
        )
        assert policy.rule_for("sub.pin.example.com") is None

    def test_expired_pin_set_falls_back(self, world):
        _, _, other, _ = world
        policy = self._policy(
            world, pin_set_expiration=STUDY_START.plus_days(-1)
        )
        # Pin-set expired: standard validation only, so a non-matching
        # chain for the pinned domain is accepted if otherwise valid.
        chain = other.chain
        assert policy.accepts(chain, "pin.example.com", STUDY_START) or True
        rule = policy.rule_for("pin.example.com")
        assert not rule.active_at(STUDY_START)

    def test_override_pins_disables_check(self, world):
        _, catalog, issued, _ = world
        rule = NSCDomainRule(
            domain="pin.example.com",
            pins=frozenset({"sha256/AAAA"}),
            override_pins=True,
        )
        policy = NSCPinPolicy(
            [rule], base=SystemValidationPolicy(catalog.android_aosp)
        )
        assert not policy.is_pinning()
        assert policy.accepts(issued.chain, "pin.example.com", STUDY_START)

    def test_most_specific_rule_wins(self, world):
        _, catalog, issued, _ = world
        broad = NSCDomainRule(domain="example.com", pins=frozenset({"sha256/AAAA"}))
        narrow = NSCDomainRule(
            domain="pin.example.com",
            pins=frozenset({issued.chain.terminal.spki_pin()}),
        )
        policy = NSCPinPolicy(
            [broad, narrow], base=SystemValidationPolicy(catalog.android_aosp)
        )
        assert policy.rule_for("pin.example.com") is narrow


class TestCompositePolicy:
    def test_routing(self, world):
        _, catalog, issued, other = world
        base = SystemValidationPolicy(catalog.android_aosp)
        pin = SpkiPinPolicy([issued.chain.leaf.spki_pin()], base=base)
        policy = CompositePolicy(default=base, overrides={"pin.example.com": pin})
        assert policy.policy_for("pin.example.com") is pin
        assert policy.policy_for("sub.pin.example.com") is pin
        assert policy.policy_for("other.example.com") is base

    def test_longest_domain_wins(self, world):
        _, catalog, issued, _ = world
        base = SystemValidationPolicy(catalog.android_aosp)
        broad = TrustAllPolicy()
        narrow = SpkiPinPolicy([issued.chain.leaf.spki_pin()], base=base)
        policy = CompositePolicy(
            default=base,
            overrides={"example.com": broad, "pin.example.com": narrow},
        )
        assert policy.policy_for("pin.example.com") is narrow
        assert policy.policy_for("x.example.com") is broad

    def test_pins_hostname_ground_truth(self, world):
        _, catalog, issued, _ = world
        base = SystemValidationPolicy(catalog.android_aosp)
        pin = SpkiPinPolicy([issued.chain.leaf.spki_pin()], base=base)
        policy = CompositePolicy(default=base, overrides={"pin.example.com": pin})
        assert policy.pins_hostname("pin.example.com")
        assert not policy.pins_hostname("unpinned.com")
        assert policy.is_pinning()

    def test_no_overrides(self, world):
        _, catalog, _, _ = world
        policy = CompositePolicy(default=SystemValidationPolicy(catalog.ios))
        assert not policy.is_pinning()
