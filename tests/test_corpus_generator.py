"""Tests for the corpus generator (uses the session small corpus)."""

import pytest

from repro.appmodel.android import AndroidApp
from repro.appmodel.ios import IOSApp
from repro.corpus import CorpusConfig, CorpusGenerator
from repro.corpus.common import consistency_class_counts, ios_category
from repro.corpus.profiles import DATASET_PROFILES


class TestCorpusStructure:
    def test_all_datasets_present(self, small_corpus):
        assert set(small_corpus.datasets) == {
            (p, d)
            for p in ("android", "ios")
            for d in ("common", "popular", "random")
        }

    def test_dataset_sizes_match_config(self, small_corpus):
        config = CorpusConfig().scaled(0.06)
        assert len(small_corpus.dataset("android", "common")) == config.common
        assert len(small_corpus.dataset("ios", "popular")) == config.popular

    def test_package_types(self, small_corpus):
        assert all(
            isinstance(p, AndroidApp)
            for p in small_corpus.dataset("android", "popular")
        )
        assert all(
            isinstance(p, IOSApp) for p in small_corpus.dataset("ios", "popular")
        )

    def test_common_pairs_linked(self, small_corpus):
        pairs = small_corpus.common_pairs()
        assert len(pairs) == len(small_corpus.dataset("android", "common"))
        for android, ios in pairs:
            assert android.app.owner == ios.app.owner
            assert (
                android.app.cross_platform_id == ios.app.cross_platform_id
            )

    def test_unique_app_ids(self, small_corpus):
        ids = [p.app.app_id for p in small_corpus.all_apps()]
        assert len(ids) == len(set(ids))

    def test_find_app(self, small_corpus):
        some = small_corpus.dataset("android", "popular")[0]
        assert small_corpus.find_app(some.app.app_id) is some
        from repro.errors import CorpusError

        with pytest.raises(CorpusError):
            small_corpus.find_app("com.does.not.exist")


class TestCalibration:
    @pytest.mark.parametrize("platform", ["android", "ios"])
    @pytest.mark.parametrize("dataset", ["popular", "random"])
    def test_pinner_counts_on_target(self, small_corpus, platform, dataset):
        apps = small_corpus.dataset(platform, dataset)
        profile = DATASET_PROFILES[(platform, dataset)]
        pinners = sum(1 for a in apps if a.app.pins_at_runtime())
        expected = round(profile.dynamic_pin_rate * len(apps))
        assert abs(pinners - expected) <= 1

    @pytest.mark.parametrize("platform", ["android", "ios"])
    @pytest.mark.parametrize("dataset", ["common", "popular", "random"])
    def test_embedded_counts_on_target(self, small_corpus, platform, dataset):
        apps = small_corpus.dataset(platform, dataset)
        profile = DATASET_PROFILES[(platform, dataset)]
        embedded = sum(1 for a in apps if a.app.embeds_pin_material())
        expected = round(profile.embedded_material_rate * len(apps))
        assert abs(embedded - expected) <= 2

    def test_every_pinned_domain_has_endpoint(self, small_corpus):
        for packaged in small_corpus.all_apps():
            for domain in packaged.app.runtime_pinned_domains():
                assert small_corpus.registry.knows(domain)

    def test_every_behavior_host_has_endpoint(self, small_corpus):
        for packaged in small_corpus.all_apps():
            for host in packaged.app.behavior.destinations():
                assert small_corpus.registry.knows(host)

    def test_specs_resolved(self, small_corpus):
        for packaged in small_corpus.all_apps():
            for spec in packaged.app.pinning_specs:
                assert spec.is_resolved()

    def test_pinned_usages_start_early(self, small_corpus):
        for packaged in small_corpus.all_apps():
            app = packaged.app
            for usage in app.behavior.usages:
                if app.pins_domain(usage.hostname):
                    assert usage.start_offset_s <= 20.0

    def test_random_android_pinners_have_no_pinning_sdks(self, small_corpus):

        for packaged in small_corpus.dataset("android", "random"):
            app = packaged.app
            if not app.pins_at_runtime():
                continue
            for spec in app.active_specs():
                assert spec.source == "first-party"


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        config = CorpusConfig(seed=77).scaled(0.01)
        a = CorpusGenerator(config).generate()
        b = CorpusGenerator(config).generate()
        ids_a = [p.app.app_id for p in a.all_apps()]
        ids_b = [p.app.app_id for p in b.all_apps()]
        assert ids_a == ids_b
        pins_a = {
            p.app.app_id: sorted(p.app.runtime_pinned_domains())
            for p in a.all_apps()
        }
        pins_b = {
            p.app.app_id: sorted(p.app.runtime_pinned_domains())
            for p in b.all_apps()
        }
        assert pins_a == pins_b

    def test_different_seed_differs(self):
        a = CorpusGenerator(CorpusConfig(seed=1).scaled(0.01)).generate()
        b = CorpusGenerator(CorpusConfig(seed=2).scaled(0.01)).generate()
        pins_a = sorted(
            d for p in a.all_apps() for d in p.app.runtime_pinned_domains()
        )
        pins_b = sorted(
            d for p in b.all_apps() for d in p.app.runtime_pinned_domains()
        )
        assert pins_a != pins_b


class TestCommonPlanner:
    def test_class_counts_scale(self):
        counts = consistency_class_counts(575)
        assert counts["both_identical"] == 13
        assert counts["android_only_inconsistent"] == 10
        assert counts["ios_only_inconclusive"] == 15
        assert counts["none"] == 575 - 69

    def test_class_counts_small(self):
        counts = consistency_class_counts(60)
        assert counts["none"] >= 0
        assert all(v >= 0 for v in counts.values())

    def test_ios_category_mapping(self):
        assert ios_category("Social") == "Social Networking"
        assert ios_category("Finance") == "Finance"
        assert ios_category("Personalization") == "Utilities"
        assert ios_category("Weather Tools") == "Weather"
