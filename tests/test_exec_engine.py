"""Tests for repro.core.exec: plans, sharding, and study-level parity.

The engine's contract is bit-for-bit determinism: a study sharded over
any number of workers must produce results identical to a serial run.
The parity test asserts that on the paper's headline artefacts (Table 3
and Figure 2) plus the raw per-app pinned sets.
"""

import pytest

from repro.core.analysis import Study
from repro.core.dynamic.pipeline import DynamicPipeline
from repro.core.exec import ExecutionEngine, ExecutionPlan
from repro.corpus import CorpusConfig, CorpusGenerator
from repro.util.rng import DeterministicRng, derive_seed


@pytest.fixture(scope="module")
def tiny_corpus():
    """A corpus small enough to run the full study three times."""
    return CorpusGenerator(CorpusConfig(seed=1337).scaled(0.015)).generate()


class TestExecutionPlan:
    def test_defaults_are_serial(self):
        plan = ExecutionPlan()
        assert plan.workers == 1
        assert plan.serial

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ExecutionPlan(workers=0)

    def test_rejects_negative_chunk(self):
        with pytest.raises(ValueError):
            ExecutionPlan(chunk_size=-1)

    def test_explicit_chunk_wins(self):
        assert ExecutionPlan(workers=4, chunk_size=3).chunk_for(100) == 3

    def test_auto_chunk_spreads_over_workers(self):
        chunk = ExecutionPlan(workers=4).chunk_for(100)
        # ~4 chunks per worker.
        assert 1 <= chunk <= 100 // 4
        assert ExecutionPlan(workers=4).chunk_for(1) == 1

    def test_serial_auto_chunk_is_whole_dataset(self):
        assert ExecutionPlan().chunk_for(57) == 57

    def test_for_workers(self):
        assert ExecutionPlan.for_workers(3).workers == 3


class TestSharding:
    def test_units_cover_all_indices_in_order(self, tiny_corpus):
        engine = ExecutionEngine(tiny_corpus, ExecutionPlan(workers=2, chunk_size=3))
        units = engine.units_for("static", ("android", "common"), range(10))
        flattened = [i for unit in units for i in unit[3]]
        assert flattened == list(range(10))

    def test_circumvent_extra_sliced_with_indices(self, tiny_corpus):
        engine = ExecutionEngine(tiny_corpus, ExecutionPlan(workers=2, chunk_size=2))
        pins = [("a",), ("b",), ("c",), ("d",), ("e",)]
        units = engine.units_for(
            "circumvent", ("android", "common"), range(5), pins
        )
        for unit in units:
            assert len(unit[3]) == len(unit[4])
        assert [p for unit in units for p in unit[4]] == pins

    def test_unknown_kind_rejected(self, tiny_corpus):
        from repro.core.exec.engine import _build_state, _run_unit

        state = _build_state(tiny_corpus, 30.0)
        with pytest.raises(ValueError):
            _run_unit(state, ("mystery", "android", "common", (0,), None))


class TestStudyParity:
    @pytest.fixture(scope="class")
    def runs(self, tiny_corpus):
        out = {}
        for workers in (1, 2, 4):
            out[workers] = Study(
                tiny_corpus, plan=ExecutionPlan(workers=workers)
            ).run()
        return out

    def test_table3_identical_across_worker_counts(self, runs):
        reference = runs[1].table3().render()
        assert runs[2].table3().render() == reference
        assert runs[4].table3().render() == reference

    def test_figure2_identical_across_worker_counts(self, runs):
        reference = runs[1].figure2().render()
        assert runs[2].figure2().render() == reference
        assert runs[4].figure2().render() == reference

    def test_per_app_pinned_sets_identical(self, runs):
        for platform in ("android", "ios"):
            serial = runs[1].dynamic_by_app(platform)
            for workers in (2, 4):
                parallel = runs[workers].dynamic_by_app(platform)
                assert set(serial) == set(parallel)
                for app_id, result in serial.items():
                    assert (
                        parallel[app_id].pinned_destinations
                        == result.pinned_destinations
                    )

    def test_circumvention_identical(self, runs):
        for platform in ("android", "ios"):
            reference = [
                (r.app_id, sorted(r.bypassed_destinations))
                for r in runs[1].circumvention[platform]
            ]
            for workers in (2, 4):
                assert [
                    (r.app_id, sorted(r.bypassed_destinations))
                    for r in runs[workers].circumvention[platform]
                ] == reference


class TestPerAppRngDerivation:
    def test_adjacent_app_ids_get_unrelated_streams(self):
        # Sequentially numbered app ids must not produce correlated
        # randomness (the sharder may place them on the same worker).
        base = DeterministicRng(2022).child("harness", "android")
        streams = []
        for app_id in ("app-0001", "app-0002", "app-0003"):
            child = base.child("run", app_id, False, 30.0)
            streams.append([child.random() for _ in range(16)])
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                overlap = set(streams[i]) & set(streams[j])
                assert not overlap

    def test_derive_seed_sensitive_to_every_label(self):
        seed = derive_seed(99, "install-window", "app-0042")
        assert seed != derive_seed(99, "install-window", "app-0043")
        assert seed != derive_seed(98, "install-window", "app-0042")
        assert seed != derive_seed(99, "other-label", "app-0042")

    def test_standalone_rerun_reproduces_in_study_result(self, tiny_corpus):
        # Running one app alone on a fresh pipeline must reproduce the
        # result it got inside a full dataset sweep.
        pipeline = DynamicPipeline(tiny_corpus)
        in_study = pipeline.run_dataset("android", "popular")
        target = tiny_corpus.dataset("android", "popular")[-1]
        fresh = DynamicPipeline(tiny_corpus).run_app(target)
        matching = [r for r in in_study if r.app_id == target.app.app_id]
        assert len(matching) == 1
        assert fresh.pinned_destinations == matching[0].pinned_destinations
        assert [
            (f.sni, f.started_at, f.handshake_completed)
            for f in fresh.direct_capture
        ] == [
            (f.sni, f.started_at, f.handshake_completed)
            for f in matching[0].direct_capture
        ]
