"""Shared fixtures.

Corpus generation and full study runs are the expensive parts, so they
are session-scoped: one small corpus (≈6 % of paper scale) serves every
integration test deterministically.
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, CorpusGenerator
from repro.pki.authority import PKIHierarchy
from repro.pki.store import StoreCatalog
from repro.servers.registry import EndpointRegistry
from repro.util.rng import DeterministicRng

TEST_SEED = 2022
TEST_SCALE = 0.06


@pytest.fixture(scope="session")
def rng() -> DeterministicRng:
    return DeterministicRng(TEST_SEED)


@pytest.fixture(scope="session")
def hierarchy() -> PKIHierarchy:
    return PKIHierarchy(DeterministicRng(TEST_SEED).child("pki"))


@pytest.fixture(scope="session")
def stores(hierarchy) -> StoreCatalog:
    return StoreCatalog.build(hierarchy)


@pytest.fixture(scope="session")
def registry(hierarchy) -> EndpointRegistry:
    reg = EndpointRegistry(
        hierarchy, DeterministicRng(TEST_SEED).child("registry")
    )
    reg.create_default_pki_endpoint("api.example.com", "ExampleCo")
    reg.create_default_pki_endpoint("cdn.example.com", "ExampleCo", wildcard=True)
    reg.create_default_pki_endpoint("tracker.adnet.io", "AdNet")
    return reg


@pytest.fixture(scope="session")
def small_corpus():
    config = CorpusConfig(seed=TEST_SEED).scaled(TEST_SCALE)
    return CorpusGenerator(config).generate()


@pytest.fixture(scope="session")
def study_results(small_corpus):
    from repro.core.analysis import Study

    return Study(small_corpus).run()
