"""Tests for repro.appmodel.pinning and sdk."""

import pytest

from repro.appmodel.pinning import (
    PinForm,
    PinMechanism,
    PinningSpec,
    PinScope,
)
from repro.appmodel.sdk import sdk_by_name, sdks_for_platform
from repro.errors import AppModelError
from repro.pki.authority import PKIHierarchy
from repro.util.rng import DeterministicRng


@pytest.fixture(scope="module")
def issued():
    hierarchy = PKIHierarchy(DeterministicRng(81))
    return hierarchy.issue_leaf_chain(
        "spec.example.com", DeterministicRng(82), include_root=True
    )


class TestPinningSpec:
    def test_requires_domains(self):
        with pytest.raises(AppModelError):
            PinningSpec(domains=(), mechanism=PinMechanism.OKHTTP)

    def test_nsc_raw_form_coerced_to_spki(self):
        spec = PinningSpec(
            domains=("x.com",),
            mechanism=PinMechanism.NSC,
            form=PinForm.RAW_CERTIFICATE,
        )
        assert spec.form is PinForm.SPKI_SHA256

    def test_pick_certificate_by_scope(self, issued):
        chain = issued.chain
        for scope, expected in [
            (PinScope.LEAF, chain.leaf),
            (PinScope.INTERMEDIATE, chain.certificates[1]),
            (PinScope.ROOT, chain.terminal),
        ]:
            spec = PinningSpec(
                domains=("spec.example.com",),
                mechanism=PinMechanism.OKHTTP,
                scope=scope,
            )
            assert spec.pick_certificate(chain) is expected

    def test_pick_certificate_short_chain(self, issued):
        from repro.pki.chain import CertificateChain

        single = CertificateChain.of(issued.chain.leaf)
        spec = PinningSpec(
            domains=("spec.example.com",),
            mechanism=PinMechanism.OKHTTP,
            scope=PinScope.ROOT,
        )
        assert spec.pick_certificate(single) is issued.chain.leaf

    def test_resolve_spki(self, issued):
        spec = PinningSpec(
            domains=("spec.example.com",),
            mechanism=PinMechanism.OKHTTP,
            scope=PinScope.ROOT,
            form=PinForm.SPKI_SHA256,
        )
        resolved = spec.resolve_domain("spec.example.com", issued.chain)
        assert resolved.pin_strings[0].startswith("sha256/")
        assert resolved.pinned_cert_is_ca
        assert spec.is_resolved()

    def test_resolve_sha1(self, issued):
        spec = PinningSpec(
            domains=("spec.example.com",),
            mechanism=PinMechanism.OKHTTP,
            form=PinForm.SPKI_SHA1,
        )
        resolved = spec.resolve_domain("spec.example.com", issued.chain)
        assert resolved.pin_strings[0].startswith("sha1/")

    def test_resolve_raw_certificate(self, issued):
        spec = PinningSpec(
            domains=("spec.example.com",),
            mechanism=PinMechanism.CUSTOM_TLS,
            scope=PinScope.LEAF,
            form=PinForm.RAW_CERTIFICATE,
        )
        resolved = spec.resolve_domain("spec.example.com", issued.chain)
        assert "BEGIN CERTIFICATE" in resolved.pem
        assert resolved.fingerprints
        assert not resolved.pinned_cert_is_ca

    def test_default_pki_flag(self, issued):
        spec = PinningSpec(
            domains=("spec.example.com",), mechanism=PinMechanism.OKHTTP
        )
        resolved = spec.resolve_domain(
            "spec.example.com", issued.chain, default_pki=False
        )
        assert resolved.default_pki is False

    def test_dormant_and_obfuscated_flags(self):
        spec = PinningSpec(
            domains=("x.com",),
            mechanism=PinMechanism.OKHTTP,
            dormant=True,
            obfuscated=True,
        )
        assert not spec.active_at_runtime()
        assert not spec.visible_to_static()

    def test_mechanism_platforms(self):
        assert PinMechanism.NSC.platform == "android"
        assert PinMechanism.ALAMOFIRE.platform == "ios"
        assert PinMechanism.CUSTOM_TLS.platform is None


class TestSDKCatalog:
    def test_lookup(self):
        assert sdk_by_name("Twitter") is not None
        assert sdk_by_name("Nonexistent") is None

    def test_platform_filter(self):
        android = sdks_for_platform("android")
        assert all(s.available_on("android") for s in android)
        assert any(s.name == "Braintree" for s in android)
        assert not any(s.name == "Weibo" for s in android)

    def test_table7_anchors_present(self):
        for name in ("Twitter", "Braintree", "Paypal", "Perimeterx", "MParticle"):
            sdk = sdk_by_name(name)
            assert sdk is not None and sdk.pins
        for name in ("Amplitude", "Stripe", "Weibo", "FraudForce"):
            sdk = sdk_by_name(name)
            assert sdk is not None and sdk.pins and sdk.available_on("ios")

    def test_make_pinning_spec(self):
        twitter = sdk_by_name("Twitter")
        spec = twitter.make_pinning_spec("android")
        assert spec is not None
        assert spec.source == "Twitter"
        assert spec.code_path == twitter.code_path_android

    def test_make_pinning_spec_non_pinning_sdk(self):
        firebase = sdk_by_name("Firebase")
        assert firebase.make_pinning_spec("android") is None

    def test_cross_platform_mechanism_adaptation(self):
        amplitude = sdk_by_name("Amplitude")
        ios_spec = amplitude.make_pinning_spec("ios")
        android_spec = amplitude.make_pinning_spec("android")
        assert ios_spec.mechanism is PinMechanism.URLSESSION
        assert android_spec.mechanism is PinMechanism.OKHTTP

    def test_paypal_dormant_on_android(self):
        paypal = sdk_by_name("Paypal")
        assert paypal.dormant_on("android")
        assert not paypal.dormant_on("ios")

    def test_firestore_obfuscated_pins(self):
        firestore = sdk_by_name("Firestore")
        spec = firestore.make_pinning_spec("ios")
        assert spec.obfuscated
