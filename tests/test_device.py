"""Tests for repro.device: identifiers, devices, automation harness."""

import pytest

from repro.device import (
    APPLE_BACKGROUND_DOMAINS,
    AndroidDevice,
    AutomationHarness,
    DeviceIdentifiers,
    IOSDevice,
    RunConfig,
)
from repro.device.identifiers import PII_TYPES, placeholder
from repro.errors import DeviceError
from repro.netsim.proxy import MITMProxy
from repro.util.rng import DeterministicRng


class TestIdentifiers:
    def test_generation_deterministic(self):
        a = DeviceIdentifiers.generate(DeterministicRng(1))
        b = DeviceIdentifiers.generate(DeterministicRng(1))
        assert a == b

    def test_shapes(self):
        ids = DeviceIdentifiers.generate(DeterministicRng(2))
        assert len(ids.imei) == 15 and ids.imei.isdigit()
        assert ids.ad_id.count("-") == 4
        assert ids.mac.count(":") == 5
        assert "@" in ids.email

    def test_placeholder_roundtrip(self):
        ids = DeviceIdentifiers.generate(DeterministicRng(3))
        text = f"adid={placeholder('ad_id')}&mail={placeholder('email')}"
        substituted = ids.substitute(text)
        assert ids.ad_id in substituted
        assert ids.email in substituted
        assert "{{PII:" not in substituted

    def test_placeholder_unknown_type(self):
        with pytest.raises(ValueError):
            placeholder("ssn")

    def test_as_dict_covers_all_types(self):
        ids = DeviceIdentifiers.generate(DeterministicRng(4))
        assert set(ids.as_dict()) == set(PII_TYPES)


class TestDevices:
    def test_android_device_trusts_proxy(self, small_corpus):
        proxy = MITMProxy(DeterministicRng(5))
        device = AndroidDevice(
            small_corpus.stores.android_aosp,
            DeterministicRng(6),
            proxy_ca=proxy.ca_certificate,
        )
        assert device.trusts(proxy.ca_certificate)
        assert device.platform == "android"
        assert not device.jailbroken

    def test_ios_os_services_distrust_proxy(self, small_corpus):
        proxy = MITMProxy(DeterministicRng(5))
        device = IOSDevice(
            small_corpus.stores.ios,
            DeterministicRng(6),
            proxy_ca=proxy.ca_certificate,
        )
        assert device.trusts(proxy.ca_certificate)
        assert not device.os_services_store.trusts(proxy.ca_certificate)
        assert device.jailbroken

    def test_device_store_isolated_from_catalog(self, small_corpus):
        proxy = MITMProxy(DeterministicRng(5))
        AndroidDevice(
            small_corpus.stores.android_aosp,
            DeterministicRng(6),
            proxy_ca=proxy.ca_certificate,
        )
        assert not small_corpus.stores.android_aosp.trusts(proxy.ca_certificate)


@pytest.fixture()
def harnesses(small_corpus):
    rng = DeterministicRng(99)
    proxy = MITMProxy(rng.child("proxy"))
    android = AutomationHarness(
        AndroidDevice(
            small_corpus.stores.android_aosp,
            rng.child("pixel"),
            proxy_ca=proxy.ca_certificate,
        ),
        small_corpus.registry,
        proxy,
        rng.child("ha"),
    )
    ios = AutomationHarness(
        IOSDevice(
            small_corpus.stores.ios,
            rng.child("iphone"),
            proxy_ca=proxy.ca_certificate,
        ),
        small_corpus.registry,
        proxy,
        rng.child("hi"),
    )
    return android, ios


class TestAutomationHarness:
    def test_platform_mismatch_rejected(self, small_corpus, harnesses):
        android, _ = harnesses
        ios_app = small_corpus.dataset("ios", "popular")[0]
        with pytest.raises(DeviceError):
            android.run_app(ios_app, RunConfig())

    def test_capture_covers_window_only(self, small_corpus, harnesses):
        android, _ = harnesses
        packaged = small_corpus.dataset("android", "popular")[0]
        capture = android.run_app(packaged, RunConfig(sleep_s=30))
        in_window = {
            u.hostname
            for u in packaged.app.behavior.usages_within(30)
        }
        assert capture.destinations() <= in_window

    def test_longer_window_sees_more(self, small_corpus, harnesses):
        android, _ = harnesses
        counts = {15: 0, 60: 0}
        for packaged in small_corpus.dataset("android", "popular")[:10]:
            for window in counts:
                capture = android.run_app(packaged, RunConfig(sleep_s=window))
                counts[window] += len(capture)
        assert counts[60] >= counts[15]

    def test_pii_substituted_into_payloads(self, small_corpus, harnesses):
        android, _ = harnesses
        proxy_run = RunConfig(mitm=True, transient_failure_prob=0.0)
        found_pii = False
        for packaged in small_corpus.dataset("android", "popular")[:20]:
            capture = android.run_app(packaged, proxy_run)
            for flow in capture:
                if not flow.plaintext_visible:
                    continue
                for payload in flow.decrypted_payloads():
                    flat = payload.flattened()
                    assert "{{PII:" not in flat
                    if android.device.identifiers.ad_id in flat:
                        found_pii = True
        assert found_pii

    def test_ios_background_traffic_present(self, small_corpus, harnesses):
        _, ios = harnesses
        packaged = small_corpus.dataset("ios", "popular")[0]
        capture = ios.run_app(packaged, RunConfig())
        os_flows = [f for f in capture if f.os_initiated]
        assert os_flows
        apple = {f.sni for f in os_flows}
        from repro.servers.parties import registrable_domain

        assert any(
            registrable_domain(h) in APPLE_BACKGROUND_DOMAINS for h in apple
        )

    def test_ios_rerun_wait_skips_assoc_verification(self, small_corpus, harnesses):
        _, ios = harnesses
        with_assoc = [
            p
            for p in small_corpus.dataset("ios", "popular")
            if p.app.associated_domains
        ]
        assert with_assoc, "corpus should have apps with associated domains"
        packaged = with_assoc[0]
        normal = ios.run_app(packaged, RunConfig())
        waited = ios.run_app(packaged, RunConfig(pre_launch_wait_s=120))
        normal_assoc = {
            f.sni
            for f in normal
            if f.os_initiated and "icloud" not in f.sni and "apple" not in f.sni
            and "mzstatic" not in f.sni
        }
        waited_assoc = {
            f.sni
            for f in waited
            if f.os_initiated and "icloud" not in f.sni and "apple" not in f.sni
            and "mzstatic" not in f.sni
        }
        assert waited_assoc == set()
        # The normal run may or may not have resolvable associated hosts;
        # at minimum it is a superset.
        assert normal_assoc >= waited_assoc

    def test_android_has_no_os_traffic(self, small_corpus, harnesses):
        android, _ = harnesses
        packaged = small_corpus.dataset("android", "popular")[0]
        capture = android.run_app(packaged, RunConfig())
        assert not any(f.os_initiated for f in capture)

    def test_policy_override_used(self, small_corpus, harnesses):
        android, _ = harnesses
        pinners = [
            p
            for p in small_corpus.dataset("android", "popular")
            if p.app.pins_at_runtime()
        ]
        packaged = pinners[0]
        from repro.tls.policy import CompositePolicy, TrustAllPolicy

        override = CompositePolicy(default=TrustAllPolicy())
        capture = android.run_app(
            packaged,
            RunConfig(mitm=True, policy_override=override, transient_failure_prob=0.0),
        )
        pinned = packaged.app.runtime_pinned_domains()
        pinned_flows = [f for f in capture if f.sni in pinned]
        assert pinned_flows
        assert all(f.handshake_completed for f in pinned_flows)

    def test_per_app_timeline_is_order_independent(self, small_corpus, harnesses):
        # Flow timestamps derive from the app id, not from how many apps
        # ran before — the determinism contract of the parallel engine.
        android, _ = harnesses
        apps = small_corpus.dataset("android", "popular")[:2]
        first = android.run_app(apps[0], RunConfig())
        android.run_app(apps[1], RunConfig())  # unrelated run in between
        again = android.run_app(apps[0], RunConfig())
        assert [f.started_at for f in first] == [f.started_at for f in again]

    def test_install_times_spread_across_study_window(self, small_corpus, harnesses):
        from repro.device.automation import STUDY_WINDOW_DAYS

        android, _ = harnesses
        anchors = {
            android._install_time(p.app.app_id).unix
            for p in small_corpus.dataset("android", "popular")
        }
        assert len(anchors) > 1  # apps do not all share one timestamp
        window_s = STUDY_WINDOW_DAYS * 86_400
        assert all(
            0 <= unix - android._epoch.unix < window_s for unix in anchors
        )
