"""Tests for Frida-style circumvention."""

import pytest

from repro.core.circumvent import (
    CircumventionPipeline,
    FridaSession,
    HOOK_CATALOG,
    is_hookable,
)
from repro.core.dynamic import DynamicPipeline
from repro.device.ios import IOSDevice
from repro.errors import InstrumentationError
from repro.tls.policy import (
    CompositePolicy,
    SpkiPinPolicy,
    SystemValidationPolicy,
    TrustAllPolicy,
)
from repro.util.rng import DeterministicRng


class TestHookCatalog:
    def test_okhttp_hookable_on_android(self):
        assert is_hookable("okhttp", "android")
        assert not is_hookable("okhttp", "ios")

    def test_trustkit_hookable_on_ios(self):
        assert is_hookable("trustkit", "ios")

    def test_custom_tls_never_hookable(self):
        assert not is_hookable("custom_tls", "android")
        assert not is_hookable("custom_tls", "ios")

    def test_catalog_entries_have_entry_points(self):
        assert all(h.entry_point for h in HOOK_CATALOG)


class TestFridaSession:
    def test_requires_jailbreak_on_ios(self, small_corpus):
        device = IOSDevice(
            small_corpus.stores.ios, DeterministicRng(1), jailbroken=False
        )
        with pytest.raises(InstrumentationError):
            FridaSession(device)

    def _pin_policy(self, small_corpus, library):
        store = small_corpus.stores.android_aosp
        base = SystemValidationPolicy(store, library="conscrypt")
        endpoint = next(iter(small_corpus.registry))
        pin = SpkiPinPolicy(
            [endpoint.chain.leaf.spki_pin()], base=base, library=library
        )
        return CompositePolicy(default=base, overrides={"pinned.com": pin})

    def test_hookable_pin_bypassed(self, small_corpus):
        from repro.device.android import AndroidDevice

        device = AndroidDevice(small_corpus.stores.android_aosp, DeterministicRng(2))
        session = FridaSession(device)
        outcome = session.instrument(self._pin_policy(small_corpus, "okhttp"))
        assert outcome.bypassed_domains == {"pinned.com"}
        assert isinstance(
            outcome.patched_policy.policy_for("pinned.com"), TrustAllPolicy
        )
        assert outcome.bypass_rate() == 1.0

    def test_custom_tls_resists(self, small_corpus):
        from repro.device.android import AndroidDevice

        device = AndroidDevice(small_corpus.stores.android_aosp, DeterministicRng(2))
        session = FridaSession(device)
        outcome = session.instrument(self._pin_policy(small_corpus, "custom_tls"))
        assert outcome.resistant_domains == {"pinned.com"}
        assert outcome.bypass_rate() == 0.0

    def test_default_policy_also_neutralised(self, small_corpus):
        from repro.device.android import AndroidDevice

        device = AndroidDevice(small_corpus.stores.android_aosp, DeterministicRng(2))
        outcome = FridaSession(device).instrument(
            self._pin_policy(small_corpus, "okhttp")
        )
        assert isinstance(outcome.patched_policy.default, TrustAllPolicy)


@pytest.fixture(scope="module")
def circumvention(small_corpus):
    dynamic = DynamicPipeline(small_corpus)
    pipeline = CircumventionPipeline(dynamic)
    results = {}
    for key in [
        ("android", "popular"),
        ("ios", "popular"),
        ("android", "common"),
        ("ios", "common"),
    ]:
        apps = small_corpus.dataset(*key)
        dyn = [dynamic.run_app(p) for p in apps]
        results[key] = pipeline.circumvent_dataset(apps, dyn)
    return results


class TestCircumventionPipeline:
    def test_only_pinning_apps_processed(self, small_corpus, circumvention):
        for key, circ_results in circumvention.items():
            pinner_count = sum(
                1
                for p in small_corpus.dataset(*key)
                if p.app.pins_at_runtime()
            )
            assert len(circ_results) <= pinner_count

    def test_partition_of_pinned_destinations(self, circumvention):
        for circ_results in circumvention.values():
            for result in circ_results:
                assert not (
                    result.bypassed_destinations & result.resistant_destinations
                )

    def test_bypassed_traffic_decrypts(self, circumvention):
        some_decrypted = False
        for circ_results in circumvention.values():
            for result in circ_results:
                flows = result.decrypted_pinned_flows()
                if flows:
                    some_decrypted = True
                    assert all(f.plaintext_visible for f in flows)
        assert some_decrypted

    def test_custom_tls_apps_resist(self, small_corpus, circumvention):
        from repro.appmodel.pinning import PinMechanism

        by_id = {p.app.app_id: p for p in small_corpus.all_apps()}
        for circ_results in circumvention.values():
            for result in circ_results:
                app = by_id[result.app_id].app
                for spec in app.active_specs():
                    if spec.mechanism is PinMechanism.CUSTOM_TLS:
                        for domain in spec.domains:
                            if domain in result.bypassed_destinations:
                                pytest.fail(
                                    f"custom-TLS pin {domain} was bypassed"
                                )

    def test_aggregate_bypass_rate_in_range(self, circumvention):
        all_results = [r for rs in circumvention.values() for r in rs]
        rate = CircumventionPipeline.destination_bypass_rate(all_results)
        assert 0.0 < rate < 1.0
