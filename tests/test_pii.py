"""Tests for PII detection and the pinned/non-pinned comparison."""

import pytest

from repro.core.pii import PIIDetector, compare_pii_prevalence
from repro.device.identifiers import DeviceIdentifiers
from repro.errors import AnalysisError
from repro.netsim.flow import FlowRecord, Payload
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START


@pytest.fixture
def identifiers():
    return DeviceIdentifiers.generate(DeterministicRng(111))


def decrypted_flow(sni, fields):
    return FlowRecord(
        sni=sni,
        started_at=STUDY_START,
        plaintext_visible=True,
        _payloads=(Payload(fields=tuple(fields)),),
    )


class TestPIIDetector:
    def test_finds_ad_id(self, identifiers):
        detector = PIIDetector(identifiers)
        flow = decrypted_flow("x.com", [("idfa", identifiers.ad_id)])
        hits = detector.scan_flow(flow)
        assert [h.pii_type for h in hits] == ["ad_id"]
        assert hits[0].field_key == "idfa"

    def test_finds_value_embedded_in_larger_string(self, identifiers):
        detector = PIIDetector(identifiers)
        flow = decrypted_flow(
            "x.com", [("blob", f"prefix-{identifiers.email}-suffix")]
        )
        assert detector.flow_pii_types(flow) == {"email"}

    def test_multiple_types(self, identifiers):
        detector = PIIDetector(identifiers)
        flow = decrypted_flow(
            "x.com",
            [("a", identifiers.imei), ("b", identifiers.city), ("c", "benign")],
        )
        assert detector.flow_pii_types(flow) == {"imei", "city"}

    def test_clean_flow(self, identifiers):
        detector = PIIDetector(identifiers)
        flow = decrypted_flow("x.com", [("k", "v")])
        assert detector.scan_flow(flow) == []

    def test_encrypted_flow_rejected(self, identifiers):
        detector = PIIDetector(identifiers)
        flow = FlowRecord(sni="x.com", started_at=STUDY_START)
        with pytest.raises(AnalysisError):
            detector.scan_flow(flow)

    def test_prevalence(self, identifiers):
        detector = PIIDetector(identifiers)
        flows = [
            decrypted_flow("a.com", [("id", identifiers.ad_id)]),
            decrypted_flow("b.com", [("k", "v")]),
        ]
        prevalence = detector.prevalence(flows)
        assert prevalence["ad_id"] == 0.5
        assert prevalence["email"] == 0.0

    def test_prevalence_empty(self, identifiers):
        assert PIIDetector(identifiers).prevalence([])["ad_id"] == 0.0


class TestComparison:
    def test_rates_and_significance(self, identifiers):
        detector = PIIDetector(identifiers)
        pinned = [
            decrypted_flow("p.com", [("id", identifiers.ad_id)])
            for _ in range(80)
        ] + [decrypted_flow("p.com", [("k", "v")]) for _ in range(20)]
        non_pinned = [
            decrypted_flow("n.com", [("id", identifiers.ad_id)])
            for _ in range(20)
        ] + [decrypted_flow("n.com", [("k", "v")]) for _ in range(80)]
        comparison = compare_pii_prevalence(
            "android", detector, pinned, non_pinned
        )
        row = comparison.row("ad_id")
        assert row.pinned_rate == pytest.approx(0.8)
        assert row.non_pinned_rate == pytest.approx(0.2)
        assert row.significant

    def test_equal_rates_not_significant(self, identifiers):
        detector = PIIDetector(identifiers)
        flows = [
            decrypted_flow("x.com", [("id", identifiers.ad_id)])
            for _ in range(50)
        ] + [decrypted_flow("x.com", [("k", "v")]) for _ in range(50)]
        comparison = compare_pii_prevalence("ios", detector, flows, list(flows))
        assert not comparison.row("ad_id").significant

    def test_absent_type_has_no_test(self, identifiers):
        detector = PIIDetector(identifiers)
        flows = [decrypted_flow("x.com", [("k", "v")])]
        comparison = compare_pii_prevalence("ios", detector, flows, flows)
        assert comparison.row("mac").chi_square is None

    def test_unknown_type_raises(self, identifiers):
        detector = PIIDetector(identifiers)
        comparison = compare_pii_prevalence("ios", detector, [], [])
        with pytest.raises(KeyError):
            comparison.row("ssn")

    def test_undecrypted_flows_skipped(self, identifiers):
        detector = PIIDetector(identifiers)
        encrypted = FlowRecord(sni="x.com", started_at=STUDY_START)
        comparison = compare_pii_prevalence(
            "ios", detector, [encrypted], [encrypted]
        )
        assert comparison.row("ad_id").pinned_total == 0
