"""Instrumentation must never perturb results, and counters must be true.

The contract under test: ``Study.run(recorder=...)`` produces bit-for-bit
the same results as an uninstrumented run, for any worker count, while
the recorder's counters agree with independently observable quantities
(the error ledger, known cache workloads, journal replays).
"""

import pytest

from repro.core import obs
from repro.core.analysis import Study
from repro.core.exec import ExecutionPlan, SeededFaults
from repro.corpus import CorpusConfig, CorpusGenerator

TELEMETRY_SCALE = 0.03


@pytest.fixture(scope="module")
def tiny_corpus():
    config = CorpusConfig(seed=2022).scaled(TELEMETRY_SCALE)
    return CorpusGenerator(config).generate()


@pytest.fixture(scope="module")
def plain_results(tiny_corpus):
    return Study(tiny_corpus).run()


def _fingerprint(results):
    """A rendering-level digest of the study output, sensitive to any
    change in the numbers the paper's tables report."""
    parts = [
        results.table3().render(),
        results.table6().render(),
        results.table8().render(),
        results.figure2().render(),
        f"{results.circumvention_rate('android'):.9f}",
        f"{results.circumvention_rate('ios'):.9f}",
        str(len(results.failures)),
    ]
    return "\n".join(parts)


class TestResultParity:
    def test_instrumented_serial_matches_plain(self, tiny_corpus, plain_results):
        recorder = obs.Recorder()
        recorded = Study(tiny_corpus).run(recorder=recorder)
        assert _fingerprint(recorded) == _fingerprint(plain_results)
        assert recorded.telemetry is recorder
        assert plain_results.telemetry is None
        assert recorder.counter_value("exec.units.completed") > 0
        # Telemetry is deactivated once the run returns.
        assert obs.get_recorder() is None

    def test_instrumented_parallel_matches_plain(
        self, tiny_corpus, plain_results
    ):
        recorder = obs.Recorder()
        recorded = Study(tiny_corpus, plan=ExecutionPlan(workers=2)).run(
            recorder=recorder
        )
        assert _fingerprint(recorded) == _fingerprint(plain_results)
        names = {span.name for span in recorder.spans()}
        # Worker spans crossed the process boundary and were merged.
        assert "unit.dynamic" in names
        assert "dynamic.app" in names
        assert "phase.static_dynamic" in names
        # Workers observed per-unit wall/queue accounting.
        histograms = recorder.metrics()["histograms"]
        assert histograms["exec.unit_wall_s"]["count"] > 0
        assert histograms["exec.unit_queue_wait_s"]["min"] >= 0

    def test_phase_spans_cover_pipeline_spans(self, tiny_corpus):
        recorder = obs.Recorder()
        Study(tiny_corpus).run(recorder=recorder)
        spans = recorder.spans()
        phases = [
            span for span in spans if span.name.startswith("phase.")
        ]
        assert {span.name for span in phases} >= {
            "phase.static_dynamic",
            "phase.ios_rerun",
            "phase.circumvention",
            "phase.pii",
        }
        app_spans = [
            span
            for span in spans
            if span.name in ("static.app", "dynamic.app")
        ]
        assert app_spans
        # Serial runs happen in-process: every app span nests inside one
        # of the phases (initial passes or the Common-iOS re-run).
        for span in app_spans:
            parent = next(
                (
                    phase
                    for phase in phases
                    if phase.start <= span.start and span.end <= phase.end
                ),
                None,
            )
            assert parent is not None, span.name
            assert span.depth > parent.depth


class TestCounterAccuracy:
    def test_fault_counters_match_ledger(self, tiny_corpus):
        recorder = obs.Recorder()
        results = Study(
            tiny_corpus,
            plan=ExecutionPlan(workers=1, chunk_size=8, max_retries=1),
            fault_predicate=SeededFaults(0.05, seed=3),
        ).run(recorder=recorder)
        assert results.failures  # the workload must actually fault
        assert recorder.counter_value("exec.apps.abandoned") == len(
            results.failures
        )
        assert recorder.counter_value("exec.faults.injected") > 0
        assert recorder.counter_value("exec.faults.unexpected") == 0
        assert recorder.counter_value("exec.retry.attempts") > 0
        # Persistent faults in multi-app chunks must trigger quarantine.
        assert recorder.counter_value("exec.units.quarantined") > 0

    def test_journal_counters_on_resume(self, tiny_corpus, tmp_path):
        journal = tmp_path / "study.ckpt"
        first = Study(tiny_corpus).run(resume=str(journal))
        recorder = obs.Recorder()
        second = Study(tiny_corpus).run(resume=str(journal), recorder=recorder)
        assert _fingerprint(second) == _fingerprint(first)
        # Everything was journaled, so the resumed run replays all units.
        assert recorder.counter_value("journal.units.skipped") > 0
        assert recorder.counter_value("exec.units.completed") == 0
        assert recorder.counter_value("journal.records.recovered") > 0

    def test_ctlog_search_cache_counters(self):
        from repro.pki.authority import PKIHierarchy
        from repro.pki.ctlog import CTLog
        from repro.util.rng import DeterministicRng

        hierarchy = PKIHierarchy(DeterministicRng(11))
        issued = hierarchy.issue_leaf_chain(
            "cache.example.com", DeterministicRng(12)
        )
        log = CTLog()
        log.log_chain(issued.chain)
        digest = issued.chain.leaf.spki_pin().split("/", 1)[1]
        recorder = obs.Recorder().install()
        try:
            for _ in range(3):
                assert log.search_spki(digest)
            assert recorder.counter_value("cache.ctlog_search.miss") == 1
            assert recorder.counter_value("cache.ctlog_search.hit") == 2
        finally:
            recorder.uninstall()

    def test_spki_lru_cache_counters(self):
        from repro.pki.keys import KeyPair
        from repro.util.rng import DeterministicRng

        # A distinctive seed so no other test has warmed this entry.
        key = KeyPair.generate(DeterministicRng(987_654_321))
        recorder = obs.Recorder().install()
        try:
            for _ in range(5):
                key.spki_sha256()
            recorder.collect_caches()
            assert recorder.counter_value("cache.spki_digest.miss") == 1
            assert recorder.counter_value("cache.spki_digest.hit") == 4
        finally:
            recorder.uninstall()

    def test_validate_chain_cache_counters(self):
        from repro.pki.authority import PKIHierarchy
        from repro.pki.store import StoreCatalog
        from repro.pki.validation import ValidationContext, validate_chain
        from repro.util.rng import DeterministicRng
        from repro.util.simtime import STUDY_START

        hierarchy = PKIHierarchy(DeterministicRng(21))
        catalog = StoreCatalog.build(hierarchy)
        issued = hierarchy.issue_leaf_chain(
            "pin.example.com", DeterministicRng(22)
        )
        ctx = ValidationContext(
            store=catalog.mozilla,
            hostname="pin.example.com",
            at_time=STUDY_START,
        )
        recorder = obs.Recorder().install()
        try:
            for _ in range(4):
                validate_chain(issued.chain, ctx)
            assert recorder.counter_value("cache.validate_chain.miss") == 1
            assert recorder.counter_value("cache.validate_chain.hit") == 3
        finally:
            recorder.uninstall()


class TestSurface:
    def test_telemetry_table(self, tiny_corpus):
        recorder = obs.Recorder()
        results = Study(tiny_corpus).run(recorder=recorder)
        rendered = results.telemetry_table().render()
        assert "exec.units.completed" in rendered
        assert "span.phase.static_dynamic" in rendered

    def test_telemetry_table_none_when_uninstrumented(self, plain_results):
        assert plain_results.telemetry_table() is None
