"""The incremental-run tooling: diff_runs, check_store_hits,
check_bench_regression.

These scripts gate CI, so they are tested like library code: loaded from
``tools/`` by path (they are stdlib-only and not installed as a package)
and driven through their ``main(argv)`` entry points.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.core.exec.resultstore import ResultStore
from repro.corpus import CorpusConfig, CorpusGenerator

TOOLS = Path(__file__).resolve().parents[1] / "tools"


def load_tool(name):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


diff_runs = load_tool("diff_runs")
check_store_hits = load_tool("check_store_hits")
check_bench_regression = load_tool("check_bench_regression")
diff_sweep_reports = load_tool("diff_sweep_reports")


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(CorpusConfig(seed=1337).scaled(0.015)).generate()


class FakeDynamicResult:
    """Picklable dynamic-result stand-in with a pinned verdict."""

    def __init__(self, app_id, pinned=()):
        self.app_id = app_id
        self.pinned_destinations = set(pinned)

    def pins(self):
        return bool(self.pinned_destinations)


def populate(store, corpus, flip_app=None):
    """Publish a dynamic entry for the first few Android-popular apps.

    ``flip_app`` (an index) gets a different pinned verdict — the one
    perturbed app the diff must name.
    """
    apps = corpus.dataset("android", "popular")[:5]
    for position, packaged in enumerate(apps):
        app_id = packaged.app.app_id
        pinned = {"api.example.com"} if position % 2 else set()
        if position == flip_app:
            pinned = {"api.changed.example"}
        store.publish_app(
            "dynamic",
            "android",
            "popular",
            app_id,
            0.0,
            FakeDynamicResult(app_id, pinned),
        )
    return [p.app.app_id for p in apps]


class TestDiffRuns:
    def test_identical_stores(self, corpus, tmp_path, capsys):
        a = ResultStore(tmp_path / "a", corpus)
        b = ResultStore(tmp_path / "b", corpus)
        populate(a, corpus)
        populate(b, corpus)
        assert diff_runs.main([str(tmp_path / "a"), str(tmp_path / "b")]) == 0
        assert "identical" in capsys.readouterr().out

    def test_one_perturbed_app_named_exactly(self, corpus, tmp_path, capsys):
        a = ResultStore(tmp_path / "a", corpus)
        b = ResultStore(tmp_path / "b", corpus)
        app_ids = populate(a, corpus)
        populate(b, corpus, flip_app=0)
        exit_code = diff_runs.main(
            [str(tmp_path / "a"), str(tmp_path / "b"), "--json"]
        )
        assert exit_code == 1
        report = json.loads(capsys.readouterr().out)
        flips = report["pinned_flips"]
        assert [f["app_id"] for f in flips] == [app_ids[0]]
        assert flips[0]["before"]["pinned"] is False
        assert flips[0]["after"]["pinned"] is True
        assert flips[0]["destinations_gained"] == ["api.changed.example"]
        assert report["only_in_a"] == report["only_in_b"] == []

    def test_missing_app_reported_one_sided(self, corpus, tmp_path, capsys):
        a = ResultStore(tmp_path / "a", corpus)
        b = ResultStore(tmp_path / "b", corpus)
        app_ids = populate(a, corpus)
        populate(b, corpus)
        dropped = app_ids[2]
        fp = a.fingerprint_for("dynamic", "android", "popular", dropped, 0.0)
        b.entry_path(fp).unlink()
        assert diff_runs.main([str(tmp_path / "a"), str(tmp_path / "b")]) == 1
        out = capsys.readouterr().out
        assert dropped in out and "only in A" in out

    def test_rerun_wait_wins_the_verdict(self, corpus, tmp_path, capsys):
        """An app with initial + re-run entries is judged by the re-run."""
        a = ResultStore(tmp_path / "a", corpus)
        b = ResultStore(tmp_path / "b", corpus)
        app_id = populate(a, corpus)[0]
        populate(b, corpus)
        for store in (a, b):
            store.publish_app(
                "dynamic",
                "android",
                "popular",
                app_id,
                120.0,
                FakeDynamicResult(app_id, {"late.example.com"}),
            )
        # Initial entries for app 0 agree; re-runs agree: no flip.
        assert diff_runs.main([str(tmp_path / "a"), str(tmp_path / "b")]) == 0
        capsys.readouterr()

    def test_not_a_store_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            diff_runs.main([str(tmp_path), str(tmp_path)])


def write_metrics(path, hits, misses):
    path.write_text(
        json.dumps(
            {
                "counters": {
                    "store.units.hit": hits,
                    "store.units.miss": misses,
                }
            }
        )
    )


class TestCheckStoreHits:
    def test_warm_run_passes(self, tmp_path):
        write_metrics(tmp_path / "m.json", hits=20, misses=0)
        assert (
            check_store_hits.main(
                [str(tmp_path / "m.json"), "--min-hit-rate", "0.95"]
            )
            == 0
        )

    def test_low_hit_rate_fails(self, tmp_path):
        write_metrics(tmp_path / "m.json", hits=10, misses=10)
        assert (
            check_store_hits.main(
                [str(tmp_path / "m.json"), "--min-hit-rate", "0.95"]
            )
            == 1
        )

    def test_no_lookups_fails_the_rate_check(self, tmp_path):
        write_metrics(tmp_path / "m.json", hits=0, misses=0)
        assert (
            check_store_hits.main(
                [str(tmp_path / "m.json"), "--min-hit-rate", "0.95"]
            )
            == 1
        )

    def test_invalidation_expects_no_hits(self, tmp_path):
        write_metrics(tmp_path / "m.json", hits=0, misses=17)
        assert (
            check_store_hits.main(
                [str(tmp_path / "m.json"), "--expect-no-hits"]
            )
            == 0
        )
        write_metrics(tmp_path / "m.json", hits=1, misses=16)
        assert (
            check_store_hits.main(
                [str(tmp_path / "m.json"), "--expect-no-hits"]
            )
            == 1
        )

    def test_malformed_metrics(self, tmp_path):
        (tmp_path / "m.json").write_text("not json")
        assert (
            check_store_hits.main(
                [str(tmp_path / "m.json"), "--min-hit-rate", "0.5"]
            )
            == 2
        )


def write_bench(path, static_mean, dynamic_mean):
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {
                        "name": "test_static_scan_per_app",
                        "stats": {"mean": static_mean},
                    },
                    {
                        "name": "test_dynamic_run_per_app",
                        "stats": {"mean": dynamic_mean},
                    },
                ]
            }
        )
    )


class TestCheckBenchRegression:
    BASELINE = Path(__file__).resolve().parents[1] / "BENCH_study.json"

    def test_at_baseline_passes(self, tmp_path):
        baseline = json.loads(self.BASELINE.read_text())
        write_bench(
            tmp_path / "b.json",
            1.0 / baseline["serial"]["static_apps_per_s"],
            1.0 / baseline["serial"]["dynamic_apps_per_s"],
        )
        assert (
            check_bench_regression.main(
                [str(tmp_path / "b.json"), str(self.BASELINE)]
            )
            == 0
        )

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        baseline = json.loads(self.BASELINE.read_text())
        write_bench(
            tmp_path / "b.json",
            2.0 / baseline["serial"]["static_apps_per_s"],  # 2x slower
            1.0 / baseline["serial"]["dynamic_apps_per_s"],
        )
        assert (
            check_bench_regression.main(
                [str(tmp_path / "b.json"), str(self.BASELINE), "--tolerance", "0.30"]
            )
            == 1
        )

    def test_within_tolerance_passes(self, tmp_path):
        baseline = json.loads(self.BASELINE.read_text())
        write_bench(
            tmp_path / "b.json",
            1.2 / baseline["serial"]["static_apps_per_s"],  # 17% slower
            1.2 / baseline["serial"]["dynamic_apps_per_s"],
        )
        assert (
            check_bench_regression.main(
                [str(tmp_path / "b.json"), str(self.BASELINE), "--tolerance", "0.30"]
            )
            == 0
        )

    def test_empty_bench_rejected(self, tmp_path):
        (tmp_path / "b.json").write_text(json.dumps({"benchmarks": []}))
        assert (
            check_bench_regression.main(
                [str(tmp_path / "b.json"), str(self.BASELINE)]
            )
            == 2
        )


def write_overhead(path, **overrides):
    doc = {
        "corpus_bootstrap_bytes": 250,
        "full_corpus_pickle_bytes": 2_250_000,
        "corpus_bytes_reduction": 9000.0,
        "ipc_bytes_out": 2200,
        "ipc_bytes_in": 1_500_000,
        "worker_init_s_mean": 0.0003,
        "payload_static_plain_bytes": 4200,
        "payload_static_encoded_bytes": 2400,
        "payload_dynamic_plain_bytes": 98_000,
        "payload_dynamic_encoded_bytes": 46_000,
    }
    doc.update(overrides)
    doc = {k: v for k, v in doc.items() if v is not None}
    path.write_text(json.dumps(doc))
    return path


class TestCheckBenchOverhead:
    BASELINE = Path(__file__).resolve().parents[1] / "BENCH_study.json"

    def _run(self, tmp_path, overhead_path):
        baseline = json.loads(self.BASELINE.read_text())
        write_bench(
            tmp_path / "b.json",
            1.0 / baseline["serial"]["static_apps_per_s"],
            1.0 / baseline["serial"]["dynamic_apps_per_s"],
        )
        return check_bench_regression.main(
            [
                str(tmp_path / "b.json"),
                str(self.BASELINE),
                "--overhead",
                str(overhead_path),
            ]
        )

    def test_healthy_overhead_passes(self, tmp_path):
        path = write_overhead(tmp_path / "o.json")
        assert self._run(tmp_path, path) == 0

    def test_checked_in_baseline_overhead_section_passes(self, tmp_path):
        # BENCH_study.json itself carries an overhead section the gate
        # must accept — the benchmark that regenerates it asserts the
        # same bounds.
        assert self._run(tmp_path, self.BASELINE) == 0

    def test_low_corpus_reduction_fails(self, tmp_path):
        path = write_overhead(
            tmp_path / "o.json", corpus_bytes_reduction=4.0
        )
        assert self._run(tmp_path, path) == 1

    def test_grown_payload_fails(self, tmp_path):
        path = write_overhead(
            tmp_path / "o.json",
            payload_dynamic_encoded_bytes=99_000,
        )
        assert self._run(tmp_path, path) == 1

    def test_zero_ipc_counter_fails(self, tmp_path):
        path = write_overhead(tmp_path / "o.json", ipc_bytes_in=0)
        assert self._run(tmp_path, path) == 1

    def test_missing_bootstrap_fields_fail(self, tmp_path):
        path = write_overhead(
            tmp_path / "o.json",
            corpus_bootstrap_bytes=None,
            corpus_bytes_reduction=None,
        )
        assert self._run(tmp_path, path) == 1

    def test_unreadable_overhead_is_input_error(self, tmp_path):
        assert self._run(tmp_path, tmp_path / "missing.json") == 2


class TestDiffSweepReports:
    """The service smoke job's sweep comparison: findings must match,
    run-volatile fields (elapsed seconds, store tallies) must not."""

    @staticmethod
    def _report(elapsed=1.0, store=None, finding=0.5):
        return {
            "points": [
                {
                    "config": {"seed": 2022, "scale": 0.05},
                    "findings": {"table3.android.pinned_pct": finding},
                    "failures": 0,
                    "elapsed_s": elapsed,
                    "store": store,
                }
            ]
        }

    def _run(self, tmp_path, baseline, candidate):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(baseline))
        b.write_text(json.dumps(candidate))
        return diff_sweep_reports.main([str(a), str(b)])

    def test_volatile_differences_are_masked(self, tmp_path, capsys):
        baseline = self._report(elapsed=1.0, store={"hits": 0, "misses": 9})
        candidate = self._report(elapsed=9.9, store=None)
        assert self._run(tmp_path, baseline, candidate) == 0

    def test_finding_differences_are_reported(self, tmp_path, capsys):
        assert (
            self._run(
                tmp_path, self._report(finding=0.5), self._report(finding=0.6)
            )
            == 1
        )
        assert "findings" in capsys.readouterr().out

    def test_shape_differences_are_reported(self, tmp_path, capsys):
        candidate = self._report()
        candidate["points"].append(candidate["points"][0])
        assert self._run(tmp_path, self._report(), candidate) == 1

    def test_missing_file_is_input_error(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(self._report()))
        assert diff_sweep_reports.main([str(a), str(tmp_path / "nope.json")]) == 2
