"""Tests for repro.util.encoding."""

import pytest

from repro.errors import EncodingError
from repro.util import encoding


class TestDigests:
    def test_sha256_hex_known_value(self):
        assert encoding.sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_sha1_hex_known_value(self):
        assert encoding.sha1_hex(b"") == (
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        )

    def test_hexdigest_dispatch(self):
        assert encoding.hexdigest(b"x", "sha256") == encoding.sha256_hex(b"x")
        assert encoding.hexdigest(b"x", "sha1") == encoding.sha1_hex(b"x")

    def test_hexdigest_unknown_algorithm(self):
        with pytest.raises(EncodingError):
            encoding.hexdigest(b"x", "md5")


class TestBase64:
    def test_roundtrip(self):
        data = bytes(range(64))
        assert encoding.b64decode(encoding.b64encode(data)) == data

    def test_nopad_strips_padding(self):
        assert not encoding.b64encode_nopad(b"ab").endswith("=")

    def test_decode_tolerates_missing_padding(self):
        data = b"abcde"
        padded = encoding.b64encode(data)
        stripped = padded.rstrip("=")
        assert encoding.b64decode(stripped) == data

    def test_decode_rejects_garbage(self):
        with pytest.raises(EncodingError):
            encoding.b64decode("!!not base64!!")

    def test_looks_like_base64(self):
        assert encoding.looks_like_base64("QUJD")
        assert encoding.looks_like_base64("QUJD==")
        assert not encoding.looks_like_base64("")
        assert not encoding.looks_like_base64("has space")


class TestPEM:
    def test_wrap_unwrap_roundtrip(self):
        der = b"certificate-bytes" * 10
        pem = encoding.pem_wrap(der)
        assert pem.startswith("-----BEGIN CERTIFICATE-----")
        assert pem.endswith("-----END CERTIFICATE-----")
        assert encoding.pem_unwrap(pem) == [der]

    def test_unwrap_multiple_blocks(self):
        pem = encoding.pem_wrap(b"one") + "\n" + encoding.pem_wrap(b"two")
        assert encoding.pem_unwrap(pem) == [b"one", b"two"]

    def test_unwrap_ignores_other_labels(self):
        pem = encoding.pem_wrap(b"key", label="PUBLIC KEY")
        assert encoding.pem_unwrap(pem) == []
        assert encoding.pem_unwrap(pem, label="PUBLIC KEY") == [b"key"]

    def test_unterminated_block_raises(self):
        with pytest.raises(EncodingError):
            encoding.pem_unwrap("-----BEGIN CERTIFICATE-----\nQUJD\n")

    def test_wrap_line_width(self):
        pem = encoding.pem_wrap(b"x" * 200, width=64)
        body_lines = pem.splitlines()[1:-1]
        assert all(len(line) <= 64 for line in body_lines)

    def test_contains_pem_delimiter(self):
        assert encoding.contains_pem_delimiter(
            "prefix -----BEGIN CERTIFICATE----- suffix"
        )
        assert not encoding.contains_pem_delimiter("nothing here")


class TestB64DecodeExceptionContract:
    def test_invalid_payload_raises_encoding_error(self):
        with pytest.raises(EncodingError):
            encoding.b64decode("!!!not-base64!!!")

    def test_caller_type_bug_propagates(self):
        # Passing bytes is a programming error, not malformed input —
        # the narrowed handler must let it surface as TypeError instead
        # of mislabelling it "invalid base64 payload".
        with pytest.raises(TypeError):
            encoding.b64decode(b"QUJD")

    def test_none_propagates(self):
        with pytest.raises(TypeError):
            encoding.b64decode(None)
