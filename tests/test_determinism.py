"""Determinism: the whole measurement is a pure function of the seed."""

import pytest

from repro.core.analysis import Study
from repro.corpus import CorpusConfig, CorpusGenerator


@pytest.fixture(scope="module")
def twin_results():
    config = CorpusConfig(seed=424242).scaled(0.015)
    results = []
    for _ in range(2):
        corpus = CorpusGenerator(config).generate()
        results.append(Study(corpus).run())
    return results


class TestStudyDeterminism:
    def test_dynamic_verdicts_identical(self, twin_results):
        a, b = twin_results
        for key in a.dynamic_results:
            pins_a = {
                r.app_id: sorted(r.pinned_destinations)
                for r in a.dynamic_results[key]
            }
            pins_b = {
                r.app_id: sorted(r.pinned_destinations)
                for r in b.dynamic_results[key]
            }
            assert pins_a == pins_b

    def test_static_findings_identical(self, twin_results):
        a, b = twin_results
        for key in a.static_reports:
            pins_a = [sorted(r.all_pin_strings()) for r in a.static_reports[key]]
            pins_b = [sorted(r.all_pin_strings()) for r in b.static_reports[key]]
            assert pins_a == pins_b

    def test_tables_render_identically(self, twin_results):
        a, b = twin_results
        assert a.table3().render() == b.table3().render()
        assert a.table8().render() == b.table8().render()
        assert a.figure2().render() == b.figure2().render()

    def test_circumvention_identical(self, twin_results):
        a, b = twin_results
        for platform in ("android", "ios"):
            assert a.circumvention_rate(platform) == b.circumvention_rate(
                platform
            )

    def test_pii_tables_identical(self, twin_results):
        a, b = twin_results
        assert a.table9().render() == b.table9().render()


class TestHarnessDeterminism:
    def test_same_app_same_run_twice(self, small_corpus):
        from repro.core.dynamic import DynamicPipeline

        packaged = small_corpus.dataset("android", "popular")[0]
        first = DynamicPipeline(small_corpus).run_app(packaged)
        second = DynamicPipeline(small_corpus).run_app(packaged)
        assert first.pinned_destinations == second.pinned_destinations
        assert len(first.direct_capture) == len(second.direct_capture)
        for f1, f2 in zip(first.direct_capture, second.direct_capture):
            assert f1.sni == f2.sni
            assert f1.trace.teardown == f2.trace.teardown
            assert [r.length for r in f1.trace.records] == [
                r.length for r in f2.trace.records
            ]


class TestStudyExtensionsAPI:
    def test_spinner_report_api(self, study_results):
        report = study_results.spinner_report("ios")
        assert report.platform == "ios"
        assert report.probed >= 0

    def test_misconfig_report_api(self, study_results):
        report = study_results.nsc_misconfig_report()
        assert report.apps_with_nsc_pins >= 0

    def test_detection_scores_api(self, study_results):
        scores = study_results.detection_scores()
        assert set(scores) == set(study_results.dynamic_results)
        for score in scores.values():
            assert score.precision == 1.0
            assert score.recall == 1.0


class TestGoldenOutput:
    def test_study_stdout_matches_checked_in_fixture(self):
        """The rendered study at the CLI defaults (seed 2022, scale 0.02)
        matches the checked-in golden fixture byte for byte — the guard
        that refactors which must not change results (stage graphs,
        store plumbing, pool boundaries) actually did not."""
        from pathlib import Path

        from repro.reporting.render import render_study_stdout

        corpus = CorpusGenerator(
            CorpusConfig(seed=2022).scaled(0.02)
        ).generate()
        rendered = render_study_stdout(Study(corpus).run())
        golden = (
            Path(__file__).parent / "data" / "study_scale002_golden.txt"
        )
        assert rendered == golden.read_text()
