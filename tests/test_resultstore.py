"""The content-addressed result store: fingerprints, entries, corruption.

The store's contract (DESIGN.md §10): a result is served only under the
exact fingerprint of everything it is a function of; a damaged entry is
invalidated with a ``RuntimeWarning`` and recomputed, never trusted.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import obs
from repro.core.exec.resultstore import (
    CODE_SALT,
    ResultStore,
    app_fingerprint,
    corpus_fingerprint,
    normalize_extra,
    summarize_result,
)
from repro.corpus import CorpusConfig, CorpusGenerator


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(CorpusConfig(seed=1337).scaled(0.015)).generate()


class FakeResult:
    """Minimal picklable stand-in for a dynamic result."""

    def __init__(self, app_id, pinned=()):
        self.app_id = app_id
        self.pinned_destinations = set(pinned)

    def pins(self):
        return bool(self.pinned_destinations)

    def __eq__(self, other):
        return (
            type(other) is FakeResult
            and other.app_id == self.app_id
            and other.pinned_destinations == self.pinned_destinations
        )


class TestFingerprints:
    def test_stable_across_calls(self):
        a = app_fingerprint("c", 30.0, "dynamic", "android", "popular", "x", 0.0)
        b = app_fingerprint("c", 30.0, "dynamic", "android", "popular", "x", 0.0)
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"corpus_fp": "other"},
            {"sleep_s": 60.0},
            {"stage": "static"},
            {"platform": "ios"},
            {"dataset": "random"},
            {"app_id": "y"},
            {"extra": 120.0},
        ],
    )
    def test_every_component_matters(self, kwargs):
        base = dict(
            corpus_fp="c",
            sleep_s=30.0,
            stage="dynamic",
            platform="android",
            dataset="popular",
            app_id="x",
            extra=0.0,
        )
        assert app_fingerprint(**base) != app_fingerprint(**{**base, **kwargs})

    def test_circumvent_extra_is_order_insensitive(self):
        base = dict(
            corpus_fp="c",
            sleep_s=30.0,
            stage="circumvent",
            platform="ios",
            dataset="common",
            app_id="x",
        )
        assert app_fingerprint(**base, extra=("b", "a")) == app_fingerprint(
            **base, extra=("a", "b")
        )

    def test_normalize_extra(self):
        assert normalize_extra("static", None) is None
        assert normalize_extra("dynamic", None) == 0.0
        assert normalize_extra("dynamic", 120) == 120.0
        assert normalize_extra("circumvent", {"b", "a"}) == ("a", "b")

    def test_corpus_fingerprint_tracks_seed_and_shape(self, corpus):
        fp = corpus_fingerprint(corpus)
        assert fp == corpus_fingerprint(corpus)
        other = CorpusGenerator(
            CorpusConfig(seed=1337).scaled(0.02)
        ).generate()
        assert fp != corpus_fingerprint(other)

    def test_salt_enters_fingerprint(self):
        assert CODE_SALT  # bumping it must invalidate — see fingerprint body


class TestSummaries:
    def test_dynamic_like_summary(self):
        summary = summarize_result(FakeResult("a", {"z.com", "a.com"}))
        assert summary["pinned"] is True
        assert summary["pinned_destinations"] == ["a.com", "z.com"]

    def test_opaque_object_summary_is_empty(self):
        assert summarize_result(object()) == {}


class TestRoundTrip:
    def test_publish_then_lookup(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        result = FakeResult("app-1", {"api.example.com"})
        store.publish_app("dynamic", "android", "popular", "app-1", 0.0, result)
        loaded = store.lookup_app("dynamic", "android", "popular", "app-1", 0.0)
        assert loaded == result
        assert store.stats.app_hits == 1
        assert store.stats.published == 1

    def test_miss_on_other_config(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        store.publish_app(
            "dynamic", "android", "popular", "app-1", 0.0, FakeResult("app-1")
        )
        assert (
            store.lookup_app("dynamic", "android", "popular", "app-1", 120.0)
            is None
        )
        assert store.stats.app_misses == 1

    def test_publish_is_idempotent(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        for _ in range(3):
            store.publish_app(
                "static", "ios", "common", "app-2", None, FakeResult("app-2")
            )
        assert store.stats.published == 1

    def test_read_flag_disables_lookup(self, corpus, tmp_path):
        writer = ResultStore(tmp_path / "s", corpus)
        writer.publish_app(
            "static", "ios", "common", "app-3", None, FakeResult("app-3")
        )
        no_read = ResultStore(tmp_path / "s", corpus, read=False)
        assert (
            no_read.lookup_app("static", "ios", "common", "app-3", None)
            is None
        )
        # A disabled read is not a miss: nothing was consulted.
        assert no_read.stats.app_misses == 0

    def test_write_flag_disables_publish(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus, write=False)
        store.publish_app(
            "static", "ios", "common", "app-4", None, FakeResult("app-4")
        )
        assert store.stats.published == 0
        assert not (tmp_path / "s").exists()

    def test_manifest_written_once(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        store.publish_app(
            "static", "ios", "common", "app-5", None, FakeResult("app-5")
        )
        assert (tmp_path / "s" / "store.json").exists()

    def test_sleep_change_invalidates(self, corpus, tmp_path):
        a = ResultStore(tmp_path / "s", corpus, sleep_s=30.0)
        a.publish_app(
            "dynamic", "ios", "common", "app-6", 0.0, FakeResult("app-6")
        )
        b = ResultStore(tmp_path / "s", corpus, sleep_s=60.0)
        assert b.lookup_app("dynamic", "ios", "common", "app-6", 0.0) is None


class TestUnits:
    def _unit(self, corpus, n=3):
        apps = corpus.dataset("android", "popular")
        assert len(apps) >= n
        return ("static", "android", "popular", tuple(range(n)), None)

    def test_publish_unit_then_lookup_unit(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        unit = self._unit(corpus)
        apps = corpus.dataset("android", "popular")
        results = [FakeResult(apps[i].app.app_id) for i in unit[3]]
        store.publish_unit(unit, results)
        assert store.lookup_unit(unit) == results
        assert store.stats.unit_hits == 1

    def test_partial_unit_is_a_miss(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        unit = self._unit(corpus)
        apps = corpus.dataset("android", "popular")
        results = [FakeResult(apps[i].app.app_id) for i in unit[3]]
        store.publish_unit(unit, results)
        # Remove one app's entry: the composed unit must miss whole.
        app_id = apps[1].app.app_id
        fp = store.fingerprint_for("static", "android", "popular", app_id, None)
        store.entry_path(fp).unlink()
        assert store.lookup_unit(unit) is None
        assert store.stats.unit_misses == 1

    def test_incomplete_unit_is_not_published(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        unit = self._unit(corpus)
        store.publish_unit(unit, [FakeResult("only-one")])
        assert store.stats.published == 0

    def test_chunking_does_not_matter(self, corpus, tmp_path):
        """Entries are per app: a differently chunked unit still hits."""
        store = ResultStore(tmp_path / "s", corpus)
        apps = corpus.dataset("android", "popular")
        results = [FakeResult(apps[i].app.app_id) for i in range(3)]
        store.publish_unit(
            ("static", "android", "popular", (0, 1, 2), None), results
        )
        solo = store.lookup_unit(("static", "android", "popular", (1,), None))
        assert solo == [results[1]]


class TestCorruption:
    """Truncated/tampered entries fall back to recompute with a warning."""

    def _entry_path(self, store, corpus):
        app_id = corpus.dataset("ios", "common")[0].app.app_id
        store.publish_app(
            "static", "ios", "common", app_id, None, FakeResult(app_id)
        )
        fp = store.fingerprint_for("static", "ios", "common", app_id, None)
        return app_id, store.entry_path(fp)

    def _assert_invalidated(self, store, corpus, app_id, path):
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert (
                store.lookup_app("static", "ios", "common", app_id, None)
                is None
            )
        assert store.stats.invalidated == 1
        assert not path.exists(), "a bad entry must be deleted"

    def test_truncated_entry(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        app_id, path = self._entry_path(store, corpus)
        path.write_bytes(path.read_bytes()[:20])
        self._assert_invalidated(store, corpus, app_id, path)

    def test_tampered_payload(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        app_id, path = self._entry_path(store, corpus)
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF
        path.write_bytes(bytes(blob))
        self._assert_invalidated(store, corpus, app_id, path)

    def test_wrong_magic(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        app_id, path = self._entry_path(store, corpus)
        path.write_bytes(pickle.dumps(("not-an-entry", 1, "x", {}, "d", b"")))
        self._assert_invalidated(store, corpus, app_id, path)

    def test_entry_under_wrong_fingerprint(self, corpus, tmp_path):
        """A valid envelope filed under another key must not be served."""
        store = ResultStore(tmp_path / "s", corpus)
        app_id, path = self._entry_path(store, corpus)
        other = corpus.dataset("ios", "common")[1].app.app_id
        other_fp = store.fingerprint_for("static", "ios", "common", other, None)
        wrong = store.entry_path(other_fp)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_bytes(path.read_bytes())
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert (
                store.lookup_app("static", "ios", "common", other, None)
                is None
            )

    def test_recompute_republishes_after_invalidation(self, corpus, tmp_path):
        store = ResultStore(tmp_path / "s", corpus)
        app_id, path = self._entry_path(store, corpus)
        path.write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning):
            store.lookup_app("static", "ios", "common", app_id, None)
        # The caller recomputes and publishes; the entry is whole again.
        store.publish_app(
            "static", "ios", "common", app_id, None, FakeResult(app_id)
        )
        assert (
            store.lookup_app("static", "ios", "common", app_id, None)
            is not None
        )


class TestTelemetry:
    def test_counters_reach_active_recorder(self, corpus, tmp_path):
        recorder = obs.Recorder().install()
        try:
            store = ResultStore(tmp_path / "s", corpus)
            app_id = corpus.dataset("android", "common")[0].app.app_id
            store.publish_app(
                "static", "android", "common", app_id, None, FakeResult(app_id)
            )
            store.lookup_app("static", "android", "common", app_id, None)
            store.lookup_app("static", "android", "common", "missing", None)
            assert recorder.counter_value("store.apps.published") == 1
            assert recorder.counter_value("store.apps.hit") == 1
            assert recorder.counter_value("store.apps.miss") == 1
        finally:
            recorder.uninstall()


class TestProgrammingErrorsPropagate:
    """Only corruption-shaped errors invalidate an entry.  A payload that
    unpickles into a renamed/moved class is a programming error (a missed
    CODE_SALT bump) and must propagate, not warn-and-recompute."""

    def test_renamed_result_class_raises_on_lookup(
        self, corpus, tmp_path, monkeypatch
    ):
        import sys

        store = ResultStore(tmp_path / "s", corpus)
        app_id = corpus.dataset("ios", "common")[0].app.app_id
        store.publish_app(
            "static", "ios", "common", app_id, None, FakeResult(app_id)
        )
        fp = store.fingerprint_for("static", "ios", "common", app_id, None)
        module = sys.modules[FakeResult.__module__]
        monkeypatch.delattr(module, "FakeResult")
        with pytest.raises(AttributeError):
            store.lookup_app("static", "ios", "common", app_id, None)
        # Not misfiled as corruption: nothing invalidated, entry intact.
        assert store.stats.invalidated == 0
        assert store.entry_path(fp).exists()
