"""Tests for repro.appmodel.nsc and manifest."""

import pytest

from repro.appmodel.manifest import AndroidManifest
from repro.appmodel.nsc import NSCConfig, NSCDomainConfig, NSCPin
from repro.errors import AppModelError
from repro.util.simtime import STUDY_START


def sample_config() -> NSCConfig:
    return NSCConfig(
        base_cleartext_permitted=False,
        domain_configs=[
            NSCDomainConfig(
                domain="api.bank.com",
                include_subdomains=True,
                pins=[NSCPin("SHA-256", "QUJDREVGR0hJSktMTU5PUFFSU1RVVg==")],
                pin_set_expiration="2023-01-01",
            ),
            NSCDomainConfig(domain="legacy.bank.com", cleartext_permitted=True),
        ],
    )


class TestNSCRoundtrip:
    def test_xml_roundtrip(self):
        config = sample_config()
        parsed = NSCConfig.from_xml(config.to_xml())
        assert parsed.base_cleartext_permitted is False
        assert len(parsed.domain_configs) == 2
        dc = parsed.domain_configs[0]
        assert dc.domain == "api.bank.com"
        assert dc.include_subdomains
        assert dc.pins[0].digest == "SHA-256"
        assert dc.pin_set_expiration == "2023-01-01"
        assert parsed.domain_configs[1].cleartext_permitted is True

    def test_has_pins(self):
        assert sample_config().has_pins()
        assert not NSCConfig(
            domain_configs=[NSCDomainConfig(domain="x.com")]
        ).has_pins()

    def test_pin_string_conversion(self):
        pin = NSCPin("SHA-256", "QUJD")
        assert pin.as_pin_string() == "sha256/QUJD"
        assert NSCPin("SHA-1", "QUJD").as_pin_string() == "sha1/QUJD"

    def test_override_pins_roundtrip(self):
        config = NSCConfig(
            domain_configs=[
                NSCDomainConfig(
                    domain="x.com",
                    pins=[NSCPin("SHA-256", "QUJD")],
                    override_pins=True,
                )
            ]
        )
        parsed = NSCConfig.from_xml(config.to_xml())
        assert parsed.domain_configs[0].override_pins

    def test_to_rule(self):
        rule = sample_config().domain_configs[0].to_rule()
        assert rule.domain == "api.bank.com"
        assert "sha256/QUJDREVGR0hJSktMTU5PUFFSU1RVVg==" in rule.pins
        assert rule.pin_set_expiration is not None
        assert rule.active_at(STUDY_START)

    def test_expired_rule_inactive(self):
        dc = NSCDomainConfig(
            domain="x.com",
            pins=[NSCPin("SHA-256", "QUJD")],
            pin_set_expiration="2020-01-01",
        )
        assert not dc.to_rule().active_at(STUDY_START)

    def test_bad_expiration_date(self):
        dc = NSCDomainConfig(
            domain="x.com",
            pins=[NSCPin("SHA-256", "QUJD")],
            pin_set_expiration="not-a-date",
        )
        with pytest.raises(AppModelError):
            dc.to_rule()

    def test_malformed_xml(self):
        with pytest.raises(AppModelError):
            NSCConfig.from_xml("<broken")
        with pytest.raises(AppModelError):
            NSCConfig.from_xml("<other-root/>")

    def test_domain_config_without_domain_skipped(self):
        xml = (
            "<network-security-config><domain-config>"
            "<pin-set><pin digest='SHA-256'>QUJD</pin></pin-set>"
            "</domain-config></network-security-config>"
        )
        assert NSCConfig.from_xml(xml).domain_configs == []


class TestManifest:
    def test_roundtrip_with_nsc(self):
        manifest = AndroidManifest(
            package="com.x.app",
            version_name="2.3",
            network_security_config="@xml/network_security_config",
        )
        parsed = AndroidManifest.from_xml(manifest.to_xml())
        assert parsed.package == "com.x.app"
        assert parsed.version_name == "2.3"
        assert (
            parsed.nsc_resource_path() == "res/xml/network_security_config.xml"
        )

    def test_roundtrip_without_nsc(self):
        parsed = AndroidManifest.from_xml(
            AndroidManifest(package="com.y.app").to_xml()
        )
        assert parsed.network_security_config is None
        assert parsed.nsc_resource_path() is None

    def test_missing_package_rejected(self):
        with pytest.raises(AppModelError):
            AndroidManifest.from_xml("<manifest/>")

    def test_malformed_rejected(self):
        with pytest.raises(AppModelError):
            AndroidManifest.from_xml("not xml")
