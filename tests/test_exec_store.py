"""Incremental study execution through the result store.

The warm-start contract: a repeated ``Study.run(store=...)`` recomputes
(far) fewer than 5 % of its work units — zero, when nothing changed —
and still merges to bit-for-bit the same results as a cold run, at any
worker count; any configuration change invalidates cleanly; a corrupt
entry is recomputed with a ``RuntimeWarning``, never served.
"""

from __future__ import annotations

import pytest

from repro.core import obs
from repro.core.analysis import Study
from repro.core.exec import ExecutionPlan, ResultStore, SeededFaults
from repro.corpus import CorpusConfig, CorpusGenerator

SEED = 1337
SCALE = 0.015


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(CorpusConfig(seed=SEED).scaled(SCALE)).generate()


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("resultstore") / "store"


@pytest.fixture(scope="module")
def cold(corpus, store_dir):
    """One cold run that populates the shared store."""
    store = ResultStore(store_dir, corpus)
    results = Study(corpus).run(store=store)
    return results, store.stats


def assert_same_results(a, b):
    """The study-output views the paper reports, compared bit-for-bit."""
    assert a.table3().render() == b.table3().render()
    assert a.table8().render() == b.table8().render()
    assert a.figure2().render() == b.figure2().render()
    for platform in ("android", "ios"):
        a_dyn, b_dyn = a.dynamic_by_app(platform), b.dynamic_by_app(platform)
        assert set(a_dyn) == set(b_dyn)
        for app_id, result in a_dyn.items():
            assert result.pinned_destinations == b_dyn[app_id].pinned_destinations
            assert result.verdicts == b_dyn[app_id].verdicts
        assert a.circumvention_rate(platform) == b.circumvention_rate(platform)
    assert a.failures == b.failures


class TestWarmRuns:
    def test_cold_run_populates(self, cold, store_dir):
        _, stats = cold
        assert stats.unit_hits == 0
        assert stats.published > 0
        assert any((store_dir / "objects").rglob("*.pkl"))

    def test_warm_run_identical_and_fully_cached(self, corpus, store_dir, cold):
        cold_results, _ = cold
        store = ResultStore(store_dir, corpus)
        warm_results = Study(corpus).run(store=store)
        assert_same_results(cold_results, warm_results)
        # The incremental contract: <5 % of units re-executed.  With
        # nothing changed, every unit composes from the store.
        assert store.stats.unit_misses == 0
        assert store.stats.unit_hits > 0
        assert store.stats.published == 0

    def test_warm_run_identical_across_worker_counts(
        self, corpus, store_dir, cold
    ):
        cold_results, _ = cold
        store = ResultStore(store_dir, corpus)
        plan = ExecutionPlan(workers=2, chunk_size=3)
        warm_results = Study(corpus, plan=plan).run(store=store)
        assert_same_results(cold_results, warm_results)
        assert store.stats.unit_misses == 0

    def test_store_hit_counters_exported(self, corpus, store_dir, cold):
        recorder = obs.Recorder()
        results = Study(corpus).run(store=store_dir, recorder=recorder)
        assert results is not None
        counters = recorder.metrics()["counters"]
        assert counters.get("store.units.hit", 0) > 0
        assert counters.get("store.units.miss", 0) == 0

    def test_no_store_read_recomputes_everything(self, corpus, store_dir, cold):
        cold_results, _ = cold
        store = ResultStore(store_dir, corpus, read=False)
        results = Study(corpus).run(store=store)
        assert_same_results(cold_results, results)
        assert store.stats.unit_hits == 0


class TestInvalidation:
    def test_scale_perturbation_invalidates(self, store_dir, cold):
        """A ``--scale`` bump misses everything but stays self-consistent."""
        other = CorpusGenerator(
            CorpusConfig(seed=SEED).scaled(0.02)
        ).generate()
        store = ResultStore(store_dir, other)
        perturbed_cold = Study(other).run(store=store)
        assert store.stats.unit_hits == 0, "stale cross-config hit"
        warm_store = ResultStore(store_dir, other)
        perturbed_warm = Study(other).run(store=warm_store)
        assert_same_results(perturbed_cold, perturbed_warm)
        assert warm_store.stats.unit_misses == 0

    def test_seed_perturbation_invalidates(self, store_dir, cold):
        other = CorpusGenerator(
            CorpusConfig(seed=SEED + 1).scaled(SCALE)
        ).generate()
        store = ResultStore(store_dir, other)
        Study(other).run(store=store)
        assert store.stats.unit_hits == 0


class TestCorruptionFallback:
    def test_corrupt_entry_recomputed_not_served(
        self, corpus, store_dir, cold
    ):
        cold_results, _ = cold
        store = ResultStore(store_dir, corpus)
        app_id = corpus.dataset("android", "popular")[0].app.app_id
        victim = store.entry_path(
            store.fingerprint_for("static", "android", "popular", app_id, None)
        )
        blob = victim.read_bytes()
        victim.write_bytes(blob[: len(blob) // 2])
        with pytest.warns(RuntimeWarning, match="corrupt"):
            results = Study(corpus).run(store=store)
        assert_same_results(cold_results, results)
        assert store.stats.invalidated == 1
        # The damaged unit was recomputed and republished: whole again.
        healed = ResultStore(store_dir, corpus)
        rerun = Study(corpus).run(store=healed)
        assert_same_results(cold_results, rerun)
        assert healed.stats.unit_misses == 0


class TestCheckpointInterplay:
    def test_store_hits_enter_the_journal(
        self, corpus, store_dir, cold, tmp_path
    ):
        cold_results, _ = cold
        journal = tmp_path / "warm.ckpt"
        store = ResultStore(store_dir, corpus)
        warm = Study(corpus).run(resume=str(journal), store=store)
        assert_same_results(cold_results, warm)
        assert journal.exists() and journal.stat().st_size > 0
        # A resume-only re-run replays the journal without the store.
        resumed = Study(corpus).run(resume=str(journal))
        assert_same_results(cold_results, resumed)


class TestFaultedRuns:
    def test_failed_apps_never_publish(self, corpus, tmp_path):
        """An abandoned app must not enter the store as a result."""
        faults = SeededFaults(0.1, seed=7)
        store = ResultStore(tmp_path / "faulted", corpus)
        plan = ExecutionPlan(max_retries=0)
        results = Study(corpus, plan=plan, fault_predicate=faults).run(
            store=store
        )
        assert results.failures, "fixture should drop at least one app"
        failed_dynamic = {
            f.app_id for f in results.failures if f.phase == "dynamic"
        }
        for failure in results.failures:
            if failure.phase != "dynamic":
                continue
            fp = store.fingerprint_for(
                "dynamic",
                failure.platform,
                failure.dataset,
                failure.app_id,
                0.0,
            )
            assert not store.entry_path(fp).exists()
        # Surviving apps did publish.
        assert store.stats.published > 0
        assert failed_dynamic or results.failures
