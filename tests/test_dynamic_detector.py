"""Tests for the differential detector, background handling and pipeline."""

import pytest

from repro.core.dynamic import (
    DynamicPipeline,
    detect_pinned_destinations,
    ios_excluded_destinations,
    naive_detect_pinned_destinations,
)
from repro.netsim.capture import TrafficCapture
from repro.netsim.flow import FlowRecord
from repro.tls.connection import ConnectionTrace, TEARDOWN_OPEN, TEARDOWN_RST
from repro.tls.records import ContentType, Direction, TLSRecord, TLSVersion
from repro.util.simtime import STUDY_START


def flow(sni, used, teardown=TEARDOWN_OPEN, version=TLSVersion.TLS12):
    records = [
        TLSRecord(ContentType.HANDSHAKE, Direction.CLIENT_TO_SERVER, 512),
        TLSRecord(ContentType.HANDSHAKE, Direction.SERVER_TO_CLIENT, 3000),
    ]
    if used:
        records.append(
            TLSRecord(ContentType.APPLICATION_DATA, Direction.CLIENT_TO_SERVER, 400)
        )
    return FlowRecord(
        sni=sni,
        started_at=STUDY_START,
        version=version,
        trace=ConnectionTrace(records=records, teardown=teardown),
    )


class TestDifferentialDetector:
    def test_pinned_destination_detected(self):
        direct = TrafficCapture([flow("pin.com", used=True)])
        mitm = TrafficCapture([flow("pin.com", used=False, teardown=TEARDOWN_RST)])
        verdicts = detect_pinned_destinations(direct, mitm)
        assert verdicts["pin.com"].pinned

    def test_unpinned_destination_not_detected(self):
        direct = TrafficCapture([flow("ok.com", used=True)])
        mitm = TrafficCapture([flow("ok.com", used=True)])
        assert not detect_pinned_destinations(direct, mitm)["ok.com"].pinned

    def test_requires_use_in_direct(self):
        # Failure in both settings (e.g. broken server) is not pinning.
        direct = TrafficCapture([flow("down.com", used=False, teardown=TEARDOWN_RST)])
        mitm = TrafficCapture([flow("down.com", used=False, teardown=TEARDOWN_RST)])
        assert not detect_pinned_destinations(direct, mitm)["down.com"].pinned

    def test_one_mitm_success_clears_destination(self):
        direct = TrafficCapture([flow("flaky.com", used=True)])
        mitm = TrafficCapture(
            [
                flow("flaky.com", used=False, teardown=TEARDOWN_RST),
                flow("flaky.com", used=True),
            ]
        )
        assert not detect_pinned_destinations(direct, mitm)["flaky.com"].pinned

    def test_unused_open_mitm_connection_not_failed(self):
        direct = TrafficCapture([flow("idle.com", used=True)])
        mitm = TrafficCapture([flow("idle.com", used=False, teardown=TEARDOWN_OPEN)])
        assert not detect_pinned_destinations(direct, mitm)["idle.com"].pinned

    def test_destination_missing_from_mitm_not_pinned(self):
        direct = TrafficCapture([flow("once.com", used=True)])
        mitm = TrafficCapture([])
        assert not detect_pinned_destinations(direct, mitm)["once.com"].pinned

    def test_exclusion_registrable_domain(self):
        direct = TrafficCapture([flow("gateway.icloud.com", used=True)])
        mitm = TrafficCapture(
            [flow("gateway.icloud.com", used=False, teardown=TEARDOWN_RST)]
        )
        verdicts = detect_pinned_destinations(
            direct, mitm, excluded_domains=["icloud.com"]
        )
        verdict = verdicts["gateway.icloud.com"]
        assert verdict.excluded and not verdict.pinned

    def test_exclusion_exact_host_spares_siblings(self):
        direct = TrafficCapture(
            [flow("www.vendor.com", used=True), flow("api.vendor.com", used=True)]
        )
        mitm = TrafficCapture(
            [
                flow("www.vendor.com", used=False, teardown=TEARDOWN_RST),
                flow("api.vendor.com", used=False, teardown=TEARDOWN_RST),
            ]
        )
        verdicts = detect_pinned_destinations(
            direct, mitm, excluded_domains=["www.vendor.com"]
        )
        assert verdicts["www.vendor.com"].excluded
        assert verdicts["api.vendor.com"].pinned

    def test_naive_detector_flags_any_failure(self):
        mitm = TrafficCapture(
            [
                flow("pin.com", used=False, teardown=TEARDOWN_RST),
                flow("transient.com", used=False, teardown=TEARDOWN_RST),
                flow("ok.com", used=True),
            ]
        )
        flagged = naive_detect_pinned_destinations(mitm)
        assert flagged == {"pin.com", "transient.com"}


class TestBackgroundExclusions:
    def test_includes_apple_domains(self, small_corpus):
        packaged = small_corpus.dataset("ios", "popular")[0]
        packaged.ipa.decrypt()
        excluded = ios_excluded_destinations(packaged)
        assert {"icloud.com", "apple.com", "mzstatic.com"} <= excluded

    def test_includes_entitlement_domains(self, small_corpus):
        with_assoc = [
            p
            for p in small_corpus.dataset("ios", "popular")
            if p.app.associated_domains
        ]
        packaged = with_assoc[0]
        packaged.ipa.decrypt()
        excluded = ios_excluded_destinations(packaged)
        for domain in packaged.app.associated_domains:
            assert domain in excluded


@pytest.fixture(scope="module")
def dynamic_pipeline(small_corpus):
    return DynamicPipeline(small_corpus)


class TestDynamicPipeline:
    def test_perfect_destination_detection(self, small_corpus, dynamic_pipeline):
        # Against ground truth, the differential detector should have no
        # false positives and no false negatives on contactable pinned
        # destinations — the property the paper's design aims for.
        for key in (("android", "popular"), ("ios", "popular")):
            apps = small_corpus.dataset(*key)
            for packaged in apps:
                result = dynamic_pipeline.run_app(packaged)
                app = packaged.app
                gt = {
                    u.hostname
                    for u in app.behavior.usages_within(30)
                    if app.pins_domain(u.hostname)
                }
                assert result.pinned_destinations == gt, app.app_id

    def test_app_level_detection_matches_ground_truth(
        self, small_corpus, dynamic_pipeline
    ):
        apps = small_corpus.dataset("android", "popular")
        detected = sum(
            1 for p in apps if dynamic_pipeline.run_app(p).pins()
        )
        gt = sum(1 for p in apps if p.app.pins_at_runtime())
        assert detected == gt

    def test_result_fields(self, small_corpus, dynamic_pipeline):
        packaged = small_corpus.dataset("ios", "popular")[0]
        result = dynamic_pipeline.run_app(packaged)
        assert result.platform == "ios"
        assert result.app_id == packaged.app.app_id
        assert len(result.direct_capture) > 0
        assert len(result.mitm_capture) > 0
        assert "icloud.com" in result.excluded_destinations

    def test_rerun_flag(self, small_corpus, dynamic_pipeline):
        packaged = small_corpus.dataset("ios", "popular")[0]
        result = dynamic_pipeline.run_app(packaged, pre_launch_wait_s=120.0)
        assert result.reran_with_wait


class TestDetectorVariants:
    """The named-variant entry point behind the ``detector`` config knob."""

    def _captures(self):
        direct = TrafficCapture(
            [flow("pin.com", used=True), flow("ok.com", used=True)]
        )
        mitm = TrafficCapture(
            [
                flow("pin.com", used=False, teardown=TEARDOWN_RST),
                flow("ok.com", used=True),
            ]
        )
        return direct, mitm

    def test_full_is_the_differential_detector(self):
        from repro.core.dynamic.detector import detect_verdicts

        direct, mitm = self._captures()
        assert detect_verdicts(direct, mitm) == detect_pinned_destinations(
            direct, mitm
        )

    def test_no_tls13_drops_the_heuristics(self):
        from repro.core.dynamic.detector import detect_verdicts

        direct, mitm = self._captures()
        assert detect_verdicts(
            direct, mitm, detector="no-tls13"
        ) == detect_pinned_destinations(direct, mitm, tls13_heuristics=False)

    def test_naive_keeps_the_full_verdict_universe(self):
        from repro.core.dynamic.detector import detect_verdicts

        direct, mitm = self._captures()
        naive = detect_verdicts(direct, mitm, detector="naive")
        full = detect_pinned_destinations(direct, mitm)
        assert set(naive) == set(full)
        flagged = naive_detect_pinned_destinations(mitm)
        for destination, verdict in naive.items():
            assert verdict.pinned == (destination in flagged)

    def test_unknown_variant_rejected(self):
        from repro.core.dynamic.detector import detect_verdicts

        with pytest.raises(ValueError, match="unknown detector"):
            detect_verdicts(
                TrafficCapture(), TrafficCapture(), detector="bogus"
            )

    def test_pipeline_rejects_unknown_variant(self, small_corpus):
        with pytest.raises(ValueError, match="unknown detector"):
            DynamicPipeline(small_corpus, detector="bogus")


class TestResultExclusionSymmetry:
    """``pinned_destinations`` and ``not_pinned_destinations`` apply the
    same ``excluded`` filter — a verdict marked both pinned and excluded
    must not count (regression for the former asymmetry, where only the
    not-pinned side filtered)."""

    def _result(self, verdicts):
        from repro.core.dynamic.pipeline import DynamicAppResult

        return DynamicAppResult(
            app_id="app", platform="ios", verdicts=verdicts
        )

    def test_excluded_pinned_verdict_is_filtered(self):
        from repro.core.dynamic.detector import DestinationVerdict

        result = self._result(
            {
                "pin.com": DestinationVerdict("pin.com", pinned=True),
                "bg.apple.com": DestinationVerdict(
                    "bg.apple.com", pinned=True, excluded=True
                ),
                "plain.com": DestinationVerdict("plain.com"),
            }
        )
        assert result.pinned_destinations == {"pin.com"}
        assert result.not_pinned_destinations == {"plain.com"}

    def test_only_excluded_pins_means_app_does_not_pin(self):
        from repro.core.dynamic.detector import DestinationVerdict

        result = self._result(
            {
                "bg.apple.com": DestinationVerdict(
                    "bg.apple.com", pinned=True, excluded=True
                )
            }
        )
        assert not result.pins()

    def test_detector_never_emits_excluded_pinned(self):
        # The detector's own output keeps the invariant the property
        # guards: an excluded destination short-circuits before the
        # differential and is never marked pinned.
        direct = TrafficCapture([flow("bg.apple.com", used=True)])
        mitm = TrafficCapture(
            [flow("bg.apple.com", used=False, teardown=TEARDOWN_RST)]
        )
        verdicts = detect_pinned_destinations(
            direct, mitm, excluded_domains={"bg.apple.com"}
        )
        verdict = verdicts["bg.apple.com"]
        assert verdict.excluded and not verdict.pinned
