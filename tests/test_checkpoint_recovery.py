"""Tests for checkpoint-journal corruption recovery.

A journal hit by mid-file corruption (bit rot, a partial write papered
over by later appends) must resync at the next valid record, count what
it lost, and warn — never silently truncate at the first bad byte.  The
ordinary killed-mid-write tail stays warning-free.
"""

import warnings

import pytest

from repro.core import obs
from repro.core.exec.checkpoint import StudyCheckpoint

SEED = 7


def _unit(index):
    return ("static", "android", "popular", (index,), None)


def _write_journal(path, count):
    """Write ``count`` records; return the file size after each one."""
    sizes = []
    with StudyCheckpoint(path, seed=SEED, sleep_s=0.0) as checkpoint:
        for index in range(count):
            checkpoint.record(_unit(index), [f"result-{index}"])
            sizes.append(path.stat().st_size)
    return sizes


def _reload(path):
    checkpoint = StudyCheckpoint(path, seed=SEED, sleep_s=0.0).open()
    checkpoint.close()
    return checkpoint


class TestIntactJournal:
    def test_reload_counts_and_replays(self, tmp_path):
        path = tmp_path / "journal.ckpt"
        _write_journal(path, 3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            checkpoint = _reload(path)
        assert checkpoint.records_recovered == 3
        assert checkpoint.records_discarded == 0
        assert not checkpoint.mid_file_corruption
        assert checkpoint.lookup(_unit(1)) == ["result-1"]


class TestMidFileCorruption:
    def _corrupt_middle_record(self, path, sizes):
        """Destroy the second record's pickle framing in place."""
        data = bytearray(path.read_bytes())
        start = sizes[0]  # record 1 begins where record 0 ended
        data[start : start + 2] = b"\xff\xff"
        path.write_bytes(bytes(data))

    def test_resyncs_and_warns(self, tmp_path):
        path = tmp_path / "journal.ckpt"
        sizes = _write_journal(path, 3)
        self._corrupt_middle_record(path, sizes)
        with pytest.warns(RuntimeWarning, match="corrupt record"):
            checkpoint = _reload(path)
        assert checkpoint.records_recovered == 2
        assert checkpoint.records_discarded == 1
        assert checkpoint.mid_file_corruption
        # The records around the corrupt region survived; the destroyed
        # one misses, so its unit will be recomputed.
        assert checkpoint.lookup(_unit(0)) == ["result-0"]
        assert checkpoint.lookup(_unit(1)) is None
        assert checkpoint.lookup(_unit(2)) == ["result-2"]

    def test_loss_reaches_telemetry_recorder(self, tmp_path):
        path = tmp_path / "journal.ckpt"
        sizes = _write_journal(path, 3)
        self._corrupt_middle_record(path, sizes)
        recorder = obs.Recorder().install()
        try:
            with pytest.warns(RuntimeWarning):
                _reload(path)
            assert recorder.counter_value("journal.records.discarded") == 1
            assert recorder.counter_value("journal.records.recovered") == 2
        finally:
            recorder.uninstall()

    def test_corrupt_region_spanning_to_eof_is_tail_like(self, tmp_path):
        """Corruption with no valid record after it is a tail loss: counted
        but not flagged as mid-file (nothing was recovered past it)."""
        path = tmp_path / "journal.ckpt"
        sizes = _write_journal(path, 2)
        data = bytearray(path.read_bytes())
        data[sizes[0] : sizes[0] + 2] = b"\xff\xff"
        # Also scrub any later PROTO bytes so no resync candidate parses.
        path.write_bytes(bytes(data[: sizes[0] + 4]))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            checkpoint = _reload(path)
        assert checkpoint.records_recovered == 1
        assert checkpoint.records_discarded == 1
        assert not checkpoint.mid_file_corruption


class TestTruncatedTail:
    def test_truncation_discards_quietly(self, tmp_path):
        """A record cut short by a kill is expected; no warning."""
        path = tmp_path / "journal.ckpt"
        sizes = _write_journal(path, 2)
        data = path.read_bytes()
        path.write_bytes(data[: sizes[1] - 5])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            checkpoint = _reload(path)
        assert checkpoint.records_recovered == 1
        assert checkpoint.records_discarded == 1
        assert not checkpoint.mid_file_corruption
        assert checkpoint.lookup(_unit(0)) == ["result-0"]
        assert checkpoint.lookup(_unit(1)) is None

    def test_append_after_truncation_papers_over_but_resyncs(self, tmp_path):
        """The docstring's 'partial write that later appends papered over'
        case: re-opening after a truncated tail appends *past* the garbage,
        turning it into mid-file corruption — which the resync survives,
        recovering both the old and the newly appended record."""
        path = tmp_path / "journal.ckpt"
        sizes = _write_journal(path, 2)
        path.write_bytes(path.read_bytes()[: sizes[1] - 5])
        with StudyCheckpoint(path, seed=SEED, sleep_s=0.0) as checkpoint:
            checkpoint.record(_unit(1), ["result-1-redone"])
        with pytest.warns(RuntimeWarning):
            reloaded = _reload(path)
        assert reloaded.mid_file_corruption
        assert reloaded.lookup(_unit(0)) == ["result-0"]
        assert reloaded.lookup(_unit(1)) == ["result-1-redone"]


class JournaledPayload:
    """Picklable stand-in for a journaled result object."""

    def __init__(self, tag):
        self.tag = tag


class TestProgrammingErrorsPropagate:
    """Only corruption-shaped errors are discarded as bit rot; a payload
    referencing a renamed class is a code bug and must raise."""

    def test_renamed_payload_class_raises_on_load(self, tmp_path, monkeypatch):
        import sys

        path = tmp_path / "journal.ckpt"
        with StudyCheckpoint(path, seed=SEED, sleep_s=0.0) as checkpoint:
            checkpoint.record(_unit(0), [JournaledPayload("x")])
        module = sys.modules[JournaledPayload.__module__]
        monkeypatch.delattr(module, "JournaledPayload")
        with pytest.raises(AttributeError):
            StudyCheckpoint(path, seed=SEED, sleep_s=0.0).open()
