"""Tests for repro.netsim: flows, proxy, capture, simulate."""

import pytest

from repro.errors import AnalysisError, CorpusError
from repro.netsim import (
    FlowRecord,
    MITMProxy,
    Payload,
    TrafficCapture,
    simulate_flow,
)
from repro.pki.authority import PKIHierarchy
from repro.pki.store import StoreCatalog
from repro.pki.validation import ValidationContext, chain_is_valid
from repro.servers.registry import EndpointRegistry
from repro.tls.handshake import ClientProfile
from repro.tls.policy import SpkiPinPolicy, SystemValidationPolicy
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START


@pytest.fixture(scope="module")
def world():
    hierarchy = PKIHierarchy(DeterministicRng(71))
    catalog = StoreCatalog.build(hierarchy)
    registry = EndpointRegistry(hierarchy, DeterministicRng(72))
    endpoint = registry.create_default_pki_endpoint("flow.example.com", "FlowCo")
    proxy = MITMProxy(DeterministicRng(73))
    device_store = catalog.android_aosp.copy("device")
    device_store.add(proxy.ca_certificate)
    return catalog, registry, endpoint, proxy, device_store


class TestPayload:
    def test_flattened_contains_fields(self):
        payload = Payload(fields=(("k", "v"),), headers=(("H", "1"),))
        flat = payload.flattened()
        assert "k=v" in flat
        assert "H: 1" in flat


class TestProxy:
    def test_forged_chain_mimics_names(self, world):
        _, _, endpoint, proxy, _ = world
        forged = proxy.forge_chain(endpoint)
        assert forged.leaf.subject.common_name == endpoint.chain.leaf.subject.common_name
        assert forged.leaf.san == endpoint.chain.leaf.san
        assert forged.terminal is proxy.ca_certificate

    def test_forged_chain_cached(self, world):
        _, _, endpoint, proxy, _ = world
        assert proxy.forge_chain(endpoint) is proxy.forge_chain(endpoint)

    def test_forged_chain_validates_with_proxy_ca(self, world):
        catalog, _, endpoint, proxy, device_store = world
        forged = proxy.forge_chain(endpoint)
        ctx = ValidationContext(
            store=device_store, hostname="flow.example.com", at_time=STUDY_START
        )
        assert chain_is_valid(forged, ctx)
        # ...but not against a store missing the proxy CA.
        ctx_clean = ValidationContext(
            store=catalog.android_aosp,
            hostname="flow.example.com",
            at_time=STUDY_START,
        )
        assert not chain_is_valid(forged, ctx_clean)


class TestSimulateFlow:
    def _client(self, device_store, pin_chain=None):
        base = SystemValidationPolicy(device_store)
        if pin_chain is None:
            return ClientProfile(sni="flow.example.com", policy=base)
        policy = SpkiPinPolicy([pin_chain.leaf.spki_pin()], base=base)
        return ClientProfile(sni="flow.example.com", policy=policy)

    def test_direct_used_flow(self, world):
        _, _, endpoint, _, device_store = world
        flow = simulate_flow(
            self._client(device_store),
            endpoint,
            STUDY_START,
            DeterministicRng(1),
            payloads=[Payload()],
        )
        assert flow.handshake_completed
        assert not flow.plaintext_visible
        with pytest.raises(AnalysisError):
            flow.decrypted_payloads()

    def test_mitm_decrypts_unpinned(self, world):
        _, _, endpoint, proxy, device_store = world
        flow = simulate_flow(
            self._client(device_store),
            endpoint,
            STUDY_START,
            DeterministicRng(2),
            payloads=[Payload(fields=(("a", "b"),))],
            proxy=proxy,
        )
        assert flow.plaintext_visible
        assert flow.decrypted_payloads()[0].fields == (("a", "b"),)

    def test_mitm_blocked_by_pin(self, world):
        _, _, endpoint, proxy, device_store = world
        flow = simulate_flow(
            self._client(device_store, pin_chain=endpoint.chain),
            endpoint,
            STUDY_START,
            DeterministicRng(3),
            payloads=[Payload()],
            proxy=proxy,
            gt_pinned=True,
        )
        assert not flow.handshake_completed
        assert not flow.plaintext_visible
        assert flow.trace.aborted()
        assert flow.gt_failure_reason == "pin_mismatch"

    def test_pinned_direct_succeeds(self, world):
        _, _, endpoint, _, device_store = world
        flow = simulate_flow(
            self._client(device_store, pin_chain=endpoint.chain),
            endpoint,
            STUDY_START,
            DeterministicRng(4),
            payloads=[Payload()],
        )
        assert flow.handshake_completed

    def test_transient_failure(self, world):
        _, _, endpoint, _, device_store = world
        flow = simulate_flow(
            self._client(device_store),
            endpoint,
            STUDY_START,
            DeterministicRng(5),
            payloads=[Payload()],
            transient_failure_prob=1.0,
        )
        assert not flow.handshake_completed
        assert flow.gt_failure_reason == "transient"
        assert flow.trace.teardown == "rst"

    def test_redundant_connection(self, world):
        _, _, endpoint, _, device_store = world
        flow = simulate_flow(
            self._client(device_store),
            endpoint,
            STUDY_START,
            DeterministicRng(6),
            payloads=[],
        )
        assert flow.handshake_completed
        assert not flow.plaintext_visible

    def test_fingerprint_set(self, world):
        _, _, endpoint, _, device_store = world
        flow = simulate_flow(
            self._client(device_store),
            endpoint,
            STUDY_START,
            DeterministicRng(7),
        )
        assert flow.client_fingerprint


class TestTrafficCapture:
    def _flow(self, sni, app_id="app", os_initiated=False):
        return FlowRecord(
            sni=sni,
            started_at=STUDY_START,
            app_id=app_id,
            os_initiated=os_initiated,
        )

    def test_filters(self):
        capture = TrafficCapture(
            [
                self._flow("a.com", "app1"),
                self._flow("b.com", "app2"),
                self._flow("a.com", "app1", os_initiated=True),
            ]
        )
        assert len(capture.for_app("app1")) == 2
        assert len(capture.for_destination("A.COM")) == 2
        assert len(capture.without_os_traffic()) == 2
        assert capture.destinations() == {"a.com", "b.com"}
        assert capture.app_ids() == {"app1", "app2"}

    def test_excluding_destinations(self):
        capture = TrafficCapture([self._flow("a.com"), self._flow("b.com")])
        remaining = capture.excluding_destinations(["A.com"])
        assert remaining.destinations() == {"b.com"}

    def test_by_destination(self):
        capture = TrafficCapture([self._flow("a.com"), self._flow("a.com")])
        grouped = capture.by_destination()
        assert len(grouped["a.com"]) == 2


class TestRegistry:
    def test_unknown_host_raises(self, world):
        _, registry, _, _, _ = world
        with pytest.raises(CorpusError):
            registry.resolve("nonexistent.example.org")

    def test_idempotent_creation(self, world):
        _, registry, endpoint, _, _ = world
        again = registry.create_default_pki_endpoint("flow.example.com", "FlowCo")
        assert again is endpoint

    def test_ct_logged(self, world):
        _, registry, endpoint, _, _ = world
        hits = registry.ctlog.search_pin(endpoint.chain.leaf.spki_pin())
        assert hits

    def test_self_signed_endpoint(self, world):
        _, registry, _, _, _ = world
        endpoint = registry.create_self_signed_endpoint(
            "lonely.selfco.net", "SelfCo", lifetime_years=27.0
        )
        assert endpoint.chain.is_single_self_signed()
        assert endpoint.pki_kind == "self-signed"
        assert endpoint.chain.leaf.validity_years() == pytest.approx(27.0, abs=0.2)

    def test_custom_pki_endpoint_not_ct_logged(self, world):
        _, registry, _, _, _ = world
        hierarchy = registry.hierarchy
        authority = hierarchy.mint_custom_root("PrivateCo")
        endpoint = registry.create_custom_pki_endpoint(
            "internal.privateco.com", "PrivateCo", authority
        )
        assert endpoint.pki_kind == "custom"
        assert registry.ctlog.search_pin(endpoint.chain.leaf.spki_pin()) == []

    def test_party_directory(self, world):
        _, registry, _, _, _ = world
        assert registry.parties.owner_of("flow.example.com") == "FlowCo"
        assert (
            registry.parties.classify("flow.example.com", "FlowCo") == "first"
        )
        assert (
            registry.parties.classify("flow.example.com", "OtherCo") == "third"
        )
