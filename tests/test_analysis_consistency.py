"""Tests for the consistency classifier (Section 5.1 definitions)."""

import pytest

from repro.core.analysis.consistency import PairObservation, classify_pair, figure2_table, figure3_table, figure4_tables, summarize_pairs


def obs(ap=(), au=(), ip=(), iu=()):
    return PairObservation(
        android_pinned=set(ap),
        android_unpinned=set(au),
        ios_pinned=set(ip),
        ios_unpinned=set(iu),
    )


class TestClassifyPair:
    def test_no_pinning(self):
        c = classify_pair(obs(au={"a"}, iu={"a"}))
        assert c.verdict == "none"
        assert not c.pins_either

    def test_identical_consistent(self):
        c = classify_pair(obs(ap={"x"}, ip={"x"}))
        assert c.verdict == "consistent"
        assert c.identical_sets
        assert c.jaccard == 1.0

    def test_partial_consistent(self):
        # Shared pinned domain; extras never observed cross-platform.
        c = classify_pair(obs(ap={"x", "a"}, ip={"x", "b", "c"}))
        assert c.verdict == "consistent"
        assert not c.identical_sets
        assert c.jaccard == pytest.approx(0.25)

    def test_inconsistent_android_pin_unpinned_on_ios(self):
        c = classify_pair(obs(ap={"x", "e"}, ip={"x"}, iu={"e"}))
        assert c.verdict == "inconsistent"
        assert c.android_cross_unpinned == pytest.approx(0.5)
        assert c.ios_cross_unpinned == 0.0
        assert c.jaccard == pytest.approx(0.5)

    def test_inconsistent_both_directions(self):
        c = classify_pair(obs(ap={"e"}, au={"f"}, ip={"f"}, iu={"e"}))
        assert c.verdict == "inconsistent"
        assert c.android_cross_unpinned == 1.0
        assert c.ios_cross_unpinned == 1.0
        assert c.jaccard == 0.0

    def test_both_inconclusive(self):
        c = classify_pair(obs(ap={"e"}, ip={"f"}, au={"z"}, iu={"z"}))
        assert c.pins_both
        assert c.verdict == "inconclusive"

    def test_android_only_inconsistent(self):
        c = classify_pair(obs(ap={"x"}, iu={"x"}))
        assert c.pins_android and not c.pins_ios
        assert c.verdict == "inconsistent"
        assert c.android_cross_unpinned == 1.0

    def test_android_only_inconclusive(self):
        c = classify_pair(obs(ap={"x"}, iu={"y"}))
        assert c.verdict == "inconclusive"

    def test_ios_only_inconsistent(self):
        c = classify_pair(obs(ip={"x"}, au={"x"}))
        assert c.pins_ios and not c.pins_android
        assert c.verdict == "inconsistent"
        assert c.ios_cross_unpinned == 1.0


class TestSummaryAndFigures:
    def _classifications(self):
        return [
            classify_pair(obs(ap={"x"}, ip={"x"})),  # both consistent
            classify_pair(obs(ap={"x", "e"}, ip={"x"}, iu={"e"})),  # both inc.
            classify_pair(obs(ap={"e"}, ip={"f"})),  # both inconclusive
            classify_pair(obs(ap={"x"}, iu={"x"})),  # android-only inc.
            classify_pair(obs(ap={"x"})),  # android-only inconclusive
            classify_pair(obs(ip={"x"}, au={"x"})),  # ios-only inc.
            classify_pair(obs()),  # none
        ]

    def test_summary_counts(self):
        summary = summarize_pairs(self._classifications())
        assert summary.total_pinning_either == 6
        assert summary.pins_both == 3
        assert summary.both_consistent == 1
        assert summary.both_identical == 1
        assert summary.both_inconsistent == 1
        assert summary.both_inconclusive == 1
        assert summary.android_only == 2
        assert summary.android_only_inconsistent == 1
        assert summary.ios_only == 1
        assert summary.ios_only_inconsistent == 1

    def test_figure2_table_rows(self):
        table = figure2_table(summarize_pairs(self._classifications()))
        rendered = table.render()
        assert "Pin on both platforms" in rendered

    def test_figure3_only_both_inconsistent(self):
        named = [(f"app{i}", c) for i, c in enumerate(self._classifications())]
        table = figure3_table(named)
        assert len(table.rows) == 1

    def test_figure4_split(self):
        named = [(f"app{i}", c) for i, c in enumerate(self._classifications())]
        android, ios = figure4_tables(named)
        assert len(android.rows) == 2
        assert len(ios.rows) == 1


class TestNoDataFields:
    """One-sided pairs carry ``None`` (no data), never a fabricated 0.0."""

    def test_ios_only_pinner_has_no_android_side_numbers(self):
        c = classify_pair(obs(ip={"x"}, au={"y"}))
        assert c.jaccard is None
        assert c.android_cross_unpinned is None
        # iOS pinned something, so its direction IS measured (a real 0).
        assert c.ios_cross_unpinned == 0.0

    def test_android_only_pinner_has_no_ios_side_numbers(self):
        c = classify_pair(obs(ap={"x"}, iu={"y"}))
        assert c.jaccard is None
        assert c.ios_cross_unpinned is None
        assert c.android_cross_unpinned == 0.0

    def test_no_pinning_pair_has_all_none(self):
        c = classify_pair(obs(au={"a"}, iu={"a"}))
        assert c.jaccard is None
        assert c.android_cross_unpinned is None
        assert c.ios_cross_unpinned is None

    def test_undefined_cells_render_no_data_not_zero(self):
        """A figure row over an undefined value prints "—", never "0.00"."""
        from repro.core.analysis.consistency import ConsistencyClassification
        from repro.reporting.tables import NO_DATA

        c = ConsistencyClassification(
            pins_android=True,
            pins_ios=True,
            verdict="inconsistent",
            jaccard=None,
            android_cross_unpinned=0.5,
            ios_cross_unpinned=None,
        )
        rendered = figure3_table([("app", c)]).render()
        assert NO_DATA in rendered
        assert "0.00" not in rendered
        assert "0%" not in rendered.replace("50%", "")

    def test_figure4_renders_only_the_measured_direction(self):
        """Exclusive pinners: the pinning side's percentage is real data;
        the other side's fields are None and are simply never rendered."""
        ios_only = classify_pair(obs(ip={"x"}, au={"y"}))
        android, ios = figure4_tables([("app", ios_only)])
        assert len(android.rows) == 0
        assert len(ios.rows) == 1
        assert "0%" in ios.render()  # measured zero, not fabricated
