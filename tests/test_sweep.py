"""Tests for the scenario-sweep layer: spec, engine, ablation, report.

The executed-sweep tests share one module-scoped run of a small grid
(2 seeds × {full, naive} detectors over a tiny corpus) with a shared
result store — enough to exercise expansion order, warm-starting,
ablation effects, stability aggregation and the JSON report shape
without re-running studies per test.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.core.sweep import (
    DETECTORS,
    FindingStability,
    SweepEngine,
    SweepPoint,
    SweepPointResult,
    SweepResults,
    SweepSpec,
    apply_detector_ablation,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SWEEP_SCALE = 0.04


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "validate_telemetry", REPO_ROOT / "tools" / "validate_telemetry.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSpec:
    def test_expansion_is_the_cross_product(self):
        spec = SweepSpec(
            seeds=(1, 2), scales=(0.05, 0.1), fault_rates=(0.0, 0.2)
        )
        points = spec.expand()
        assert len(points) == 8
        assert len(set(points)) == 8

    def test_seeds_vary_fastest(self):
        spec = SweepSpec(seeds=(1, 2), scales=(0.05, 0.1))
        points = spec.expand()
        assert [(p.scale, p.seed) for p in points] == [
            (0.05, 1),
            (0.05, 2),
            (0.1, 1),
            (0.1, 2),
        ]

    def test_full_detector_runs_before_its_ablated_siblings(self):
        """Ordering is a warm-start property: the full point must
        populate the store before ablated siblings look it up."""
        spec = SweepSpec(
            seeds=(1,), scales=(0.05,), detectors=("naive", "full")
        )
        assert [p.detector for p in spec.expand()] == ["full", "naive"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seeds": ()},
            {"seeds": (1.5,)},
            {"seeds": (True,)},
            {"scales": (0,)},
            {"scales": (-0.1,)},
            {"fault_rates": (1.5,)},
            {"detectors": ("bogus",)},
            {"workers": (0,)},
            {"workers": ("many",)},
            {"seeds": (1, 1)},
        ],
    )
    def test_invalid_axes_rejected(self, kwargs):
        base = dict(seeds=(1,), scales=(0.05,))
        with pytest.raises(ValueError, match="invalid sweep spec"):
            SweepSpec(**{**base, **kwargs})

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            SweepSpec.from_dict({"seeds": [1], "scales": [0.1], "speed": [9]})

    def test_from_dict_requires_both_axes(self):
        with pytest.raises(ValueError, match="'scales' is required"):
            SweepSpec.from_dict({"seeds": [1]})

    def test_json_spec_roundtrip(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {"seeds": [1, 2], "scales": [0.05], "detectors": ["full"]}
            )
        )
        spec = SweepSpec.load(path)
        assert spec.seeds == (1, 2)
        assert spec.scales == (0.05,)

    def test_toml_spec_gated_on_tomllib(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text("seeds = [1]\nscales = [0.05]\n")
        if sys.version_info >= (3, 11):
            assert SweepSpec.load(path).seeds == (1,)
        else:
            with pytest.raises(ValueError, match="3.11"):
                SweepSpec.load(path)

    def test_slug_is_filesystem_safe(self):
        point = SweepPoint(seed=2022, scale=0.05, fault_rate=0.1)
        assert "/" not in point.slug()
        assert "." not in point.slug()


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One executed 4-point sweep with a shared store, reused by every
    inspection test below."""
    root = tmp_path_factory.mktemp("sweep")
    spec = SweepSpec(
        seeds=(2022, 2023),
        scales=(SWEEP_SCALE,),
        detectors=("full", "naive"),
    )
    engine = SweepEngine(
        spec,
        store_dir=str(root / "store"),
        resume_dir=str(root / "journals"),
        metrics_dir=str(root / "metrics"),
    )
    return root, engine.run()


class TestEngine:
    def test_every_point_executed_in_order(self, sweep):
        _, results = sweep
        assert [p.point.detector for p in results.points] == [
            "full",
            "full",
            "naive",
            "naive",
        ]
        assert all(p.failures == 0 for p in results.points)

    def test_findings_are_populated(self, sweep):
        _, results = sweep
        for point in results.points:
            assert point.findings["prevalence.dynamic.android.common"] is not None
            assert "consistency.mean_jaccard" in point.findings

    def test_ablated_points_warm_start_fully(self, sweep):
        """A detector-ablated point shares every pipeline unit with its
        full-detector sibling: 100 % store hit rate, zero misses."""
        _, results = sweep
        full = [p for p in results.points if p.point.detector == "full"]
        naive = [p for p in results.points if p.point.detector == "naive"]
        for point in full:
            assert point.store_hits == 0  # cold: different corpus each
            assert point.store_misses > 0
        for point in naive:
            assert point.store_hit_rate == 1.0
            assert point.store_misses == 0

    def test_naive_detector_overflags(self, sweep):
        """The ablation must change the findings in the documented
        direction: the naive detector flags every MITM failure, so its
        prevalence dominates the differential detector's."""
        _, results = sweep
        by_key = {
            (p.point.seed, p.point.detector): p.findings
            for p in results.points
        }
        for seed in (2022, 2023):
            for dataset in ("common", "popular", "random"):
                name = f"prevalence.dynamic.android.{dataset}"
                assert by_key[(seed, "naive")][name] >= by_key[
                    (seed, "full")
                ][name]

    def test_per_point_journals_created(self, sweep):
        root, results = sweep
        journals = sorted((root / "journals").glob("*.journal"))
        assert len(journals) == len(results.points)

    def test_per_point_metrics_written(self, sweep):
        root, results = sweep
        metrics = sorted((root / "metrics").glob("point-*.json"))
        assert len(metrics) == len(results.points)
        with open(metrics[2]) as fh:  # first naive point: all hits
            counters = json.load(fh)["counters"]
        assert counters["store.units.hit"] > 0
        assert counters.get("store.units.miss", 0) == 0

    def test_sweep_telemetry_is_merged_across_points(self, sweep):
        _, results = sweep
        counters = results.telemetry.counters()
        # Both naive points' hits landed in one aggregate document.
        assert counters["store.units.hit"] == sum(
            p.store_hits for p in results.points if p.store_hits
        )
        assert counters["sweep.ablation.redetected"] > 0

    def test_faulted_point_runs_store_less(self, tmp_path):
        spec = SweepSpec(
            seeds=(2022,), scales=(SWEEP_SCALE,), fault_rates=(0.5,)
        )
        engine = SweepEngine(spec, store_dir=str(tmp_path / "store"))
        results = engine.run()
        point = results.points[0]
        assert point.store_hits is None  # hits would bypass injection
        assert point.failures > 0


class TestAblation:
    def test_full_is_identity(self, study_results):
        assert apply_detector_ablation(study_results, "full") is study_results

    def test_unknown_detector_rejected(self, study_results):
        with pytest.raises(ValueError, match="unknown detector"):
            apply_detector_ablation(study_results, "bogus")

    def test_ablation_does_not_mutate_the_original(self, study_results):
        before = {
            key: [sorted(r.pinned_destinations) for r in results]
            for key, results in study_results.dynamic_results.items()
        }
        apply_detector_ablation(study_results, "naive")
        after = {
            key: [sorted(r.pinned_destinations) for r in results]
            for key, results in study_results.dynamic_results.items()
        }
        assert before == after

    def test_no_tls13_is_a_subset_story(self, study_results):
        """Disabling the TLS 1.3 heuristics degrades both detector legs
        over the same captures — verdict maps stay over the same
        destination universe."""
        ablated = apply_detector_ablation(study_results, "no-tls13")
        for key, results in study_results.dynamic_results.items():
            for original, redetected in zip(results, ablated.dynamic_results[key]):
                assert original.app_id == redetected.app_id
                assert set(original.verdicts) == set(redetected.verdicts)


class TestReport:
    def test_stability_groups_exclude_the_seed(self, sweep):
        _, results = sweep
        groups = {s.group for s in results.stability()}
        assert len(groups) == 2  # full and naive; seeds folded in
        for entry in results.stability():
            assert entry.n_points == 2
            assert "seed" not in entry.group

    def test_report_json_matches_schema(self, sweep, tmp_path):
        _, results = sweep
        report = tmp_path / "report.json"
        report.write_text(json.dumps(results.to_json_dict()))
        validator = _load_validator()
        violations = validator.validate_file(
            REPO_ROOT / "schemas" / "sweep_report.schema.json", report
        )
        assert violations == []

    def test_sign_flip_detection(self):
        entry = FindingStability(
            finding="delta.x", group="g", values=[-0.2, 0.3]
        )
        assert entry.sign_flip
        assert entry.spread == pytest.approx(0.5)
        steady = FindingStability(
            finding="delta.y", group="g", values=[0.1, 0.3]
        )
        assert not steady.sign_flip

    def test_undefined_findings_render_no_data(self):
        """A finding no seed measured must render "—" with N=0/k, never
        a fabricated 0.0000 row."""
        from repro.reporting.tables import NO_DATA

        points = [
            SweepPointResult(
                point=SweepPoint(seed=seed, scale=0.05),
                findings={"pii.ios.rate_delta": None},
            )
            for seed in (1, 2)
        ]
        results = SweepResults(
            spec=SweepSpec(seeds=(1, 2), scales=(0.05,)), points=points
        )
        entry = results.stability()[0]
        assert entry.n_defined == 0
        assert entry.mean is None
        table = results.stability_table().render()
        assert NO_DATA in table
        assert "0/2" in table
        assert "0.0000" not in table


class TestDetectorsConstant:
    def test_full_is_always_available(self):
        assert "full" in DETECTORS


class TestCLI:
    def test_sweep_command_end_to_end(self, capsys, tmp_path):
        from repro.cli import main

        report = tmp_path / "report.json"
        assert (
            main(
                [
                    "--scale",
                    "0.02",
                    "sweep",
                    "--sweep-seeds",
                    "2022,2023",
                    "--store",
                    str(tmp_path / "store"),
                    "--report-out",
                    str(report),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Sweep grid" in out
        assert "Cross-seed stability" in out
        document = json.loads(report.read_text())
        assert document["schema"] == "repro-sweep-v1"
        assert len(document["points"]) == 2

    def test_sweep_spec_file(self, capsys, tmp_path):
        from repro.cli import main

        spec = tmp_path / "grid.json"
        spec.write_text(json.dumps({"seeds": [2022], "scales": [0.02]}))
        assert main(["sweep", "--spec", str(spec)]) == 0
        assert "Sweep grid" in capsys.readouterr().out

    def test_sweep_spec_and_axis_flags_are_exclusive(self, capsys, tmp_path):
        from repro.cli import main

        spec = tmp_path / "grid.json"
        spec.write_text(json.dumps({"seeds": [2022], "scales": [0.02]}))
        assert (
            main(
                ["sweep", "--spec", str(spec), "--sweep-seeds", "1,2"]
            )
            == 2
        )
        assert "exclusive" in capsys.readouterr().err

    def test_sweep_bad_report_dir_fails_before_running(self, capsys):
        from repro.cli import main

        assert (
            main(["sweep", "--report-out", "/nonexistent/dir/report.json"])
            == 2
        )
        assert "does not exist" in capsys.readouterr().err
