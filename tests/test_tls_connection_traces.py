"""Trace synthesis for negotiation failures and abort styles."""


from repro.tls.connection import (
    TEARDOWN_FIN,
    TEARDOWN_RST,
    synthesize_trace,
)
from repro.tls.handshake import HandshakeOutcome
from repro.tls.records import ContentType, Direction, TLSVersion
from repro.util.rng import DeterministicRng


class TestNegotiationFailureTraces:
    def test_no_common_version(self):
        outcome = HandshakeOutcome(
            success=False, failure_reason="no_common_version"
        )
        trace = synthesize_trace(outcome, DeterministicRng(1))
        assert trace.teardown == TEARDOWN_FIN
        # ClientHello + server alert, nothing else.
        assert len(trace.records) == 2
        assert trace.records[1].content_type is ContentType.ALERT
        assert trace.records[1].direction is Direction.SERVER_TO_CLIENT
        assert not trace.client_app_data_records()

    def test_no_common_cipher(self):
        outcome = HandshakeOutcome(
            success=False,
            version=TLSVersion.TLS12,
            failure_reason="no_common_cipher",
        )
        trace = synthesize_trace(outcome, DeterministicRng(2))
        assert trace.teardown == TEARDOWN_FIN
        alerts = [
            r for r in trace.records if r.content_type is ContentType.ALERT
        ]
        assert len(alerts) == 1

    def test_rejection_abort_styles_vary(self):
        from repro.tls.alerts import Alert, AlertDescription

        outcome = HandshakeOutcome(
            success=False,
            version=TLSVersion.TLS12,
            client_alert=Alert(AlertDescription.BAD_CERTIFICATE),
            failure_reason="pin_mismatch",
        )
        teardowns = {
            synthesize_trace(outcome, DeterministicRng(i)).teardown
            for i in range(40)
        }
        # Both abort styles occur across seeds (Section 4.2.2: alert *or*
        # TCP reset).
        assert teardowns == {TEARDOWN_RST, TEARDOWN_FIN}

    def test_rejection_sometimes_silent(self):
        """Some clients reset without sending any alert record."""
        from repro.tls.alerts import Alert, AlertDescription

        outcome = HandshakeOutcome(
            success=False,
            version=TLSVersion.TLS13,
            client_alert=Alert(AlertDescription.BAD_CERTIFICATE),
            failure_reason="pin_mismatch",
        )
        alert_counts = set()
        for i in range(40):
            trace = synthesize_trace(outcome, DeterministicRng(i))
            alert_counts.add(len(trace.client_app_data_records()))
        assert alert_counts == {0, 1}

    def test_server_payload_records(self):
        outcome = HandshakeOutcome(
            success=True, version=TLSVersion.TLS12, cipher=None
        )
        trace = synthesize_trace(
            outcome,
            DeterministicRng(3),
            client_payload_records=1,
            server_payload_records=2,
        )
        server_data = [
            r
            for r in trace.records
            if r.direction is Direction.SERVER_TO_CLIENT
            and r.content_type is ContentType.APPLICATION_DATA
        ]
        assert len(server_data) == 2

    def test_app_data_lengths_realistic(self):
        outcome = HandshakeOutcome(success=True, version=TLSVersion.TLS13)
        trace = synthesize_trace(
            outcome, DeterministicRng(4), client_payload_records=50
        )
        lengths = [r.length for r in trace.client_app_data_records()[1:]]
        assert all(80 <= l <= 16384 for l in lengths)
