"""Unit tests for certificate-level analyses (Table 6 / Section 5.3)."""


from repro.core.analysis.certificates import (
    PKIClassification,
    classify_pinned_destinations,
    pki_table,
)


class TestPKIClassification:
    def test_add_dispatch(self):
        c = PKIClassification(platform="android")
        c.add("default")
        c.add("default")
        c.add("custom")
        c.add("self-signed")
        c.add("unknown-kind")
        assert c.default_pki == 2
        assert c.custom_pki == 1
        assert c.self_signed == 1
        assert c.unavailable == 1

    def test_table_rendering(self):
        rows = [
            PKIClassification(platform="android", default_pki=163, custom_pki=4),
            PKIClassification(platform="ios", default_pki=238, custom_pki=1),
        ]
        rendered = pki_table(rows).render()
        assert "163" in rendered and "238" in rendered


class TestClassifyFromStudy:
    def test_default_dominates(self, small_corpus, study_results):
        for platform in ("android", "ios"):
            c = classify_pinned_destinations(
                small_corpus, platform, study_results.all_dynamic(platform)
            )
            total = c.default_pki + c.custom_pki + c.self_signed
            assert total > 0
            assert c.default_pki >= 0.6 * total

    def test_classification_matches_endpoint_ground_truth(
        self, small_corpus, study_results
    ):
        c = classify_pinned_destinations(
            small_corpus, "android", study_results.all_dynamic("android")
        )
        gt = {"default": 0, "custom": 0, "self-signed": 0}
        seen = set()
        for result in study_results.all_dynamic("android"):
            for destination in result.pinned_destinations:
                if destination in seen:
                    continue
                seen.add(destination)
                gt[small_corpus.registry.resolve(destination).pki_kind] += 1
        assert c.default_pki == gt["default"]
        assert c.custom_pki == gt["custom"]
        assert c.self_signed == gt["self-signed"]
