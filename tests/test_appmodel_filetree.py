"""Tests for repro.appmodel.filetree."""

import re

import pytest

from repro.appmodel.filetree import FileNode, FileTree
from repro.errors import AppModelError


class TestFileNode:
    def test_name_and_extension(self):
        node = FileNode("assets/certs/server.PEM")
        assert node.name == "server.PEM"
        assert node.extension == ".pem"

    def test_no_extension(self):
        assert FileNode("bin/app").extension == ""


class TestFileTree:
    def test_add_and_get(self):
        tree = FileTree()
        tree.add("a/b.txt", "hello")
        assert tree.get("a/b.txt").content == "hello"
        assert "a/b.txt" in tree
        assert len(tree) == 1

    def test_invalid_paths(self):
        tree = FileTree()
        with pytest.raises(AppModelError):
            tree.add("")
        with pytest.raises(AppModelError):
            tree.add("/absolute/path")

    def test_replace(self):
        tree = FileTree()
        tree.add("x", "one")
        tree.add("x", "two")
        assert tree.get("x").content == "two"
        assert len(tree) == 1

    def test_walk_sorted(self):
        tree = FileTree()
        tree.add("z.txt")
        tree.add("a.txt")
        assert [n.path for n in tree.walk()] == ["a.txt", "z.txt"]

    def test_with_extensions(self):
        tree = FileTree()
        tree.add("one.pem")
        tree.add("two.der")
        tree.add("three.txt")
        matched = tree.with_extensions((".pem", ".der"))
        assert {n.path for n in matched} == {"one.pem", "two.der"}

    def test_grep_skips_binary_by_default(self):
        tree = FileTree()
        tree.add("code.smali", "needle here")
        tree.add("lib.so", "needle binary", binary=True)
        pattern = re.compile("needle")
        hits = tree.grep(pattern)
        assert [n.path for n, _ in hits] == ["code.smali"]
        hits_all = tree.grep(pattern, include_binary=True)
        assert len(hits_all) == 2

    def test_grep_multiple_matches_per_file(self):
        tree = FileTree()
        tree.add("f", "aaa bbb aaa")
        assert len(tree.grep(re.compile("aaa"))) == 2

    def test_paths(self):
        tree = FileTree()
        tree.add("b")
        tree.add("a")
        assert tree.paths() == ["a", "b"]
