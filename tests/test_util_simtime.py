"""Tests for repro.util.simtime."""

import pytest

from repro.util.simtime import (
    SECONDS_PER_DAY,
    STUDY_START,
    SimClock,
    Timestamp,
)


class TestTimestamp:
    def test_ordering(self):
        assert Timestamp(1) < Timestamp(2)

    def test_plus_days(self):
        t = Timestamp(0).plus_days(2)
        assert t.unix == 2 * SECONDS_PER_DAY

    def test_plus_years(self):
        t = Timestamp(0).plus_years(1)
        assert t.unix == 365 * SECONDS_PER_DAY

    def test_negative_days(self):
        assert Timestamp(SECONDS_PER_DAY).plus_days(-1).unix == 0

    def test_days_until(self):
        assert Timestamp(0).days_until(Timestamp(SECONDS_PER_DAY)) == 1.0

    def test_isoformat_is_utc(self):
        assert STUDY_START.isoformat() == "2021-05-01T00:00:00Z"

    def test_hashable_and_frozen(self):
        t = Timestamp(5)
        assert hash(t) == hash(Timestamp(5))
        with pytest.raises(Exception):
            t.unix = 6


class TestSimClock:
    def test_starts_at_study_epoch(self):
        assert SimClock().now == STUDY_START

    def test_advance(self):
        clock = SimClock()
        clock.advance(30)
        assert clock.now.unix == STUDY_START.unix + 30

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_ticks(self):
        clock = SimClock()
        stamps = list(clock.ticks(10, 3))
        assert [s.unix - STUDY_START.unix for s in stamps] == [0, 10, 20]
        assert clock.now.unix == STUDY_START.unix + 30
