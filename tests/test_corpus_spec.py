"""Tests for repro.corpus.spec: spec-based worker bootstrap parity.

The engine ships workers a :class:`CorpusSpec` instead of a pickled
corpus, so everything rests on one claim: a spec-rebuilt corpus is
indistinguishable from its parent.  These tests pin that down at three
levels — fingerprints (the result store's corpus key), content (a deep
digest over every generated app), and behaviour (byte-identical per-app
results for all three unit kinds, and result-store hits across the
parent/rebuilt boundary).
"""

import pickle

import pytest

import repro.core.exec.engine as engine_mod
from repro.core.exec import ResultStore, WorkerBootstrap
from repro.core.exec.engine import _build_state, _run_unit
from repro.core.exec.resultstore import corpus_fingerprint
from repro.corpus import (
    CorpusConfig,
    CorpusGenerator,
    CorpusSpec,
    content_fingerprint,
)


@pytest.fixture(scope="module")
def config():
    return CorpusConfig(seed=1337).scaled(0.015)


@pytest.fixture(scope="module")
def corpus(config):
    return CorpusGenerator(config).generate()


@pytest.fixture(scope="module")
def spec(corpus):
    derived = CorpusSpec.from_corpus(corpus)
    assert derived is not None
    return derived


@pytest.fixture(scope="module")
def rebuilt(spec):
    return spec.build()


def _mutated_corpus():
    """A corpus whose shape no generator config produces."""
    corpus = CorpusGenerator(CorpusConfig(seed=7).scaled(0.01)).generate()
    corpus.datasets[("android", "common")].pop()
    return corpus


class TestCorpusSpec:
    def test_from_corpus_round_trips_config(self, config, corpus, spec):
        assert spec == CorpusSpec.from_config(config)
        assert spec.config() == config
        assert spec.seed == corpus.seed

    def test_fingerprint_matches_result_store_key(self, corpus, spec):
        # The spec's fingerprint IS the result-store corpus fingerprint:
        # a worker can verify its rebuild without ever seeing the parent.
        assert spec.fingerprint() == corpus_fingerprint(corpus)

    def test_mutated_corpus_is_not_spec_representable(self):
        assert CorpusSpec.from_corpus(_mutated_corpus()) is None

    def test_missing_dataset_is_not_spec_representable(self):
        corpus = CorpusGenerator(CorpusConfig(seed=7).scaled(0.01)).generate()
        del corpus.datasets[("ios", "random")]
        assert CorpusSpec.from_corpus(corpus) is None


class TestRebuildParity:
    def test_rebuild_fingerprints_match(self, corpus, rebuilt):
        assert corpus_fingerprint(rebuilt) == corpus_fingerprint(corpus)

    def test_rebuild_content_matches(self, corpus, rebuilt):
        # Deep digest over every app, pinning spec, endpoint and CT entry
        # — far stronger than the shape fingerprint.
        assert content_fingerprint(rebuilt) == content_fingerprint(corpus)

    def test_content_fingerprint_separates_seeds(self):
        a = CorpusGenerator(CorpusConfig(seed=1).scaled(0.01)).generate()
        b = CorpusGenerator(CorpusConfig(seed=2).scaled(0.01)).generate()
        assert content_fingerprint(a) != content_fingerprint(b)

    @pytest.mark.parametrize(
        "key", [("android", "common"), ("ios", "popular")]
    )
    def test_per_app_results_identical_all_kinds(self, corpus, rebuilt, key):
        """Units run against a rebuilt corpus are byte-identical."""
        parent = _build_state(corpus, 30.0)
        worker = _build_state(rebuilt, 30.0)
        indices = tuple(range(min(3, len(corpus.dataset(*key)))))

        static_unit = ("static", key[0], key[1], indices, None)
        dynamic_unit = ("dynamic", key[0], key[1], indices, 0.0)
        parent_static = _run_unit(parent, static_unit)
        worker_static = _run_unit(worker, static_unit)
        parent_dynamic = _run_unit(parent, dynamic_unit)
        worker_dynamic = _run_unit(worker, dynamic_unit)

        pins = tuple(
            tuple(sorted(result.pinned_destinations))
            for result in parent_dynamic
        )
        circ_unit = ("circumvent", key[0], key[1], indices, pins)
        parent_circ = _run_unit(parent, circ_unit)
        worker_circ = _run_unit(worker, circ_unit)

        # TrafficCapture has no __eq__ (dataclass results holding one
        # compare by capture identity), so byte-identical pickles are
        # both the strongest and the only workable comparison.
        for mine, theirs in (
            (parent_static, worker_static),
            (parent_dynamic, worker_dynamic),
            (parent_circ, worker_circ),
        ):
            assert pickle.dumps(mine) == pickle.dumps(theirs)

    def test_store_entries_hit_across_the_rebuild_boundary(
        self, corpus, rebuilt, tmp_path
    ):
        """Results published against the parent corpus are found by a
        store handle keyed on the rebuilt corpus — the property that
        makes warm runs independent of which process built the corpus."""
        unit = ("static", "android", "common", (0, 1), None)
        results = _run_unit(_build_state(corpus, 30.0), unit)
        ResultStore(tmp_path, corpus).publish_unit(unit, results)
        warm = ResultStore(tmp_path, rebuilt).lookup_unit(unit)
        assert warm == results


class TestWorkerBootstrap:
    def test_auto_mode_ships_spec_not_corpus(self, corpus):
        bootstrap = WorkerBootstrap.for_corpus(corpus)
        assert bootstrap.spec is not None
        assert bootstrap.corpus is None

    def test_spec_bootstrap_is_at_least_10x_smaller(self, corpus):
        bootstrap = WorkerBootstrap.for_corpus(corpus)
        full = len(pickle.dumps(corpus))
        assert bootstrap.payload_bytes() * 10 <= full

    def test_pickle_mode_ships_corpus(self, corpus):
        bootstrap = WorkerBootstrap.for_corpus(corpus, mode="pickle")
        assert bootstrap.corpus is corpus
        assert bootstrap.payload_bytes() >= len(pickle.dumps(corpus))

    def test_spec_mode_rejects_unrepresentable_corpus(self):
        with pytest.raises(ValueError):
            WorkerBootstrap.for_corpus(_mutated_corpus(), mode="spec")

    def test_auto_mode_falls_back_to_pickle(self):
        corpus = _mutated_corpus()
        bootstrap = WorkerBootstrap.for_corpus(corpus)
        assert bootstrap.spec is None
        assert bootstrap.corpus is corpus

    def test_resolve_rebuilds_and_verifies(self, corpus, monkeypatch):
        monkeypatch.setattr(engine_mod, "_PARENT_CORPUS", None)
        resolved, how = WorkerBootstrap.for_corpus(corpus).resolve()
        assert how == "rebuilt"
        assert corpus_fingerprint(resolved) == corpus_fingerprint(corpus)

    def test_resolve_prefers_forked_parent(self, corpus, monkeypatch):
        monkeypatch.setattr(engine_mod, "_PARENT_CORPUS", corpus)
        resolved, how = WorkerBootstrap.for_corpus(corpus).resolve()
        assert how == "inherited"
        assert resolved is corpus

    def test_resolve_rejects_divergent_rebuild(self, corpus, monkeypatch):
        monkeypatch.setattr(engine_mod, "_PARENT_CORPUS", None)
        spec = CorpusSpec.from_corpus(corpus)
        bad = WorkerBootstrap(fingerprint="not-the-fingerprint", spec=spec)
        with pytest.raises(RuntimeError):
            bad.resolve()
