"""Tests for repro.util.rng."""

import pytest

from repro.util.rng import DeterministicRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_parent_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_non_negative_63_bit(self):
        for seed in range(50):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**63

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_children_are_independent(self):
        parent = DeterministicRng(7)
        child_a = parent.child("a")
        child_b = parent.child("b")
        assert child_a.seed != child_b.seed

    def test_child_does_not_consume_parent_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        a.child("x")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_chance_extremes(self):
        rng = DeterministicRng(1)
        assert rng.chance(1.0) is True
        assert rng.chance(0.0) is False
        assert rng.chance(1.5) is True
        assert rng.chance(-0.5) is False

    def test_chance_rate(self):
        rng = DeterministicRng(3)
        hits = sum(rng.chance(0.3) for _ in range(10_000))
        assert 2700 < hits < 3300

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).choice([])

    def test_sample_clamps(self):
        rng = DeterministicRng(1)
        assert sorted(rng.sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_shuffled_does_not_mutate(self):
        rng = DeterministicRng(1)
        items = [1, 2, 3, 4, 5]
        out = rng.shuffled(items)
        assert items == [1, 2, 3, 4, 5]
        assert sorted(out) == items

    def test_weighted_choice_respects_weights(self):
        rng = DeterministicRng(5)
        picks = [
            rng.weighted_choice(["a", "b"], [0.99, 0.01]) for _ in range(500)
        ]
        assert picks.count("a") > 450

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).weighted_choice(["a"], [1.0, 2.0])

    def test_weighted_sample_no_replacement(self):
        rng = DeterministicRng(2)
        out = rng.weighted_sample(list(range(10)), [1.0] * 10, 10)
        assert sorted(out) == list(range(10))

    def test_weighted_sample_clamps(self):
        rng = DeterministicRng(2)
        assert len(rng.weighted_sample([1, 2], [1, 1], 5)) == 2

    def test_poisson_zero_lambda(self):
        assert DeterministicRng(1).poisson(0) == 0

    def test_poisson_mean(self):
        rng = DeterministicRng(4)
        draws = [rng.poisson(4.0) for _ in range(5000)]
        mean = sum(draws) / len(draws)
        assert 3.7 < mean < 4.3

    def test_zipf_rank_bounds(self):
        rng = DeterministicRng(6)
        for _ in range(200):
            assert 1 <= rng.zipf_rank(10, 1.2) <= 10

    def test_zipf_rank_skew(self):
        rng = DeterministicRng(6)
        draws = [rng.zipf_rank(10, 1.2) for _ in range(2000)]
        assert draws.count(1) > draws.count(10)

    def test_zipf_invalid_n(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).zipf_rank(0)

    def test_hex_string_format(self):
        token = DeterministicRng(1).hex_string(32)
        assert len(token) == 32
        assert all(c in "0123456789abcdef" for c in token)

    def test_random_bytes_length(self):
        assert len(DeterministicRng(1).random_bytes(16)) == 16
