"""Tests for the store fronts and collection campaign (paper §3, App. A)."""

import pytest

from repro.corpus.crawler import CollectionCampaign
from repro.corpus.stores import AlternativeTo, AppleAppStore, ITunesSession, RateLimitedCrawler
from repro.errors import CorpusError, DeviceError
from repro.util.simtime import SimClock


@pytest.fixture(scope="module")
def campaign(small_corpus):
    return CollectionCampaign(small_corpus, seed=5)


class TestPlayStore:
    def test_download_listed_app(self, small_corpus, campaign):
        app_id = small_corpus.dataset("android", "popular")[0].app.app_id
        packaged = campaign.play_store.download(app_id)
        assert packaged.app.app_id == app_id

    def test_unlisted_app_rejected(self, campaign):
        with pytest.raises(CorpusError):
            campaign.play_store.download("com.not.listed")

    def test_top_free_rank_order(self, campaign):
        chart = campaign.play_store.top_free("Games")
        ranks = [l.rank for l in chart]
        assert ranks == sorted(ranks)


class TestAppleAppStore:
    def test_search_cap(self, campaign):
        results = campaign.app_store.itunes_search("Games", limit=5000)
        assert len(results) <= AppleAppStore.SEARCH_RESULT_CAP

    def test_download_requires_healthy_session(self, small_corpus, campaign):
        app_id = small_corpus.dataset("ios", "popular")[0].app.app_id
        session = ITunesSession(downloads_per_reauth=1)
        campaign.app_store.download(app_id, session)
        with pytest.raises(DeviceError):
            campaign.app_store.download(app_id, session)
        session.reauthenticate()
        campaign.app_store.download(app_id, session)
        assert session.interventions == 1


class TestITunesSession:
    def test_reauth_cycle(self):
        session = ITunesSession(downloads_per_reauth=3)
        for _ in range(3):
            session.consume_download()
        assert session.needs_attention()
        session.reauthenticate()
        assert not session.needs_attention()


class TestRateLimitedCrawler:
    def test_user_agent_must_carry_contact(self):
        with pytest.raises(CorpusError):
            RateLimitedCrawler(user_agent="anonymous-bot/1.0")

    def test_rate_limit_enforced(self, small_corpus):
        crawler = RateLimitedCrawler(clock=SimClock())
        site = AlternativeTo(small_corpus)
        crawler.crawl_alternativeto(site, max_pages=20)
        assert crawler.log.max_rate_per_second() <= 1.0

    def test_crawl_log_counts(self, small_corpus):
        crawler = RateLimitedCrawler()
        crawler.crawl_alternativeto(AlternativeTo(small_corpus), max_pages=7)
        assert len(crawler.log) == min(7, AlternativeTo(small_corpus).page_count)


class TestAlternativeTo:
    def test_pages_cover_common_pairs(self, small_corpus):
        site = AlternativeTo(small_corpus)
        assert site.page_count == len(small_corpus.dataset("android", "common"))

    def test_both_store_links(self, small_corpus):
        site = AlternativeTo(small_corpus)
        _, android_id, ios_id = site.page(0)
        assert android_id and ios_id


class TestCollectionCampaign:
    def test_collect_common_matches_generator(self, small_corpus, campaign):
        report = campaign.collect_common()
        assert len(report.common_pairs) == len(
            small_corpus.dataset("android", "common")
        )
        assert len(report.android_apps) == len(report.ios_apps)
        generated = {
            p.app.app_id for p in small_corpus.dataset("android", "common")
        }
        collected = {p.app.app_id for p in report.android_apps}
        assert collected == generated

    def test_collect_popular(self, campaign):
        report = campaign.collect_popular(per_platform=20)
        assert len(report.android_apps) == 20
        assert len(report.ios_apps) == 20
        assert all(p.app.platform == "android" for p in report.android_apps)
        assert all(p.app.platform == "ios" for p in report.ios_apps)

    def test_collect_random(self, campaign):
        report = campaign.collect_random(per_platform=15)
        assert len(report.android_apps) == 15
        assert len(report.ios_apps) == 15

    def test_itunes_interventions_counted(self, small_corpus):
        campaign = CollectionCampaign(small_corpus, seed=6)
        # Force a tiny re-auth budget so the gauntlet bites.
        n = len(small_corpus.dataset("ios", "common"))
        report = campaign.collect_common()
        # Default budget (200) is generous; interventions only appear for
        # large crawls.
        assert report.itunes_interventions == max(0, (n - 1) // 200)
