"""Tests for repro.core.static.search, nsc_analysis, ctlookup, decompile."""

import pytest

from repro.appmodel.filetree import FileTree
from repro.core.static.ctlookup import resolve_pins
from repro.core.static.decompile import decompile_android, decrypt_ios
from repro.core.static.nsc_analysis import analyze_nsc
from repro.core.static.search import (
    CERT_EXTENSIONS,
    HASH_PATTERN,
    PinFinding,
    scan_tree,
)
from repro.errors import DeviceError
from repro.pki.authority import PKIHierarchy
from repro.pki.ctlog import CTLog
from repro.util.encoding import b64encode
from repro.util.rng import DeterministicRng


@pytest.fixture(scope="module")
def issued():
    hierarchy = PKIHierarchy(DeterministicRng(101))
    return hierarchy.issue_leaf_chain("scan.example.com", DeterministicRng(102))


class TestHashRegex:
    def test_matches_base64_pin(self):
        assert HASH_PATTERN.search("sha256/WW91IGZvdW5kIHRoZSBwaW4hISE=")

    def test_matches_sha1(self):
        assert HASH_PATTERN.search("sha1/" + "a" * 28)

    def test_matches_hex_digest(self):
        assert HASH_PATTERN.search("sha256/" + "ab" * 32)

    def test_rejects_short_token(self):
        assert not HASH_PATTERN.search("sha256/short")

    def test_rejects_other_algorithms(self):
        assert not HASH_PATTERN.search("sha512/" + "a" * 40)

    def test_quoted_pin_matches_whole_token(self):
        pin = "sha256/" + "b" * 43 + "="
        match = HASH_PATTERN.search(f'const-string v1, "{pin}"')
        assert match and match.group(0) == pin

    def test_no_truncated_match_inside_longer_base64_run(self):
        """The pre-anchoring bug: a digest-class run longer than 64 chars
        used to yield a silently truncated 64-char 'pin'.  An overlong run
        is not a pin at all and must not match."""
        assert not HASH_PATTERN.search("sha256/" + "c" * 65)
        assert not HASH_PATTERN.search("sha256/" + "ab" * 40)

    def test_no_match_when_preceded_by_base64_char(self):
        token = "sha256/" + "a" * 43 + "="
        assert not HASH_PATTERN.search("AAAA" + token)
        # A non-digest separator restores the match.
        assert HASH_PATTERN.search("AAAA." + token)

    def test_boundary_characters_do_not_block(self):
        token = "sha1/" + "a" * 28
        for context in (token, f"({token})", f"x={token};", f"pin:{token}\n"):
            match = HASH_PATTERN.search(context)
            assert match and match.group(0) == token, context

    def test_token_after_base64_padding_matches(self):
        # Padding terminates the preceding run, so a token right after
        # "==" is cleanly delimited.
        token = "sha1/" + "a" * 28
        match = HASH_PATTERN.search("QUJD==" + token)
        assert match and match.group(0) == token


class TestDedupKeys:
    """Dedup keys must be tuples: concatenating subject and serial makes
    ``("CN=A", "BC")`` collide with ``("CN=AB", "C")`` and silently drop a
    distinct certificate."""

    @pytest.fixture()
    def colliding_pem(self):
        from repro.pki.certificate import Certificate, DistinguishedName
        from repro.pki.keys import KeyPair
        from repro.util.simtime import Timestamp

        def cert(common_name, serial, label):
            name = DistinguishedName(common_name=common_name)
            key = KeyPair.generate(DeterministicRng(hash(label) & 0xFFFF))
            return Certificate(
                subject=name,
                issuer=name,
                serial=serial,
                not_before=Timestamp(0),
                not_after=Timestamp(10**9),
                key=key,
            )

        first = cert("A", "BC", "first")
        second = cert("AB", "C", "second")
        assert first.subject.render() + first.serial == (
            second.subject.render() + second.serial
        )
        return first.to_pem() + "\n" + second.to_pem()

    def test_extension_channel_keeps_both_certificates(self, colliding_pem):
        tree = FileTree()
        tree.add("assets/bundle.pem", colliding_pem)
        result = scan_tree(tree)
        assert len(result.certificates) == 2

    def test_pem_channel_keeps_both_certificates(self, colliding_pem):
        tree = FileTree()
        tree.add("res/raw/pins.txt", colliding_pem)
        result = scan_tree(tree)
        assert len(result.certificates) == 2
        assert {c.channel for c in result.certificates} == {"pem"}


class TestScanTree:
    def test_finds_pem_file_by_extension(self, issued):
        tree = FileTree()
        tree.add("assets/server.pem", issued.chain.leaf.to_pem())
        result = scan_tree(tree)
        assert len(result.certificates) == 1
        assert result.certificates[0].channel == "extension"
        assert (
            result.certificates[0].certificate.common_name
            == "scan.example.com"
        )

    def test_finds_base64_der_cer_file(self, issued):
        tree = FileTree()
        tree.add("cert.cer", b64encode(issued.chain.leaf.to_der()))
        result = scan_tree(tree)
        assert len(result.certificates) == 1

    def test_finds_base64_wrapped_pem_cer(self, issued):
        tree = FileTree()
        tree.add(
            "cert2.cer", b64encode(issued.chain.leaf.to_pem().encode("utf-8"))
        )
        result = scan_tree(tree)
        assert len(result.certificates) == 1

    def test_finds_pem_delimiter_in_code(self, issued):
        tree = FileTree()
        tree.add(
            "src/Pinner.java",
            f'String CERT = """{issued.chain.leaf.to_pem()}""";',
        )
        result = scan_tree(tree)
        assert any(f.channel == "pem" for f in result.certificates)

    def test_finds_pin_strings_in_text(self, issued):
        pin = issued.chain.leaf.spki_pin()
        tree = FileTree()
        tree.add("smali/X.smali", f'const-string v1, "{pin}"')
        result = scan_tree(tree)
        assert pin in result.unique_pins()
        assert result.pins[0].channel == "text"

    def test_finds_pins_in_native_binary(self, issued):
        pin = issued.chain.leaf.spki_pin()
        tree = FileTree()
        tree.add("lib/arm64/libpin.so", pin, binary=True)
        result = scan_tree(tree)
        assert result.pins and result.pins[0].channel == "native-strings"

    def test_native_pass_can_be_disabled(self, issued):
        pin = issued.chain.leaf.spki_pin()
        tree = FileTree()
        tree.add("lib/arm64/libpin.so", pin, binary=True)
        result = scan_tree(tree, include_native=False)
        assert not result.has_material()

    def test_obfuscated_material_missed(self, issued):
        from repro.appmodel.package import obfuscate_token

        tree = FileTree()
        tree.add("code.smali", obfuscate_token(issued.chain.leaf.spki_pin()))
        assert not scan_tree(tree).has_material()

    def test_junk_cert_file_ignored(self):
        tree = FileTree()
        tree.add("data/notes.pem", "just some text, not a certificate")
        tree.add("data/junk.der", "!!!! not base64 !!!!")
        assert not scan_tree(tree).has_material()

    def test_deduplicates_same_pin_same_file(self, issued):
        pin = issued.chain.leaf.spki_pin()
        tree = FileTree()
        tree.add("a.txt", f"{pin}\n{pin}\n")
        result = scan_tree(tree)
        assert len(result.pins) == 1

    def test_finding_paths(self, issued):
        tree = FileTree()
        tree.add("a.pem", issued.chain.leaf.to_pem())
        tree.add("b.txt", issued.chain.leaf.spki_pin())
        assert scan_tree(tree).finding_paths() == {"a.pem", "b.txt"}

    def test_all_paper_extensions_covered(self):
        assert set(CERT_EXTENSIONS) == {".der", ".pem", ".crt", ".cert", ".cer"}


class TestNSCAnalysis:
    def _tree_with_nsc(self, pins=True, override=False):
        from repro.appmodel.manifest import AndroidManifest
        from repro.appmodel.nsc import NSCConfig, NSCDomainConfig, NSCPin

        tree = FileTree()
        manifest = AndroidManifest(
            package="com.x",
            network_security_config="@xml/network_security_config",
        )
        tree.add("AndroidManifest.xml", manifest.to_xml())
        dc = NSCDomainConfig(domain="api.x.com", override_pins=override)
        if pins:
            dc.pins.append(NSCPin("SHA-256", "UGlubmVkIQ=="))
        config = NSCConfig(domain_configs=[dc])
        tree.add("res/xml/network_security_config.xml", config.to_xml())
        return tree

    def test_detects_pins(self):
        analysis = analyze_nsc(self._tree_with_nsc())
        assert analysis.uses_nsc and analysis.has_pins
        assert analysis.pins == ["sha256/UGlubmVkIQ=="]
        assert analysis.domains == ["api.x.com"]

    def test_nsc_without_pins(self):
        analysis = analyze_nsc(self._tree_with_nsc(pins=False))
        assert analysis.uses_nsc and not analysis.has_pins

    def test_override_misconfiguration_flagged(self):
        analysis = analyze_nsc(self._tree_with_nsc(override=True))
        assert analysis.misconfigured_override

    def test_no_manifest(self):
        assert not analyze_nsc(FileTree()).uses_nsc

    def test_manifest_without_nsc(self):
        from repro.appmodel.manifest import AndroidManifest

        tree = FileTree()
        tree.add("AndroidManifest.xml", AndroidManifest(package="com.x").to_xml())
        assert not analyze_nsc(tree).uses_nsc

    def test_dangling_nsc_reference(self):
        from repro.appmodel.manifest import AndroidManifest

        tree = FileTree()
        tree.add(
            "AndroidManifest.xml",
            AndroidManifest(
                package="com.x", network_security_config="@xml/missing"
            ).to_xml(),
        )
        assert not analyze_nsc(tree).uses_nsc

    def test_malformed_config_treated_as_unused(self):
        from repro.appmodel.manifest import AndroidManifest

        tree = FileTree()
        tree.add(
            "AndroidManifest.xml",
            AndroidManifest(
                package="com.x", network_security_config="@xml/broken"
            ).to_xml(),
        )
        tree.add("res/xml/broken.xml", "<broken")
        assert not analyze_nsc(tree).uses_nsc


class TestCTLookup:
    def test_resolves_public_pins(self, issued):
        log = CTLog()
        log.log_chain(issued.chain)
        findings = [
            PinFinding("a", issued.chain.leaf.spki_pin(), "text"),
            PinFinding("b", "sha256/" + "A" * 43 + "=", "text"),
        ]
        resolution = resolve_pins(findings, log)
        assert len(resolution.resolved) == 1
        assert len(resolution.unresolved) == 1
        assert resolution.resolution_rate == 0.5
        assert resolution.certificates()

    def test_empty_input(self):
        resolution = resolve_pins([], CTLog())
        assert resolution.resolution_rate == 0.0


class TestDecompileDecrypt:
    def test_decompile_android(self, small_corpus):
        packaged = small_corpus.dataset("android", "popular")[0]
        tree = decompile_android(packaged)
        assert "AndroidManifest.xml" in tree

    def test_decrypt_requires_jailbreak(self, small_corpus):
        packaged = small_corpus.dataset("ios", "popular")[0]
        with pytest.raises(DeviceError):
            decrypt_ios(packaged, jailbroken_device_available=False)

    def test_decrypt_tool_choice(self, small_corpus):
        packaged = small_corpus.dataset("ios", "popular")[1]
        outcome = decrypt_ios(packaged, prefer_flexdecrypt=False)
        assert outcome.tool == "frida-ios-dump"
        assert len(outcome.tree) > 0
