"""Tests for the ``repro.core.pipeline`` stage-graph abstraction.

Covers the DESIGN.md §15 contract: declaration validation, the
derivation-style chain keys (a knob flip re-keys exactly the declaring
stage and its downstream), graph-derived telemetry and fault points,
cost-model derivation, and re-derivation of a finished result with only
the dirty stages recomputed.
"""

from __future__ import annotations

import pytest

from repro.core import obs
from repro.core.circumvent.pipeline import CIRCUMVENT_GRAPH, CircumventionPipeline
from repro.core.dynamic.pipeline import DYNAMIC_GRAPH, DynamicPipeline
from repro.core.exec import InjectedFault, SeededFaults
from repro.core.exec.costmodel import app_cost_s, stage_cost_s, stage_costs
from repro.core.pipeline import Stage, StageGraph, graph_for, graph_kinds
from repro.core.pipeline.graph import _REGISTRY
from repro.core.static.pipeline import STATIC_GRAPH, StaticPipeline

FP = "corpus-fp"
APP = ("android", "popular", "app-1")


def _noop(ctx, a):
    return None


def _stage(name, **kw):
    return Stage(name=name, fn=_noop, **kw)


@pytest.fixture()
def registry_guard():
    """Remove any graph a test registers under a throwaway kind."""
    before = set(_REGISTRY)
    yield
    for kind in set(_REGISTRY) - before:
        del _REGISTRY[kind]


class TestValidation:
    def test_needs_stages(self):
        with pytest.raises(ValueError, match="needs stages"):
            StageGraph("t-empty", (), {})

    def test_duplicate_stage_name(self):
        with pytest.raises(ValueError, match="duplicate or reserved"):
            StageGraph(
                "t-dup",
                (_stage("a", cost_share=0.5), _stage("a", cost_share=0.5)),
                {},
            )

    def test_seed_names_are_reserved(self):
        with pytest.raises(ValueError, match="duplicate or reserved"):
            StageGraph("t-res", (_stage("packaged", cost_share=1.0),), {})

    def test_inputs_must_be_earlier_stages(self):
        with pytest.raises(ValueError, match="not an earlier stage"):
            StageGraph(
                "t-order",
                (
                    _stage("a", inputs=("b",), cost_share=0.5),
                    _stage("b", cost_share=0.5),
                ),
                {},
            )

    def test_seeds_must_not_be_declared_as_inputs(self):
        with pytest.raises(ValueError, match="not an earlier stage"):
            StageGraph(
                "t-seedin",
                (_stage("a", inputs=("packaged",), cost_share=1.0),),
                {},
            )

    def test_ctx_knobs_need_a_default(self):
        with pytest.raises(ValueError, match="no declared default"):
            StageGraph(
                "t-knob", (_stage("a", config=("mystery",), cost_share=1.0),), {}
            )

    def test_param_knobs_need_no_default(self, registry_guard):
        graph = StageGraph(
            "t-param", (_stage("a", config=("@wait",), cost_share=1.0),), {}
        )
        assert graph.final == "a"

    def test_cost_shares_sum_to_one(self):
        with pytest.raises(ValueError, match="cost shares sum"):
            StageGraph("t-cost", (_stage("a", cost_share=0.5),), {})

    def test_final_stage_must_not_persist(self):
        with pytest.raises(ValueError, match="must not persist"):
            StageGraph(
                "t-final", (_stage("a", cost_share=1.0, persist=True),), {}
            )

    def test_builtin_graphs_registered(self):
        assert {"static", "dynamic", "circumvent"} <= set(graph_kinds())
        assert graph_for("static") is STATIC_GRAPH
        assert graph_for("dynamic") is DYNAMIC_GRAPH
        assert graph_for("circumvent") is CIRCUMVENT_GRAPH
        assert graph_for("no-such-kind") is None


class TestStageKeys:
    """The invalidation contract, stated purely over fingerprints."""

    def test_keys_are_distinct_per_stage(self):
        keys = STATIC_GRAPH.stage_keys(FP, *APP)
        assert set(keys) == {"decompile", "scan", "ct_lookup", "report"}
        assert len(set(keys.values())) == 4

    def test_include_native_flip_rekeys_scan_and_downstream(self):
        base = STATIC_GRAPH.stage_keys(FP, *APP)
        flipped = STATIC_GRAPH.stage_keys(
            FP, *APP, overrides={"include_native": False}
        )
        assert flipped["decompile"] == base["decompile"]
        assert flipped["scan"] != base["scan"]
        assert flipped["ct_lookup"] != base["ct_lookup"]
        assert flipped["report"] != base["report"]

    def test_detector_flip_rekeys_only_detect_and_result(self):
        params = DYNAMIC_GRAPH.params_from_extra(0.0)
        base = DYNAMIC_GRAPH.stage_keys(FP, *APP, params=params)
        flipped = DYNAMIC_GRAPH.stage_keys(
            FP, *APP, params=params, overrides={"detector": "no-tls13"}
        )
        for unchanged in ("run_direct", "run_mitm", "exclusions"):
            assert flipped[unchanged] == base[unchanged]
        assert flipped["detect"] != base["detect"]
        assert flipped["result"] != base["result"]

    def test_wait_param_rekeys_every_stage(self):
        base = DYNAMIC_GRAPH.stage_keys(
            FP, *APP, params=DYNAMIC_GRAPH.params_from_extra(0.0)
        )
        rerun = DYNAMIC_GRAPH.stage_keys(
            FP, *APP, params=DYNAMIC_GRAPH.params_from_extra(120.0)
        )
        assert all(rerun[name] != base[name] for name in base)

    def test_hook_set_flip_rekeys_hooked_run(self):
        params = CIRCUMVENT_GRAPH.params_from_extra({"pinned.example"})
        base = CIRCUMVENT_GRAPH.stage_keys(FP, *APP, params=params)
        flipped = CIRCUMVENT_GRAPH.stage_keys(
            FP, *APP, params=params, overrides={"hook_set": frozenset({"okhttp"})}
        )
        assert flipped["hook_inject"] != base["hook_inject"]
        assert flipped["hooked_run"] != base["hooked_run"]

    def test_pinned_set_does_not_rekey_hooked_run(self):
        # The expensive instrumented run is pinned-set-independent, so a
        # detector flip that changes an app's pinned destinations still
        # reuses its cached capture.
        one = CIRCUMVENT_GRAPH.stage_keys(
            FP, *APP, params=CIRCUMVENT_GRAPH.params_from_extra({"a.example"})
        )
        other = CIRCUMVENT_GRAPH.stage_keys(
            FP, *APP, params=CIRCUMVENT_GRAPH.params_from_extra({"b.example"})
        )
        assert one["hook_inject"] == other["hook_inject"]
        assert one["hooked_run"] == other["hooked_run"]
        assert one["verdict"] != other["verdict"]

    def test_set_knobs_are_order_canonical(self):
        keys = lambda hooks: CIRCUMVENT_GRAPH.stage_keys(
            FP,
            *APP,
            params=CIRCUMVENT_GRAPH.params_from_extra(()),
            overrides={"hook_set": hooks},
        )
        assert keys(frozenset(("b", "a"))) == keys(frozenset(("a", "b")))

    def test_unbound_defaults_match_pipeline_defaults(self, small_corpus):
        """The graph defaults an unbound store resolves knobs with must
        mirror the pipeline constructors' defaults, or unbound and bound
        handles would disagree on every fingerprint."""
        dynamic = DynamicPipeline(small_corpus)
        pipelines = {
            "static": StaticPipeline(small_corpus.registry.ctlog),
            "dynamic": dynamic,
            "circumvent": CircumventionPipeline(dynamic),
        }
        for kind, pipeline in pipelines.items():
            graph = graph_for(kind)
            for knob, default in graph.defaults.items():
                assert getattr(pipeline, knob) == default, f"{kind}.{knob}"


class TestCostModel:
    def test_stage_costs_partition_the_kind_cost(self):
        for kind in ("static", "dynamic", "circumvent"):
            costs = stage_costs(kind)
            graph = graph_for(kind)
            assert set(costs) == {s.name for s in graph.stages}
            assert sum(costs.values()) == pytest.approx(app_cost_s(kind))

    def test_single_stage_cost(self):
        assert stage_cost_s("static", "scan") == pytest.approx(
            0.45 * app_cost_s("static")
        )

    def test_unknown_kind_is_empty(self):
        assert stage_costs("no-such-kind") == {}
        assert stage_cost_s("no-such-kind", "scan") == 0.0


class TestGraphExecution:
    def test_per_stage_fault_point(self, small_corpus):
        """Stage-level injection points exist for every stage and carry
        the derived ``kind.stage`` phase name."""
        pipeline = StaticPipeline(
            small_corpus.registry.ctlog,
            fault_predicate=SeededFaults(rate=1.0, phases=("static.scan",)),
        )
        with pytest.raises(InjectedFault) as excinfo:
            pipeline.analyze_app(small_corpus.dataset("android", "popular")[0])
        assert excinfo.value.phase == "static.scan"

    def test_app_level_fault_point_fires_first(self, small_corpus):
        pipeline = StaticPipeline(
            small_corpus.registry.ctlog,
            fault_predicate=SeededFaults(rate=1.0),
        )
        with pytest.raises(InjectedFault) as excinfo:
            pipeline.analyze_app(small_corpus.dataset("android", "popular")[0])
        assert excinfo.value.phase == "static"

    def test_graph_derived_telemetry(self, small_corpus):
        recorder = obs.Recorder().install()
        try:
            pipeline = StaticPipeline(small_corpus.registry.ctlog)
            pipeline.analyze_app(small_corpus.dataset("android", "popular")[0])
        finally:
            recorder.uninstall()
        names = {span.name for span in recorder.spans()}
        assert {"static.app", "static.decompile", "static.scan"} <= names
        # Assembly stages declare span=False and stay invisible, exactly
        # like the monolithic pipeline they replaced.
        assert "static.report" not in names
        for stage in ("decompile", "scan", "ct_lookup", "report"):
            assert (
                recorder.counter_value(f"pipeline.static.{stage}.computed")
                == 1
            )

    def test_rederive_recomputes_only_dirty_stages(self, small_corpus):
        """Marking ``detect`` dirty rebuilds the verdicts from the stored
        captures without touching a harness — the captures come back as
        the very same objects via the ``derive`` extractors."""
        pipeline = DynamicPipeline(small_corpus)
        packaged = small_corpus.dataset("android", "popular")[0]
        result = pipeline.run_app(packaged)
        rerun = DYNAMIC_GRAPH.rederive(
            pipeline,
            seeds={
                "packaged": packaged,
                "app_id": result.app_id,
                "platform": result.platform,
            },
            result=result,
            dirty={"detect"},
            params={"wait": 0.0, "interact": False},
        )
        assert rerun.verdicts == result.verdicts
        assert rerun.direct_capture is result.direct_capture
        assert rerun.mitm_capture is result.mitm_capture
        assert rerun.excluded_destinations is result.excluded_destinations
