"""Tests for repro.pki.store and ctlog and pem."""

import pytest

from repro.pki.authority import PKIHierarchy
from repro.pki.ctlog import CTLog
from repro.pki.pem import load_pem_certificates
from repro.pki.store import RootStore, StoreCatalog
from repro.util.encoding import b64encode, pem_wrap
from repro.util.rng import DeterministicRng


@pytest.fixture(scope="module")
def hierarchy():
    return PKIHierarchy(DeterministicRng(41))


@pytest.fixture(scope="module")
def catalog(hierarchy):
    return StoreCatalog.build(hierarchy)


class TestRootStore:
    def test_add_and_trust(self, hierarchy):
        store = RootStore("t")
        root = hierarchy.roots[0].certificate
        store.add(root)
        assert store.trusts(root)
        assert root in store
        assert len(store) == 1

    def test_rejects_non_ca(self, hierarchy):
        issued = hierarchy.issue_leaf_chain("x.com", DeterministicRng(1))
        store = RootStore("t")
        with pytest.raises(ValueError):
            store.add(issued.chain.leaf)

    def test_remove(self, hierarchy):
        root = hierarchy.roots[0].certificate
        store = RootStore("t", [root])
        store.remove(root)
        assert not store.trusts(root)

    def test_find_issuer(self, hierarchy):
        issued = hierarchy.issue_leaf_chain("y.com", DeterministicRng(2))
        store = RootStore("t", hierarchy.root_certificates())
        anchor = store.find_issuer(issued.chain.terminal)
        assert anchor is not None
        assert anchor.subject == issued.chain.terminal.issuer

    def test_copy_is_independent(self, hierarchy):
        store = RootStore("t", hierarchy.root_certificates())
        clone = store.copy("clone")
        extra = hierarchy.mint_custom_root("X").certificate
        clone.add(extra)
        assert clone.trusts(extra)
        assert not store.trusts(extra)

    def test_same_subject_different_key_not_trusted(self, hierarchy):
        from repro.pki.authority import CertificateAuthority

        a = CertificateAuthority.self_signed_root("Twin", DeterministicRng(1))
        b = CertificateAuthority.self_signed_root("Twin", DeterministicRng(2))
        store = RootStore("t", [a.certificate])
        assert not store.trusts(b.certificate)


class TestStoreCatalog:
    def test_all_issuing_roots_everywhere(self, hierarchy, catalog):
        for root in hierarchy.root_certificates():
            assert catalog.mozilla.trusts(root)
            assert catalog.android_aosp.trusts(root)
            assert catalog.ios.trusts(root)
            assert catalog.android_oem.trusts(root)

    def test_stores_differ_in_tails(self, catalog):
        moz = {c.fingerprint_sha256() for c in catalog.mozilla}
        ios = {c.fingerprint_sha256() for c in catalog.ios}
        oem = {c.fingerprint_sha256() for c in catalog.android_oem}
        assert moz != ios
        assert len(oem) > len(moz) - 1

    def test_oem_superset_of_aosp(self, catalog):
        aosp = {c.fingerprint_sha256() for c in catalog.android_aosp}
        oem = {c.fingerprint_sha256() for c in catalog.android_oem}
        assert aosp < oem

    def test_store_for_platform(self, catalog):
        assert catalog.store_for_platform("android") is catalog.android_aosp
        assert catalog.store_for_platform("ios") is catalog.ios
        with pytest.raises(ValueError):
            catalog.store_for_platform("windows")


class TestCTLog:
    def test_logs_and_finds_by_pin(self, hierarchy):
        log = CTLog()
        issued = hierarchy.issue_leaf_chain("ct.example.com", DeterministicRng(3))
        log.log_chain(issued.chain)
        hits = log.search_pin(issued.chain.leaf.spki_pin())
        assert [c.common_name for c in hits] == ["ct.example.com"]

    def test_finds_by_hex_digest(self, hierarchy):
        log = CTLog()
        issued = hierarchy.issue_leaf_chain("hex.example.com", DeterministicRng(4))
        log.log_chain(issued.chain)
        hex_digest = issued.chain.leaf.key.spki_sha256().hex()
        assert log.search_spki(hex_digest)

    def test_finds_by_sha1(self, hierarchy):
        log = CTLog()
        issued = hierarchy.issue_leaf_chain("sha1.example.com", DeterministicRng(5))
        log.log_chain(issued.chain)
        assert log.search_pin(issued.chain.leaf.spki_pin("sha1"))

    def test_unpadded_base64_lookup(self, hierarchy):
        log = CTLog()
        issued = hierarchy.issue_leaf_chain("pad.example.com", DeterministicRng(6))
        log.log_chain(issued.chain)
        digest = b64encode(issued.chain.leaf.key.spki_sha256()).rstrip("=")
        assert log.search_spki(digest)

    def test_idempotent_logging(self, hierarchy):
        log = CTLog()
        issued = hierarchy.issue_leaf_chain("dup.example.com", DeterministicRng(7))
        log.log_chain(issued.chain)
        before = log.size
        log.log_chain(issued.chain)
        assert log.size == before

    def test_miss_returns_empty(self):
        assert CTLog().search_pin("sha256/AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA=") == []


class TestPEMLoading:
    def test_loads_bundle(self, hierarchy):
        issued = hierarchy.issue_leaf_chain("pem.example.com", DeterministicRng(8))
        certs = load_pem_certificates(issued.chain.to_pem_bundle())
        assert len(certs) == 2
        assert certs[0].common_name == "pem.example.com"

    def test_skips_non_certificate_blocks(self):
        junk = pem_wrap(b"not a certificate at all")
        assert load_pem_certificates(junk) == []

    def test_empty_text(self):
        assert load_pem_certificates("no pem here") == []
