"""Tests for repro.core.exec.payload: the pool-boundary result codec.

The codec's contract is that ``decode(encode(result))`` reproduces the
original result in every field any analysis reads, while the encoded
form is strictly smaller than pickling the result objects themselves.
Whole-object pickles are *not* compared: interning changes which equal
values share identity, which changes pickle memo references without
changing any value — the comparison here is field-by-field instead.
"""

import pickle

import pytest

from repro.core.exec.engine import _build_state, _run_unit
from repro.core.exec.payload import Rehydrator, encode_unit
from repro.corpus import CorpusConfig, CorpusGenerator


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(CorpusConfig(seed=1337).scaled(0.015)).generate()


@pytest.fixture(scope="module")
def state(corpus):
    return _build_state(corpus, 30.0)


@pytest.fixture(scope="module")
def rehydrator(corpus):
    return Rehydrator(corpus)


def _results(state, kind, extra=None, indices=(0, 1, 2)):
    return _run_unit(state, (kind, "android", "common", indices, extra))


def _circumvent_results(state, indices=(0, 1, 2)):
    dynamic = _results(state, "dynamic", 0.0, indices)
    pins = tuple(tuple(sorted(r.pinned_destinations)) for r in dynamic)
    return _results(state, "circumvent", pins, indices)


def assert_captures_equal(a, b):
    assert len(a.flows) == len(b.flows)
    for fa, fb in zip(a.flows, b.flows):
        assert vars(fa).keys() == vars(fb).keys()
        for attr in vars(fa):
            assert getattr(fa, attr) == getattr(fb, attr), attr


def assert_dynamic_equal(a, b):
    assert a.app_id == b.app_id
    assert a.platform == b.platform
    assert a.verdicts == b.verdicts
    assert a.excluded_destinations == b.excluded_destinations
    assert a.reran_with_wait == b.reran_with_wait
    assert_captures_equal(a.direct_capture, b.direct_capture)
    assert_captures_equal(a.mitm_capture, b.mitm_capture)


def assert_circumvent_equal(a, b):
    if a is None or b is None:
        assert a is None and b is None
        return
    assert a.app_id == b.app_id
    assert a.platform == b.platform
    assert a.bypassed_destinations == b.bypassed_destinations
    assert a.resistant_destinations == b.resistant_destinations
    assert_captures_equal(a.hooked_capture, b.hooked_capture)


class TestRoundTrip:
    def test_static_round_trips_equal(self, state, rehydrator):
        results = _results(state, "static")
        decoded = rehydrator.decode_unit(encode_unit("static", results))
        assert decoded == results

    def test_dynamic_round_trips_equal(self, state, rehydrator):
        results = _results(state, "dynamic", 0.0)
        decoded = rehydrator.decode_unit(encode_unit("dynamic", results))
        for original, rebuilt in zip(results, decoded):
            assert_dynamic_equal(original, rebuilt)

    def test_circumvent_round_trips_equal(self, state, rehydrator):
        results = _circumvent_results(state)
        decoded = rehydrator.decode_unit(encode_unit("circumvent", results))
        assert len(decoded) == len(results)
        for original, rebuilt in zip(results, decoded):
            assert_circumvent_equal(original, rebuilt)

    def test_circumvent_none_entries_survive(self, state, rehydrator):
        # Apps the circumvention pipeline skips yield None in the unit's
        # result list; the codec must pass them through untouched.
        real = _circumvent_results(state, indices=(0,))
        mixed = [None, real[0], None]
        decoded = rehydrator.decode_unit(encode_unit("circumvent", mixed))
        assert decoded[0] is None and decoded[2] is None
        assert_circumvent_equal(decoded[1], real[0])

    def test_unknown_kind_passes_through(self, rehydrator):
        payload = encode_unit("mystery", [1, "two", (3,)])
        assert rehydrator.decode_unit(payload) == [1, "two", (3,)]


class TestCompaction:
    @pytest.mark.parametrize(
        "kind,extra", [("static", None), ("dynamic", 0.0)]
    )
    def test_encoded_form_is_smaller(self, state, kind, extra):
        results = _results(state, kind, extra, indices=tuple(range(5)))
        plain = len(pickle.dumps(results))
        encoded = len(pickle.dumps(encode_unit(kind, results)))
        assert encoded < plain

    def test_rehydration_memoizes_against_parent(self, corpus, state):
        # Certificates decode to the *same* interned objects across
        # units, so a large study does not re-parse per unit.
        rehydrator = Rehydrator(corpus)
        first = rehydrator.decode_unit(
            encode_unit("static", _results(state, "static"))
        )
        memo_size = len(rehydrator._certs)
        second = rehydrator.decode_unit(
            encode_unit("static", _results(state, "static"))
        )
        assert memo_size > 0
        assert len(rehydrator._certs) == memo_size
        assert first == second


class TestEnvelope:
    def test_bad_magic_rejected(self, state, rehydrator):
        payload = encode_unit(
            "static", _results(state, "static", indices=(0,))
        )
        tampered = ("not-the-magic",) + payload[1:]
        with pytest.raises(ValueError):
            rehydrator.decode_unit(tampered)

    def test_future_version_rejected(self, state, rehydrator):
        payload = encode_unit(
            "static", _results(state, "static", indices=(0,))
        )
        tampered = (payload[0], 999) + payload[2:]
        with pytest.raises(ValueError):
            rehydrator.decode_unit(tampered)
