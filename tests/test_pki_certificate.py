"""Tests for repro.pki.certificate."""

import pytest

from repro.errors import CertificateError
from repro.pki.authority import CertificateAuthority
from repro.pki.certificate import (
    Certificate,
    DistinguishedName,
    parse_der,
)
from repro.pki.keys import KeyPair
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START, Timestamp


@pytest.fixture
def root():
    return CertificateAuthority.self_signed_root(
        "Test Root", DeterministicRng(1)
    )


@pytest.fixture
def leaf(root):
    cert, _ = root.issue(
        "api.test.com", san=("api.test.com",), not_before=STUDY_START
    )
    return cert


class TestDistinguishedName:
    def test_render_full(self):
        name = DistinguishedName("cn", organization="org", country="US")
        assert name.render() == "CN=cn, O=org, C=US"

    def test_render_minimal(self):
        assert DistinguishedName("cn").render() == "CN=cn"

    def test_equality(self):
        assert DistinguishedName("a") == DistinguishedName("a")
        assert DistinguishedName("a") != DistinguishedName("a", "org")


class TestCertificate:
    def test_empty_validity_window_rejected(self):
        key = KeyPair.generate(DeterministicRng(1))
        name = DistinguishedName("x")
        with pytest.raises(CertificateError):
            Certificate(
                subject=name,
                issuer=name,
                serial="1",
                not_before=Timestamp(100),
                not_after=Timestamp(100),
                key=key,
            )

    def test_self_signed_detection(self, root, leaf):
        assert root.certificate.is_self_signed()
        assert not leaf.is_self_signed()

    def test_validity_checks(self, leaf):
        assert leaf.valid_at(STUDY_START.plus_days(1))
        assert not leaf.valid_at(STUDY_START.plus_days(-1))
        assert leaf.is_expired(STUDY_START.plus_years(1000))

    def test_validity_years(self, root):
        assert root.certificate.validity_years() == pytest.approx(25.0, abs=0.1)

    def test_fingerprint_stable_and_unique(self, root, leaf):
        assert leaf.fingerprint_sha256() == leaf.fingerprint_sha256()
        assert leaf.fingerprint_sha256() != root.certificate.fingerprint_sha256()

    def test_matches_hostname_via_san(self, leaf):
        assert leaf.matches_hostname("api.test.com")
        assert not leaf.matches_hostname("other.test.com")

    def test_matches_hostname_cn_fallback(self, root):
        cert, _ = root.issue("bare.example.com", not_before=STUDY_START, san=())
        assert cert.matches_hostname("bare.example.com")

    def test_spki_pin_tracks_key(self, root):
        key = KeyPair.generate(DeterministicRng(5))
        a, _ = root.issue("a.com", key=key, not_before=STUDY_START)
        b, _ = root.issue("b.com", key=key, not_before=STUDY_START)
        assert a.spki_pin() == b.spki_pin()
        assert a.fingerprint_sha256() != b.fingerprint_sha256()


class TestDERRoundtrip:
    def test_parse_der_roundtrip(self, leaf):
        parsed = parse_der(leaf.to_der())
        assert parsed.common_name == "api.test.com"
        assert parsed.is_ca is False
        assert parsed.serial == leaf.serial
        assert parsed.not_before == leaf.not_before
        assert parsed.san == leaf.san
        assert parsed.spki_bytes == leaf.key.public_bytes
        assert parsed.spki_sha256() == leaf.key.spki_sha256()

    def test_parse_der_ca_flag(self, root):
        parsed = parse_der(root.certificate.to_der())
        assert parsed.is_ca is True

    def test_parse_der_rejects_garbage(self):
        with pytest.raises(CertificateError):
            parse_der(b"random junk")

    def test_parse_der_signature_containing_separator(self, leaf):
        # Signatures are arbitrary bytes and may contain the 0x1f
        # tbs/signature separator; the parser must split on the *first*
        # occurrence or it silently corrupts the spki field (and the
        # static scanner then drops the certificate entirely).
        signature = b"\x01\x1f\x02\x1f\x03"
        der = leaf.tbs_bytes() + b"\x1f" + signature
        parsed = parse_der(der)
        assert parsed.spki_bytes == leaf.key.public_bytes
        assert parsed.signature == signature

    def test_parse_der_rejects_missing_separator(self, leaf):
        with pytest.raises(CertificateError):
            parse_der(leaf.tbs_bytes())

    def test_pem_contains_delimiters(self, leaf):
        pem = leaf.to_pem()
        assert pem.startswith("-----BEGIN CERTIFICATE-----")
        assert "-----END CERTIFICATE-----" in pem
