"""The ground-truth differential oracle.

The oracle's job is to *fail* when a detector silently degrades, so the
heart of this file is mutation testing: take the clean study results (or
a clean pipeline), break exactly one thing — a dropped verdict, a
fabricated pin, a regex that stops matching — and assert the oracle's
verdict flips.  A clean run passing proves calibration; a broken run
failing proves teeth.
"""

from __future__ import annotations

import copy
import re

from repro.core.analysis.study import StudyResults
from repro.core.static.pipeline import StaticPipeline
from repro.core.verify import DEFAULT_BANDS, ToleranceBand, run_oracle
from repro.core.verify.oracle import (
    score_dynamic_destinations,
    score_spki_search,
    score_static_material,
)
from repro.corpus import groundtruth


def fresh_results(results, **overrides) -> StudyResults:
    """A StudyResults sharing the originals' items but with fresh
    containers and an empty memo cache, safe to corrupt per test."""
    fields = dict(
        corpus=results.corpus,
        static_reports={k: list(v) for k, v in results.static_reports.items()},
        dynamic_results={k: list(v) for k, v in results.dynamic_results.items()},
        circumvention={k: list(v) for k, v in results.circumvention.items()},
        pii=dict(results.pii),
        failures=list(results.failures),
        window_s=results.window_s,
        telemetry=results.telemetry,
    )
    fields.update(overrides)
    return StudyResults(**fields)


def replace_result(results, key, mutate) -> StudyResults:
    """Deep-copy one dataset's first *pinning* result, apply ``mutate``
    to the copy, and return fresh results containing it."""
    out = fresh_results(results)
    dataset = out.dynamic_results[key]
    for position, result in enumerate(dataset):
        if result.pins():
            mutated = copy.deepcopy(result)
            mutate(mutated)
            dataset[position] = mutated
            return out
    raise AssertionError(f"no pinning app in {key}")


def test_clean_run_is_exact(study_results):
    scores = run_oracle(study_results, window_s=study_results.window_s)
    # 5 Android detectors + 4 iOS (NSC is Android-only).
    assert len(scores) == 9
    assert all(s.passed for s in scores), [s.describe() for s in scores]
    for s in scores:
        assert s.score.precision == 1.0
        assert s.score.recall == 1.0
        assert s.score.f1 == 1.0
        # An all-negative dataset would also score 1.0 — make sure the
        # oracle actually saw positives everywhere.
        assert s.score.true_positives > 0, s.describe()


def test_dropped_pinned_verdict_breaks_recall(study_results):
    def drop_first_pin(result):
        destination = sorted(result.pinned_destinations)[0]
        result.verdicts[destination].pinned = False

    corrupted = replace_result(
        study_results, ("android", "popular"), drop_first_pin
    )
    scores = run_oracle(corrupted, window_s=corrupted.window_s)
    failed = [s for s in scores if not s.passed]
    assert [(s.detector, s.platform) for s in failed] == [
        ("dynamic-destinations", "android")
    ]
    assert failed[0].score.false_negatives == 1
    assert any("recall" in v for v in failed[0].violations)


def test_fabricated_pin_breaks_precision(study_results):
    def fabricate(result):
        candidates = sorted(result.not_pinned_destinations)
        assert candidates, "need an unpinned destination to fabricate"
        verdict = result.verdicts[candidates[0]]
        verdict.pinned = True
        verdict.mitm_all_failed = True

    corrupted = replace_result(
        study_results, ("ios", "popular"), fabricate
    )
    scores = run_oracle(corrupted, window_s=corrupted.window_s)
    failed = [s for s in scores if not s.passed]
    assert ("dynamic-destinations", "ios") in [
        (s.detector, s.platform) for s in failed
    ]
    ios_dyn = next(
        s
        for s in failed
        if (s.detector, s.platform) == ("dynamic-destinations", "ios")
    )
    assert ios_dyn.score.false_positives == 1
    assert any("precision" in v for v in ios_dyn.violations)


def test_suppressed_static_material_breaks_recall(study_results):
    out = fresh_results(study_results)
    key = ("android", "common")
    reports = out.static_reports[key]
    for position, report in enumerate(reports):
        if report.embedded_material:
            broken = copy.deepcopy(report)
            broken.scan.certificates.clear()
            broken.scan.pins.clear()
            reports[position] = broken
            break
    else:
        raise AssertionError("no report with embedded material")
    scores = run_oracle(out, window_s=out.window_s)
    failed = {(s.detector, s.platform) for s in scores if not s.passed}
    assert ("static-material", "android") in failed


def test_broken_hash_regex_fails_spki_oracle(small_corpus, monkeypatch):
    """Pipeline-level mutation: a detector regression (the SPKI regex
    stops matching) must land outside its band — this is the wiring the
    audit exists to catch, end to end through a real pipeline run."""
    from repro.core.static import search as search_mod

    baseline = StaticPipeline(small_corpus.registry.ctlog).analyze_dataset(
        small_corpus.dataset("android", "popular")
    )
    assert score_spki_search(small_corpus, baseline).false_negatives == 0

    monkeypatch.setattr(
        search_mod, "HASH_PATTERN", re.compile(r"(?!x)x")
    )
    broken = StaticPipeline(small_corpus.registry.ctlog).analyze_dataset(
        small_corpus.dataset("android", "popular")
    )
    score = score_spki_search(small_corpus, broken)
    assert score.false_negatives > 0
    band = DEFAULT_BANDS["spki-search"]
    assert band.violations(score), "broken regex must leave the band"


def test_band_overrides_apply(study_results):
    impossible = {"circumvention": ToleranceBand(1.01, 1.01, 1.01)}
    scores = run_oracle(
        study_results, window_s=study_results.window_s, bands=impossible
    )
    failed = {(s.detector, s.platform) for s in scores if not s.passed}
    assert failed == {("circumvention", "android"), ("circumvention", "ios")}


def test_ground_truth_predicates_discriminate(small_corpus):
    """The truth predicates must not collapse to "app pins": the corpus
    ships pinning apps that are *not* greppable (obfuscated or NSC-only),
    which is exactly the distinction the SPKI oracle depends on."""
    greppable = pinning_not_greppable = 0
    for key in small_corpus.datasets:
        for packaged in small_corpus.dataset(*key):
            app = packaged.app
            if groundtruth.has_greppable_spki_pins(app):
                greppable += 1
            elif app.pinning_specs:
                pinning_not_greppable += 1
    assert greppable > 0
    assert pinning_not_greppable > 0


def test_dynamic_truth_respects_window(small_corpus, study_results):
    """A near-zero capture window empties the dynamic ground truth —
    every pinned destination becomes unobservable, so a detector that
    still reports pins would be (correctly) flagged as imprecise."""
    results = study_results.all_dynamic("android")
    wide = score_dynamic_destinations(small_corpus, results, window_s=30.0)
    narrow = score_dynamic_destinations(small_corpus, results, window_s=0.0)
    assert wide.false_negatives == 0
    assert narrow.true_positives < wide.true_positives


def test_static_material_score_counts_positives(small_corpus, study_results):
    reports = list(study_results.static_by_app("ios").values())
    score = score_static_material(small_corpus, reports)
    assert score.true_positives > 0
    assert score.false_positives == 0
    assert score.false_negatives == 0
