"""Tests for the deterministic CI test sharder (tools/shard_tests.py).

The CI matrix relies on three properties: every shard run twice yields
the same files (determinism), the shards partition the suite exactly
(no file lost, none duplicated), and a file's shard assignment depends
only on its own name (suite growth never reshuffles siblings).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parents[1] / "tools"
TESTS = Path(__file__).resolve().parent


def load_tool(name):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


shard_tests = load_tool("shard_tests")


class TestSharding:
    def test_shards_partition_the_suite_exactly(self):
        everything = set(TESTS.glob("test_*.py"))
        seen = set()
        for index in range(3):
            shard = set(shard_tests.shard_files(TESTS, 3, index))
            assert not (shard & seen), "shards overlap"
            seen |= shard
        assert seen == everything

    def test_assignment_is_deterministic(self):
        first = shard_tests.shard_files(TESTS, 3, 1)
        second = shard_tests.shard_files(TESTS, 3, 1)
        assert first == second

    def test_assignment_depends_only_on_the_file_name(self, tmp_path):
        # The same names shard identically from any directory: bucketing
        # hashes the name, not the path or the directory listing.
        for name in ("test_alpha.py", "test_beta.py", "test_gamma.py"):
            (tmp_path / name).write_text("")
        by_name = {
            path.name: shard_tests.shard_of(path.name, 5)
            for path in tmp_path.glob("test_*.py")
        }
        for path in TESTS.glob("test_*.py"):
            if path.name in by_name:
                assert shard_tests.shard_of(path.name, 5) == by_name[path.name]
        # Adding a file never moves an existing one.
        before = {n: shard_tests.shard_of(n, 3) for n in by_name}
        (tmp_path / "test_delta.py").write_text("")
        after = {
            path.name: shard_tests.shard_of(path.name, 3)
            for path in tmp_path.glob("test_*.py")
            if path.name in before
        }
        assert before == after

    def test_single_shard_is_everything(self):
        assert set(shard_tests.shard_files(TESTS, 1, 0)) == set(
            TESTS.glob("test_*.py")
        )

    @pytest.mark.parametrize(
        "argv, code",
        [
            (["--shards", "0", "--index", "0"], 2),
            (["--shards", "3", "--index", "3"], 2),
            (["--shards", "3", "--index", "-1"], 2),
            (["--shards", "3", "--index", "0", "--test-dir", "no/such/dir"], 2),
        ],
    )
    def test_bad_arguments_exit_2(self, argv, code, capsys):
        assert shard_tests.main(argv) == code

    def test_cli_prints_one_file_per_line(self, capsys):
        assert shard_tests.main(["--shards", "3", "--index", "0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == [p.as_posix() for p in shard_tests.shard_files(Path("tests"), 3, 0)]
