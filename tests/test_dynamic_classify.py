"""Tests for the used/failed classifiers — wire-visible patterns only."""


from repro.core.dynamic.classify import connection_failed, connection_used
from repro.netsim.flow import FlowRecord
from repro.tls.connection import (
    ConnectionTrace,
    TEARDOWN_FIN,
    TEARDOWN_OPEN,
    TEARDOWN_RST,
)
from repro.tls.records import (
    ContentType,
    Direction,
    TLSRecord,
    TLSVersion,
    TLS13_CLIENT_FINISHED_LEN,
    TLS13_ENCRYPTED_ALERT_LEN,
)
from repro.util.simtime import STUDY_START


def make_flow(version, client_app_lengths, teardown, server_app=0):
    records = [
        TLSRecord(ContentType.HANDSHAKE, Direction.CLIENT_TO_SERVER, 512),
        TLSRecord(ContentType.HANDSHAKE, Direction.SERVER_TO_CLIENT, 3000),
    ]
    for length in client_app_lengths:
        records.append(
            TLSRecord(
                ContentType.APPLICATION_DATA, Direction.CLIENT_TO_SERVER, length
            )
        )
    for _ in range(server_app):
        records.append(
            TLSRecord(
                ContentType.APPLICATION_DATA, Direction.SERVER_TO_CLIENT, 900
            )
        )
    trace = ConnectionTrace(records=records, teardown=teardown)
    return FlowRecord(
        sni="x.com", started_at=STUDY_START, version=version, trace=trace
    )


class TestUsedTLS12:
    def test_any_app_data_means_used(self):
        flow = make_flow(TLSVersion.TLS12, [200], TEARDOWN_OPEN)
        assert connection_used(flow)

    def test_server_data_counts(self):
        flow = make_flow(TLSVersion.TLS12, [], TEARDOWN_OPEN, server_app=1)
        assert connection_used(flow)

    def test_no_app_data_unused(self):
        flow = make_flow(TLSVersion.TLS12, [], TEARDOWN_OPEN)
        assert not connection_used(flow)


class TestUsedTLS13:
    def test_three_records_used(self):
        flow = make_flow(
            TLSVersion.TLS13,
            [TLS13_CLIENT_FINISHED_LEN, 400, 700],
            TEARDOWN_OPEN,
        )
        assert connection_used(flow)

    def test_two_records_second_not_alert_sized_used(self):
        flow = make_flow(
            TLSVersion.TLS13, [TLS13_CLIENT_FINISHED_LEN, 600], TEARDOWN_OPEN
        )
        assert connection_used(flow)

    def test_finished_plus_close_notify_unused(self):
        flow = make_flow(
            TLSVersion.TLS13,
            [TLS13_CLIENT_FINISHED_LEN, TLS13_ENCRYPTED_ALERT_LEN],
            TEARDOWN_FIN,
        )
        assert not connection_used(flow)

    def test_lone_alert_unused(self):
        flow = make_flow(
            TLSVersion.TLS13, [TLS13_ENCRYPTED_ALERT_LEN], TEARDOWN_RST
        )
        assert not connection_used(flow)

    def test_finished_only_unused(self):
        flow = make_flow(
            TLSVersion.TLS13, [TLS13_CLIENT_FINISHED_LEN], TEARDOWN_OPEN
        )
        assert not connection_used(flow)

    def test_server_data_alone_not_counted_for_tls13(self):
        # TLS 1.3 heuristics are defined on client records.
        flow = make_flow(TLSVersion.TLS13, [], TEARDOWN_OPEN, server_app=2)
        assert not connection_used(flow)


class TestFailed:
    def test_unused_and_rst_is_failed(self):
        flow = make_flow(TLSVersion.TLS12, [], TEARDOWN_RST)
        assert connection_failed(flow)

    def test_unused_and_fin_is_failed(self):
        flow = make_flow(TLSVersion.TLS12, [], TEARDOWN_FIN)
        assert connection_failed(flow)

    def test_unused_but_open_not_failed(self):
        flow = make_flow(TLSVersion.TLS12, [], TEARDOWN_OPEN)
        assert not connection_failed(flow)

    def test_used_never_failed(self):
        flow = make_flow(TLSVersion.TLS12, [300], TEARDOWN_RST)
        assert not connection_failed(flow)

    def test_version_unknown_unused(self):
        flow = make_flow(None, [], TEARDOWN_RST)
        assert not connection_used(flow)
        assert connection_failed(flow)


class TestAblationThreading:
    """The Section 4.2.2 ablation must degrade "used" and "failed"
    classification together: a TLS 1.3 pinning rejection (Finished +
    alert-sized record, then RST) is *failed* under the heuristics but
    reads as *used* — hence not failed — without them."""

    def rejection_flow(self):
        return make_flow(
            TLSVersion.TLS13,
            [TLS13_CLIENT_FINISHED_LEN, TLS13_ENCRYPTED_ALERT_LEN],
            TEARDOWN_RST,
        )

    def test_heuristics_classify_rejection_as_failed(self):
        assert connection_failed(self.rejection_flow())

    def test_ablation_flag_reaches_failed_classification(self):
        flow = self.rejection_flow()
        # The naive TLS 1.2 reading sees application data ⇒ used ⇒ the
        # connection cannot be failed.  Before the fix connection_failed
        # ignored the flag and silently kept the heuristics on.
        assert connection_used(flow, tls13_heuristics=False)
        assert not connection_failed(flow, tls13_heuristics=False)

    def test_detector_threads_ablation_through_failed_leg(self):
        from repro.core.dynamic.detector import detect_pinned_destinations
        from repro.netsim.capture import TrafficCapture

        direct = TrafficCapture(
            [make_flow(TLSVersion.TLS13, [TLS13_CLIENT_FINISHED_LEN, 400, 700], TEARDOWN_OPEN)]
        )
        intercepted = TrafficCapture([self.rejection_flow()])
        with_heuristics = detect_pinned_destinations(direct, intercepted)
        assert with_heuristics["x.com"].pinned

        ablated = detect_pinned_destinations(
            direct, intercepted, tls13_heuristics=False
        )
        # Both legs degrade: the MITM rejection now looks "used", so the
        # destination no longer classifies as all-failed ⇒ not pinned.
        assert not ablated["x.com"].mitm_all_failed
        assert not ablated["x.com"].pinned

    def test_naive_detector_threads_ablation(self):
        from repro.core.dynamic.detector import naive_detect_pinned_destinations
        from repro.netsim.capture import TrafficCapture

        intercepted = TrafficCapture([self.rejection_flow()])
        assert naive_detect_pinned_destinations(intercepted) == {"x.com"}
        assert (
            naive_detect_pinned_destinations(
                intercepted, tls13_heuristics=False
            )
            == set()
        )
