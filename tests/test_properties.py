"""Property-based tests (hypothesis) on core invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appmodel.nsc import NSCConfig, NSCDomainConfig, NSCPin
from repro.appmodel.package import deobfuscate_token, obfuscate_token
from repro.pki.validation import hostname_matches
from repro.util.encoding import (
    b64decode,
    b64encode,
    pem_unwrap,
    pem_wrap,
)
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.stats import jaccard_index

LABELS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
).filter(lambda s: not s.startswith("-") and not s.endswith("-"))

HOSTNAMES = st.lists(LABELS, min_size=1, max_size=4).map(".".join)


class TestEncodingProperties:
    @given(st.binary(max_size=2048))
    def test_pem_roundtrip(self, payload):
        assert pem_unwrap(pem_wrap(payload)) == [payload]

    @given(st.binary(max_size=1024))
    def test_b64_roundtrip(self, payload):
        assert b64decode(b64encode(payload)) == payload

    @given(st.lists(st.binary(min_size=1, max_size=256), max_size=5))
    def test_pem_multi_block_order(self, payloads):
        text = "\n".join(pem_wrap(p) for p in payloads)
        assert pem_unwrap(text) == payloads


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_derive_seed_range(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**63

    @given(st.integers(min_value=0, max_value=2**32))
    def test_stream_reproducibility(self, seed):
        a = DeterministicRng(seed)
        b = DeterministicRng(seed)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    @given(
        st.integers(min_value=0, max_value=1000),
        st.lists(st.integers(), min_size=1, max_size=20),
    )
    def test_shuffled_is_permutation(self, seed, items):
        out = DeterministicRng(seed).shuffled(items)
        assert sorted(out) == sorted(items)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.lists(st.integers(), min_size=1, max_size=20, unique=True),
        st.integers(min_value=0, max_value=25),
    )
    def test_weighted_sample_distinct(self, seed, items, k):
        rng = DeterministicRng(seed)
        out = rng.weighted_sample(items, [1.0] * len(items), k)
        assert len(out) == len(set(out)) == min(k, len(items))


class TestJaccardProperties:
    @given(st.sets(st.integers()), st.sets(st.integers()))
    def test_bounds(self, a, b):
        value = jaccard_index(a, b)
        assert 0.0 <= value <= 1.0

    @given(st.sets(st.integers()), st.sets(st.integers()))
    def test_symmetry(self, a, b):
        assert jaccard_index(a, b) == jaccard_index(b, a)

    @given(st.sets(st.integers()))
    def test_identity(self, a):
        assert jaccard_index(a, a) == 1.0

    @given(st.sets(st.integers(), min_size=1), st.sets(st.integers(), min_size=1))
    def test_disjoint_iff_zero(self, a, b):
        value = jaccard_index(a, b)
        assert (value == 0.0) == (not (a & b))


class TestHostnameProperties:
    @given(HOSTNAMES)
    def test_exact_match_reflexive(self, hostname):
        assert hostname_matches(hostname, hostname)

    @given(HOSTNAMES)
    def test_case_insensitive(self, hostname):
        assert hostname_matches(hostname.upper(), hostname)

    @given(LABELS, HOSTNAMES)
    def test_wildcard_covers_one_label(self, label, base):
        assert hostname_matches(f"*.{base}", f"{label}.{base}")

    @given(LABELS, LABELS, HOSTNAMES)
    def test_wildcard_not_two_labels(self, one, two, base):
        assert not hostname_matches(f"*.{base}", f"{one}.{two}.{base}")


class TestObfuscationProperties:
    @given(st.text(min_size=1, max_size=100))
    def test_roundtrip(self, token):
        assert deobfuscate_token(obfuscate_token(token)) == token

    @given(st.text(min_size=1, max_size=100))
    def test_hides_pin_prefix(self, suffix):
        token = "sha256/" + suffix
        assert "sha256/" not in obfuscate_token(token)


PIN_BODIES = st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/",
    min_size=28,
    max_size=43,
)


class TestNSCProperties:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(HOSTNAMES, st.lists(PIN_BODIES, max_size=3), st.booleans()),
            min_size=1,
            max_size=4,
        )
    )
    def test_xml_roundtrip(self, configs):
        config = NSCConfig(
            domain_configs=[
                NSCDomainConfig(
                    domain=domain,
                    include_subdomains=include,
                    pins=[NSCPin("SHA-256", body) for body in pins],
                )
                for domain, pins, include in configs
            ]
        )
        parsed = NSCConfig.from_xml(config.to_xml())
        assert len(parsed.domain_configs) == len(config.domain_configs)
        for original, roundtripped in zip(
            config.domain_configs, parsed.domain_configs
        ):
            assert roundtripped.domain == original.domain
            assert roundtripped.include_subdomains == original.include_subdomains
            assert [p.value for p in roundtripped.pins] == [
                p.value for p in original.pins
            ]


class TestHashRegexProperties:
    @given(st.sampled_from(["sha1", "sha256"]), PIN_BODIES)
    def test_pin_shape_always_matches(self, algorithm, body):
        from repro.core.static.search import HASH_PATTERN

        assert HASH_PATTERN.search(f"{algorithm}/{body}")
