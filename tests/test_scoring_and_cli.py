"""Tests for the scoring module, figure rendering and the CLI."""

import pytest

from repro.core.analysis.scoring import (
    DetectionScore,
    ground_truth_pinned,
    score_apps,
    score_destinations,
)
from repro.reporting.figures import bar_chart, heatmap_row, stacked_bar


class TestDetectionScore:
    def test_metrics(self):
        score = DetectionScore(true_positives=8, false_positives=2, false_negatives=2)
        assert score.precision == 0.8
        assert score.recall == 0.8
        assert score.f1 == pytest.approx(0.8)

    def test_empty_is_perfect(self):
        score = DetectionScore()
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_add(self):
        score = DetectionScore()
        score.add({"a", "b"}, {"b", "c"})
        assert score.true_positives == 1
        assert score.false_positives == 1
        assert score.false_negatives == 1


class TestScoringAgainstStudy:
    def test_differential_detector_perfect(self, small_corpus, study_results):
        for key, results in study_results.dynamic_results.items():
            score = score_destinations(small_corpus, results)
            assert score.precision == 1.0, key
            assert score.recall == 1.0, key
            app_score = score_apps(small_corpus, results)
            assert app_score.precision == 1.0
            assert app_score.recall == 1.0

    def test_ground_truth_respects_window(self, small_corpus):
        packaged = next(
            p for p in small_corpus.all_apps() if p.app.pins_at_runtime()
        )
        wide = ground_truth_pinned(small_corpus, packaged.app.app_id, 3600)
        narrow = ground_truth_pinned(small_corpus, packaged.app.app_id, 30)
        assert narrow <= wide


class TestFigureRendering:
    def test_bar_chart(self):
        text = bar_chart([("a", 10.0), ("bb", 5.0)], title="T", unit="%")
        assert "T" in text
        assert text.count("#") > 0
        a_line = next(l for l in text.splitlines() if l.startswith("a "))
        bb_line = next(l for l in text.splitlines() if l.startswith("bb"))
        assert a_line.count("#") > bb_line.count("#")

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart([], title="x")

    def test_stacked_bar(self):
        text = stacked_bar("app", [("pinned", 2), ("unpinned", 6)], width=40)
        assert "pinned(2)" in text

    def test_stacked_bar_empty(self):
        assert "(empty)" in stacked_bar("app", [("a", 0)])

    def test_heatmap_row_clamps(self):
        text = heatmap_row("r", [0.0, 0.5, 1.0, 2.0])
        assert text.startswith("r ")
        assert "█" in text


class TestCLI:
    def test_corpus_command(self, capsys):
        from repro.cli import main

        assert main(["--scale", "0.01", "corpus"]) == 0
        out = capsys.readouterr().out
        assert "unique apps" in out

    def test_table_command(self, capsys):
        from repro.cli import main

        assert main(["--scale", "0.02", "table", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Dynamic analysis" in out

    def test_table_csv(self, capsys):
        from repro.cli import main

        assert main(["--scale", "0.02", "table", "table3", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("Dataset,")

    def test_table_figure4_tuple(self, capsys):
        from repro.cli import main

        assert main(["--scale", "0.02", "table", "figure4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4a" in out and "Figure 4b" in out

    def test_score_command(self, capsys):
        from repro.cli import main

        assert main(["--scale", "0.02", "score"]) == 0
        out = capsys.readouterr().out
        assert "destination P=" in out
        # The differential detector scores perfectly on every dataset.
        assert "P=1.000" in out

    def test_study_command(self, capsys):
        from repro.cli import main

        assert main(["--scale", "0.02", "study"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "circumvention android" in out

    def test_study_telemetry_outputs(self, capsys, tmp_path):
        import json

        from repro.cli import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "--scale", "0.02", "study",
                    "--trace-out", str(trace),
                    "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "Table 3" in captured.out  # tables unchanged by telemetry
        assert "Telemetry summary" in captured.err
        trace_doc = json.loads(trace.read_text())
        assert trace_doc["otherData"]["schema"] == "repro-telemetry-v1"
        names = {event["name"] for event in trace_doc["traceEvents"]}
        assert "phase.static_dynamic" in names
        assert "dynamic.app" in names
        metrics_doc = json.loads(metrics.read_text())
        assert metrics_doc["counters"]["exec.units.completed"] > 0
        assert metrics_doc["counters"]["cache.validate_chain.hit"] > 0

    def test_study_without_telemetry_flags_writes_nothing(self, capsys):
        from repro.cli import main

        assert main(["--scale", "0.02", "study"]) == 0
        assert "Telemetry summary" not in capsys.readouterr().err
