"""Tests for repro.pki.keys."""

import pytest

from repro.errors import EncodingError
from repro.pki.keys import KeyPair, parse_pin, spki_pin
from repro.util.rng import DeterministicRng


@pytest.fixture
def key():
    return KeyPair.generate(DeterministicRng(1))


class TestKeyPair:
    def test_generation_deterministic(self):
        a = KeyPair.generate(DeterministicRng(9))
        b = KeyPair.generate(DeterministicRng(9))
        assert a.public_bytes == b.public_bytes
        assert a.key_id == b.key_id

    def test_distinct_seeds_distinct_keys(self):
        a = KeyPair.generate(DeterministicRng(1))
        b = KeyPair.generate(DeterministicRng(2))
        assert a.public_bytes != b.public_bytes

    def test_ecdsa_key_is_shorter(self):
        rsa = KeyPair.generate(DeterministicRng(1), "rsa2048")
        ec = KeyPair.generate(DeterministicRng(1), "ecdsa_p256")
        assert len(ec.public_bytes) < len(rsa.public_bytes)

    def test_spki_digests_stable(self, key):
        assert key.spki_sha256() == key.spki_sha256()
        assert len(key.spki_sha256()) == 32
        assert len(key.spki_sha1()) == 20

    def test_sign_verify(self, key):
        sig = key.sign(b"payload")
        assert key.verify(b"payload", sig)
        assert not key.verify(b"other", sig)

    def test_cross_key_verification_fails(self, key):
        other = KeyPair.generate(DeterministicRng(99))
        assert not other.verify(b"payload", key.sign(b"payload"))


class TestPinStrings:
    def test_sha256_pin_format(self, key):
        pin = spki_pin(key)
        assert pin.startswith("sha256/")
        algorithm, digest = parse_pin(pin)
        assert algorithm == "sha256"
        assert digest

    def test_sha1_pin_format(self, key):
        assert spki_pin(key, "sha1").startswith("sha1/")

    def test_pin_matches_paper_regex(self, key):
        import re

        pattern = re.compile(r"sha(1|256)/[a-zA-Z0-9+/=]{28,64}")
        assert pattern.fullmatch(spki_pin(key))
        assert pattern.fullmatch(spki_pin(key, "sha1"))

    def test_unknown_algorithm_raises(self, key):
        with pytest.raises(EncodingError):
            spki_pin(key, "md5")

    def test_parse_pin_rejects_garbage(self):
        with pytest.raises(EncodingError):
            parse_pin("not-a-pin")
        with pytest.raises(EncodingError):
            parse_pin("sha512/QUJD")

    def test_key_pin_shortcut(self, key):
        assert key.pin() == spki_pin(key)
