"""Tests for repro.corpus.categories, naming, profiles."""

import pytest

from repro.corpus.categories import (
    ANDROID_CATEGORIES,
    IOS_CATEGORIES,
    category_distribution,
    draw_category,
    pinning_multiplier,
)
from repro.corpus.naming import (
    GENERIC_THIRD_PARTY_HOSTS,
    app_identity,
    first_party_hosts,
)
from repro.corpus.profiles import (
    DATASET_PROFILES,
    PINNING_STYLES,
    COMMON_CONSISTENCY,
)
from repro.util.rng import DeterministicRng


class TestCategoryDistributions:
    @pytest.mark.parametrize("platform", ["android", "ios"])
    @pytest.mark.parametrize("dataset", ["common", "popular", "random"])
    def test_distribution_sums_to_one(self, platform, dataset):
        dist = category_distribution(platform, dataset)
        assert sum(w for _, w in dist) == pytest.approx(1.0, abs=0.01)

    def test_table1_heads_preserved(self):
        dist = dict(category_distribution("android", "popular"))
        assert dist["Games"] == pytest.approx(0.36)
        dist_ios = dict(category_distribution("ios", "popular"))
        assert dist_ios["Games"] == pytest.approx(0.21)

    def test_draw_category_valid(self):
        rng = DeterministicRng(1)
        for _ in range(50):
            assert draw_category("android", "random", rng) in ANDROID_CATEGORIES
            assert draw_category("ios", "random", rng) in IOS_CATEGORIES

    def test_games_dominates_popular_android(self):
        rng = DeterministicRng(2)
        draws = [draw_category("android", "popular", rng) for _ in range(1000)]
        assert draws.count("Games") > 250


class TestPinningMultipliers:
    def test_finance_tops(self):
        assert pinning_multiplier("Finance") == max(
            pinning_multiplier(c) for c in ANDROID_CATEGORIES
        )

    def test_games_suppressed(self):
        assert pinning_multiplier("Games") < 0.5

    def test_unknown_category_neutral(self):
        assert pinning_multiplier("Nonexistent") == 1.0


class TestNaming:
    def test_app_identity_deterministic(self):
        a = app_identity(DeterministicRng(5), "android", 3)
        b = app_identity(DeterministicRng(5), "android", 3)
        assert a == b

    def test_first_party_hosts(self):
        hosts = first_party_hosts("acme1", 3)
        assert hosts == ["api.acme1.com", "www.acme1.com", "cdn.acme1.com"]

    def test_generic_hosts_have_owners(self):
        for host, owner in GENERIC_THIRD_PARTY_HOSTS:
            assert "." in host and owner


class TestProfiles:
    def test_all_six_cells_present(self):
        for platform in ("android", "ios"):
            for dataset in ("common", "popular", "random"):
                assert (platform, dataset) in DATASET_PROFILES

    def test_paper_shape_ios_pins_more(self):
        for dataset in ("common", "popular", "random"):
            assert (
                DATASET_PROFILES[("ios", dataset)].dynamic_pin_rate
                > DATASET_PROFILES[("android", dataset)].dynamic_pin_rate
            )

    def test_paper_shape_static_exceeds_dynamic(self):
        for key, profile in DATASET_PROFILES.items():
            assert profile.embedded_material_rate > profile.dynamic_pin_rate

    def test_paper_shape_nsc_below_dynamic(self):
        for dataset in ("common", "popular", "random"):
            profile = DATASET_PROFILES[("android", dataset)]
            assert profile.nsc_pin_rate < profile.dynamic_pin_rate

    def test_ios_has_no_nsc(self):
        for dataset in ("common", "popular", "random"):
            assert DATASET_PROFILES[("ios", dataset)].nsc_pin_rate == 0.0

    def test_style_weights_normalized(self):
        for style in PINNING_STYLES.values():
            assert sum(style.mechanism_weights.values()) == pytest.approx(1.0)
            assert sum(style.scope_weights.values()) == pytest.approx(1.0)
            assert sum(style.form_weights.values()) == pytest.approx(1.0)

    def test_ca_pin_share_near_three_quarters(self):
        from repro.appmodel.pinning import PinScope

        for style in PINNING_STYLES.values():
            ca = (
                style.scope_weights[PinScope.ROOT]
                + style.scope_weights[PinScope.INTERMEDIATE]
            )
            assert 0.65 < ca < 0.80

    def test_common_consistency_counts_sum(self):
        p = COMMON_CONSISTENCY
        assert (
            p.both_platforms + p.android_only + p.ios_only
            == p.total_pinning_either
        )
        assert (
            p.both_identical
            + p.both_partial_consistent
            + p.both_inconsistent
            + p.both_inconclusive
            == p.both_platforms
        )
