"""Tests for repro.tls.ciphers, alerts, records, fingerprint."""


from repro.tls.alerts import (
    Alert,
    AlertDescription,
    AlertLevel,
    alert_for_reason,
)
from repro.tls.ciphers import (
    ALL_SUITES,
    MODERN_SUITES,
    TLS13_SUITES,
    WEAK_SUITES,
    advertises_weak,
    is_weak_suite,
    suites_for_version,
)
from repro.tls.fingerprint import ja3_fingerprint
from repro.tls.records import (
    ContentType,
    Direction,
    TLSRecord,
    TLSVersion,
    client_records,
    encrypted_application_data,
)


class TestCipherSuites:
    def test_weak_flags_consistent(self):
        for suite in WEAK_SUITES:
            assert is_weak_suite(suite)
        for suite in MODERN_SUITES:
            assert not is_weak_suite(suite)

    def test_is_weak_by_name(self):
        assert is_weak_suite("TLS_RSA_WITH_RC4_128_SHA")
        assert is_weak_suite("TLS_RSA_EXPORT_WITH_DES40_CBC_SHA")
        assert not is_weak_suite("TLS_AES_128_GCM_SHA256")

    def test_3des_not_confused_with_aes(self):
        assert not is_weak_suite("TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384")
        assert is_weak_suite("TLS_RSA_WITH_3DES_EDE_CBC_SHA")

    def test_advertises_weak(self):
        assert advertises_weak(list(MODERN_SUITES) + [WEAK_SUITES[0]])
        assert not advertises_weak(MODERN_SUITES)

    def test_suites_for_tls13(self):
        suites = suites_for_version("1.3")
        assert suites == list(TLS13_SUITES)

    def test_suites_for_tls12_exclude_tls13(self):
        suites = suites_for_version("1.2")
        assert all(s.min_version != "1.3" for s in suites)
        assert len(suites) == len(ALL_SUITES) - len(TLS13_SUITES)


class TestAlerts:
    def test_certificate_related(self):
        assert Alert(AlertDescription.BAD_CERTIFICATE).is_certificate_related()
        assert Alert(AlertDescription.UNKNOWN_CA).is_certificate_related()
        assert not Alert(AlertDescription.PROTOCOL_VERSION).is_certificate_related()

    def test_alert_for_reason_mapping(self):
        assert (
            alert_for_reason("pin_mismatch").description
            is AlertDescription.BAD_CERTIFICATE
        )
        assert (
            alert_for_reason("untrusted_root").description
            is AlertDescription.UNKNOWN_CA
        )
        assert (
            alert_for_reason("expired").description
            is AlertDescription.CERTIFICATE_EXPIRED
        )

    def test_alert_for_unknown_reason_defaults(self):
        assert (
            alert_for_reason("whatever").description
            is AlertDescription.BAD_CERTIFICATE
        )

    def test_default_level_fatal(self):
        assert Alert(AlertDescription.CLOSE_NOTIFY).level is AlertLevel.FATAL


class TestRecords:
    def test_version_flags(self):
        assert TLSVersion.TLS13.is_tls13
        assert not TLSVersion.TLS12.is_tls13

    def test_direction_filter(self):
        records = [
            TLSRecord(ContentType.HANDSHAKE, Direction.CLIENT_TO_SERVER, 100),
            TLSRecord(ContentType.HANDSHAKE, Direction.SERVER_TO_CLIENT, 100),
        ]
        assert len(client_records(records)) == 1

    def test_encrypted_application_data_filter(self):
        records = [
            TLSRecord(ContentType.APPLICATION_DATA, Direction.CLIENT_TO_SERVER, 50),
            TLSRecord(ContentType.ALERT, Direction.CLIENT_TO_SERVER, 31),
            TLSRecord(ContentType.APPLICATION_DATA, Direction.SERVER_TO_CLIENT, 60),
        ]
        c2s = encrypted_application_data(records)
        assert len(c2s) == 1 and c2s[0].length == 50
        s2c = encrypted_application_data(records, Direction.SERVER_TO_CLIENT)
        assert len(s2c) == 1 and s2c[0].length == 60


class TestFingerprint:
    def test_same_params_same_fingerprint(self):
        versions = (TLSVersion.TLS12, TLSVersion.TLS13)
        assert ja3_fingerprint(versions, MODERN_SUITES) == ja3_fingerprint(
            versions, MODERN_SUITES
        )

    def test_different_suites_differ(self):
        versions = (TLSVersion.TLS12,)
        assert ja3_fingerprint(versions, MODERN_SUITES) != ja3_fingerprint(
            versions, MODERN_SUITES[:3]
        )
