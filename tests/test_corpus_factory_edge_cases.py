"""Factory and planner edge cases: pin-everything, lax hostname checks,
NSC misconfigurations, Common-pair class wiring at paper scale."""


from repro.appmodel.pinning import PinMechanism
from repro.corpus.common import consistency_class_counts


class TestPinEverythingApps:
    def test_exist_and_contact_only_pinned(self, small_corpus):
        found = []
        for dataset in ("popular",):
            for packaged in small_corpus.dataset(
                "android", dataset
            ) + small_corpus.dataset("ios", dataset):
                app = packaged.app
                if not app.pins_at_runtime():
                    continue
                hosts = app.behavior.destinations()
                if hosts and all(app.pins_domain(h) for h in hosts):
                    found.append(app)
        # The 5 %-of-pinners class materialises at this scale or not —
        # but when it does, behaviour must contain at least one usage.
        for app in found:
            assert app.behavior.usages


class TestLaxHostnameApps:
    def test_lax_spec_policy_skips_hostname(self, small_corpus):
        from repro.util.simtime import STUDY_START

        lax_apps = [
            p.app
            for p in small_corpus.all_apps()
            if any(s.skips_hostname_check for s in p.app.active_specs())
        ]
        assert lax_apps, "corpus should include lax implementations"
        for app in lax_apps:
            store = (
                small_corpus.stores.android_aosp
                if app.platform == "android"
                else small_corpus.stores.ios
            )
            policy = app.runtime_policy(store)
            for spec in app.active_specs():
                if not spec.skips_hostname_check:
                    continue
                for domain in spec.domains:
                    resolved = spec.resolved[domain]
                    if not resolved.default_pki:
                        continue
                    chain = small_corpus.registry.resolve(domain).chain
                    # The chain still passes for its true hostname.
                    assert policy.accepts(chain, domain, STUDY_START)

    def test_lax_pins_still_detected_as_pinned(self, small_corpus):
        """Skipping hostname checks does not change MITM rejection: the
        proxy's forged chain fails the *pin*, so dynamic detection is
        unaffected."""
        from repro.core.dynamic import DynamicPipeline

        pipeline = DynamicPipeline(small_corpus)
        lax = [
            p
            for p in small_corpus.all_apps()
            if any(
                s.skips_hostname_check and s.active_at_runtime()
                for s in p.app.pinning_specs
            )
        ]
        for packaged in lax[:3]:
            result = pipeline.run_app(packaged)
            expected = {
                u.hostname
                for u in packaged.app.behavior.usages_within(30)
                if packaged.app.pins_domain(u.hostname)
            }
            assert result.pinned_destinations == expected


class TestNSCMisconfigApps:
    def test_override_specs_have_endpoints_and_usages(self, small_corpus):
        found = 0
        for packaged in small_corpus.all_apps("android"):
            app = packaged.app
            for spec in app.pinning_specs:
                if not spec.nsc_override_pins:
                    continue
                found += 1
                for domain in spec.domains:
                    assert small_corpus.registry.knows(domain)
                    assert app.behavior.usage_for(domain) is not None
                    assert not app.pins_domain(domain)
        assert found > 0

    def test_override_visible_in_package(self, small_corpus):
        from repro.appmodel.nsc import NSCConfig

        for packaged in small_corpus.dataset("android", "popular"):
            app = packaged.app
            if not any(s.nsc_override_pins for s in app.pinning_specs):
                continue
            node = packaged.package.get("res/xml/network_security_config.xml")
            assert node is not None
            config = NSCConfig.from_xml(node.content)
            assert any(dc.override_pins for dc in config.domain_configs)


class TestPaperScaleClassCounts:
    def test_counts_sum_to_paper_figures(self):
        counts = consistency_class_counts(575)
        pinning = sum(v for k, v in counts.items() if k != "none")
        assert pinning == 69
        assert (
            counts["both_identical"]
            + counts["both_partial"]
            + counts["both_inconsistent"]
            + counts["both_inconclusive"]
            == 27
        )
        assert (
            counts["android_only_inconsistent"]
            + counts["android_only_inconclusive"]
            == 20
        )
        assert (
            counts["ios_only_inconsistent"] + counts["ios_only_inconclusive"]
            == 22
        )


class TestNSCMechanismConstraints:
    def test_nsc_pinners_never_custom_pki(self, small_corpus):
        for packaged in small_corpus.all_apps("android"):
            for spec in packaged.app.pinning_specs:
                if spec.mechanism is PinMechanism.NSC and not spec.nsc_override_pins:
                    for domain in spec.domains:
                        endpoint = small_corpus.registry.resolve(domain)
                        assert endpoint.pki_kind == "default", domain

    def test_nsc_specs_never_obfuscated(self, small_corpus):
        for packaged in small_corpus.all_apps("android"):
            for spec in packaged.app.pinning_specs:
                if spec.mechanism is PinMechanism.NSC:
                    assert not spec.obfuscated
