"""Ciphersuite registry and weak-cipher classification.

Table 8 counts connections that *advertise* support for bad ciphersuites
(DES, 3DES, RC4 or EXPORT).  The registry below carries enough real suite
names for captures to look authentic and for the classifier to have
something to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class CipherSuite:
    """A TLS ciphersuite.

    Attributes:
        name: IANA-style name.
        min_version: lowest protocol version the suite applies to
            (``"1.3"`` suites are AEAD-only TLS 1.3 suites).
        weak: True for suites in the paper's "bad ciphers" classes.
    """

    name: str
    min_version: str = "1.0"
    weak: bool = False

    def __str__(self) -> str:  # pragma: no cover - display only
        return self.name


# TLS 1.3 suites.
TLS13_SUITES: Tuple[CipherSuite, ...] = (
    CipherSuite("TLS_AES_128_GCM_SHA256", "1.3"),
    CipherSuite("TLS_AES_256_GCM_SHA384", "1.3"),
    CipherSuite("TLS_CHACHA20_POLY1305_SHA256", "1.3"),
)

# Strong TLS 1.2 suites.
TLS12_STRONG_SUITES: Tuple[CipherSuite, ...] = (
    CipherSuite("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", "1.2"),
    CipherSuite("TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384", "1.2"),
    CipherSuite("TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256", "1.2"),
    CipherSuite("TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256", "1.2"),
    CipherSuite("TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA", "1.0"),
    CipherSuite("TLS_RSA_WITH_AES_128_CBC_SHA", "1.0"),
)

# The paper's "bad ciphers": DES, 3DES, RC4, EXPORT.
WEAK_SUITES: Tuple[CipherSuite, ...] = (
    CipherSuite("TLS_RSA_WITH_3DES_EDE_CBC_SHA", "1.0", weak=True),
    CipherSuite("TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA", "1.0", weak=True),
    CipherSuite("TLS_RSA_WITH_RC4_128_SHA", "1.0", weak=True),
    CipherSuite("TLS_RSA_WITH_RC4_128_MD5", "1.0", weak=True),
    CipherSuite("TLS_RSA_WITH_DES_CBC_SHA", "1.0", weak=True),
    CipherSuite("TLS_RSA_EXPORT_WITH_RC4_40_MD5", "1.0", weak=True),
    CipherSuite("TLS_RSA_EXPORT_WITH_DES40_CBC_SHA", "1.0", weak=True),
)

MODERN_SUITES: Tuple[CipherSuite, ...] = TLS13_SUITES + TLS12_STRONG_SUITES

ALL_SUITES: Tuple[CipherSuite, ...] = MODERN_SUITES + WEAK_SUITES

_WEAK_MARKERS = ("_DES_", "3DES", "RC4", "EXPORT")


def is_weak_suite(suite) -> bool:
    """Classify a suite (object or IANA name) as weak per the paper.

    A suite is weak if it uses DES, 3DES or RC4, or is an EXPORT suite.
    """
    name = suite.name if isinstance(suite, CipherSuite) else str(suite)
    return any(marker in name for marker in _WEAK_MARKERS)


def advertises_weak(suites: Sequence[CipherSuite]) -> bool:
    """True if any advertised suite is weak (Table 8's per-connection test)."""
    return any(is_weak_suite(s) for s in suites)


def suites_for_version(version: str) -> List[CipherSuite]:
    """Suites negotiable at the given protocol version."""
    if version == "1.3":
        return list(TLS13_SUITES)
    return [s for s in ALL_SUITES if s.min_version != "1.3"]
