"""Simulated TLS stack.

Models the parts of TLS that the paper's dynamic analysis observes on the
wire: protocol version negotiation, ciphersuite advertisement (including the
weak suites Table 8 counts), SNI, the certificate message, alerts, and the
record-level traffic patterns that drive the used/failed-connection
heuristics of Section 4.2.2 — in particular TLS 1.3's disguising of all
encrypted records as "Encrypted Application Data".

Client-side certificate checking is pluggable via
:mod:`repro.tls.policy` — the mechanism apps use to implement (or subvert)
pinning.
"""

from repro.tls.alerts import Alert, AlertDescription
from repro.tls.ciphers import (
    CipherSuite,
    MODERN_SUITES,
    WEAK_SUITES,
    is_weak_suite,
)
from repro.tls.handshake import ClientProfile, HandshakeOutcome, perform_handshake
from repro.tls.policy import (
    CompositePolicy,
    NSCPinPolicy,
    PinnedCertificatePolicy,
    SpkiPinPolicy,
    SystemValidationPolicy,
    TrustAllPolicy,
    ValidationPolicy,
)
from repro.tls.records import (
    ContentType,
    Direction,
    TLSRecord,
    TLSVersion,
)

__all__ = [
    "Alert",
    "AlertDescription",
    "CipherSuite",
    "ClientProfile",
    "CompositePolicy",
    "ContentType",
    "Direction",
    "HandshakeOutcome",
    "MODERN_SUITES",
    "NSCPinPolicy",
    "PinnedCertificatePolicy",
    "SpkiPinPolicy",
    "SystemValidationPolicy",
    "TLSRecord",
    "TLSVersion",
    "TrustAllPolicy",
    "ValidationPolicy",
    "WEAK_SUITES",
    "is_weak_suite",
    "perform_handshake",
]
