"""Simulated TLS handshake.

:func:`perform_handshake` negotiates version and ciphersuite between a
:class:`ClientProfile` and a server-side endpoint (any object exposing
``hostname``, ``chain``, ``supported_versions`` and ``supported_suites`` —
see :class:`repro.servers.endpoint.ServerEndpoint`), then runs the client's
validation policy over the served chain.

The outcome records everything the wire would reveal plus ground-truth
fields (validation failure reason) that only tests read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ChainValidationError
from repro.pki.chain import CertificateChain
from repro.tls.alerts import Alert, AlertDescription, alert_for_reason
from repro.tls.ciphers import CipherSuite, MODERN_SUITES
from repro.tls.policy import ValidationPolicy
from repro.tls.records import TLSVersion
from repro.util.simtime import Timestamp

_VERSION_ORDER = [
    TLSVersion.TLS10,
    TLSVersion.TLS11,
    TLSVersion.TLS12,
    TLSVersion.TLS13,
]


@dataclass
class ClientProfile:
    """The client half of a handshake.

    Attributes:
        sni: server name sent in the ClientHello (the field 99 % of the
            paper's flows carried, enabling destination attribution).
        policy: certificate validation policy.
        offered_versions: protocol versions offered, e.g. TLS 1.0–1.3.
        offered_suites: ciphersuites advertised.  Weak suites here are what
            Table 8 counts.
    """

    sni: str
    policy: ValidationPolicy
    offered_versions: Sequence[TLSVersion] = (
        TLSVersion.TLS12,
        TLSVersion.TLS13,
    )
    offered_suites: Sequence[CipherSuite] = MODERN_SUITES

    def max_version(self) -> TLSVersion:
        return max(self.offered_versions, key=_VERSION_ORDER.index)


@dataclass
class HandshakeOutcome:
    """Result of a simulated handshake.

    Attributes:
        success: True if the handshake completed (keys established).
        version: negotiated protocol version (None on negotiation failure).
        cipher: negotiated suite.
        served_chain: the chain the client saw (the real server's, or the
            proxy's forgery under MITM).
        client_alert: alert the client sent on rejection, if any.
        server_alert: alert the server sent (e.g. protocol_version).
        failure_reason: ground-truth machine-readable reason
            (``pin_mismatch``, ``untrusted_root``, ``no_common_version`` …);
            never read by detectors.
    """

    success: bool
    version: Optional[TLSVersion] = None
    cipher: Optional[CipherSuite] = None
    served_chain: Optional[CertificateChain] = None
    client_alert: Optional[Alert] = None
    server_alert: Optional[Alert] = None
    failure_reason: str = ""

    @property
    def rejected_certificate(self) -> bool:
        return self.client_alert is not None and self.client_alert.is_certificate_related()


def negotiate_version(
    client_versions: Sequence[TLSVersion], server_versions: Sequence[TLSVersion]
) -> Optional[TLSVersion]:
    """Highest protocol version both sides support."""
    common = set(client_versions) & set(server_versions)
    if not common:
        return None
    return max(common, key=_VERSION_ORDER.index)


def negotiate_cipher(
    version: TLSVersion,
    client_suites: Sequence[CipherSuite],
    server_suites: Sequence[CipherSuite],
) -> Optional[CipherSuite]:
    """Server-preference suite selection constrained by the version."""
    client_names = {s.name for s in client_suites}
    for suite in server_suites:
        if suite.name not in client_names:
            continue
        if version.is_tls13 and suite.min_version != "1.3":
            continue
        if not version.is_tls13 and suite.min_version == "1.3":
            continue
        return suite
    return None


def perform_handshake(
    client: ClientProfile,
    server,
    at_time: Timestamp,
    presented_chain: Optional[CertificateChain] = None,
) -> HandshakeOutcome:
    """Run a handshake and the client's certificate check.

    Args:
        client: client profile.
        server: endpoint (duck-typed; see module docstring).
        at_time: simulated time of the handshake.
        presented_chain: override the chain the client sees — this is how
            the MITM proxy injects its forgery.

    Returns:
        A :class:`HandshakeOutcome`; never raises for protocol-level
        failures (they are data, not errors, to the measurement).
    """
    version = negotiate_version(client.offered_versions, server.supported_versions)
    if version is None:
        return HandshakeOutcome(
            success=False,
            server_alert=Alert(AlertDescription.PROTOCOL_VERSION),
            failure_reason="no_common_version",
        )

    cipher = negotiate_cipher(version, client.offered_suites, server.supported_suites)
    if cipher is None:
        return HandshakeOutcome(
            success=False,
            version=version,
            server_alert=Alert(AlertDescription.HANDSHAKE_FAILURE),
            failure_reason="no_common_cipher",
        )

    chain = presented_chain if presented_chain is not None else server.chain
    try:
        client.policy.evaluate(chain, client.sni, at_time)
    except ChainValidationError as exc:
        return HandshakeOutcome(
            success=False,
            version=version,
            cipher=cipher,
            served_chain=chain,
            client_alert=alert_for_reason(exc.reason),
            failure_reason=exc.reason,
        )

    return HandshakeOutcome(
        success=True, version=version, cipher=cipher, served_chain=chain
    )
