"""TLS alerts.

Pinned clients that reject a forged chain send ``bad_certificate`` or
``certificate_unknown`` alerts (or just reset the TCP connection); the
paper notes such signals also occur for unrelated reasons, e.g.
``protocol_version`` alerts — both are modelled so the detector faces the
same confounders.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AlertDescription(enum.Enum):
    """The subset of RFC 8446 alert descriptions the simulation emits."""

    CLOSE_NOTIFY = 0
    UNEXPECTED_MESSAGE = 10
    BAD_RECORD_MAC = 20
    HANDSHAKE_FAILURE = 40
    BAD_CERTIFICATE = 42
    UNSUPPORTED_CERTIFICATE = 43
    CERTIFICATE_REVOKED = 44
    CERTIFICATE_EXPIRED = 45
    CERTIFICATE_UNKNOWN = 46
    ILLEGAL_PARAMETER = 47
    UNKNOWN_CA = 48
    PROTOCOL_VERSION = 70
    INSUFFICIENT_SECURITY = 71
    INTERNAL_ERROR = 80


class AlertLevel(enum.Enum):
    WARNING = 1
    FATAL = 2


@dataclass(frozen=True)
class Alert:
    """A TLS alert message."""

    description: AlertDescription
    level: AlertLevel = AlertLevel.FATAL

    def is_certificate_related(self) -> bool:
        """True for alerts a failed certificate check would produce."""
        return self.description in (
            AlertDescription.BAD_CERTIFICATE,
            AlertDescription.UNSUPPORTED_CERTIFICATE,
            AlertDescription.CERTIFICATE_REVOKED,
            AlertDescription.CERTIFICATE_EXPIRED,
            AlertDescription.CERTIFICATE_UNKNOWN,
            AlertDescription.UNKNOWN_CA,
        )


# Mapping from chain-validation failure reasons to the alert a real client
# stack would send.
ALERT_FOR_REASON = {
    "expired": AlertDescription.CERTIFICATE_EXPIRED,
    "not_yet_valid": AlertDescription.CERTIFICATE_EXPIRED,
    "revoked": AlertDescription.CERTIFICATE_REVOKED,
    "untrusted_root": AlertDescription.UNKNOWN_CA,
    "bad_signature": AlertDescription.BAD_CERTIFICATE,
    "bad_link": AlertDescription.BAD_CERTIFICATE,
    "not_ca": AlertDescription.BAD_CERTIFICATE,
    "hostname_mismatch": AlertDescription.CERTIFICATE_UNKNOWN,
    "pin_mismatch": AlertDescription.BAD_CERTIFICATE,
}


def alert_for_reason(reason: str) -> Alert:
    """The alert a client sends after a validation failure."""
    description = ALERT_FOR_REASON.get(reason, AlertDescription.BAD_CERTIFICATE)
    return Alert(description)
