"""JA3-style client fingerprints.

Section 4.5 notes that iOS OS-initiated traffic "exhibits a similar TLS
fingerprint as regular app traffic", which is why the paper could not
separate the two by fingerprinting and had to exclude associated domains
instead.  The simulation reproduces that: OS services and apps on the same
platform share a client stack and therefore a fingerprint.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Sequence, Tuple

from repro.core import obs
from repro.tls.ciphers import CipherSuite
from repro.tls.records import TLSVersion


@lru_cache(maxsize=None)
def _ja3_cached(
    versions: Tuple[TLSVersion, ...], suites: Tuple[CipherSuite, ...]
) -> str:
    material = ",".join(v.value for v in versions) + "|" + ",".join(
        s.name for s in suites
    )
    return hashlib.md5(material.encode("ascii")).hexdigest()


obs.register_cache("ja3", _ja3_cached)


def ja3_fingerprint(
    versions: Sequence[TLSVersion], suites: Sequence[CipherSuite]
) -> str:
    """Deterministic digest of the ClientHello-visible parameters.

    Same offered versions + suites (in order) ⇒ same fingerprint, as with
    real JA3.  The distinct (stack, configuration) population is tiny, so
    results are memoized process-wide.
    """
    return _ja3_cached(tuple(versions), tuple(suites))
