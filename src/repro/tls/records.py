"""TLS record-level trace model.

The dynamic detector never sees plaintext — it sees record sequences.  Two
facts from Section 4.2.2 drive the model:

* **TLS 1.2 and below**: application data travels in records whose content
  type is visibly ``application_data``; alerts are visibly ``alert``.
  "Presence of any Encrypted Application Data packets" ⇒ the connection was
  used.
* **TLS 1.3**: every post-ServerHello encrypted record — handshake
  finished, alerts, data — is disguised as ``application_data``.  The
  heuristics then are (1) more than two client "application data" records,
  or (2) a second client record whose length differs from an encrypted
  alert's.

Record lengths are therefore first-class: :data:`TLS13_ENCRYPTED_ALERT_LEN`
is the give-away length of a disguised alert.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence


class TLSVersion(enum.Enum):
    """Negotiable protocol versions."""

    TLS10 = "1.0"
    TLS11 = "1.1"
    TLS12 = "1.2"
    TLS13 = "1.3"

    @property
    def is_tls13(self) -> bool:
        return self is TLSVersion.TLS13

    def __str__(self) -> str:  # pragma: no cover - display only
        return f"TLS {self.value}"


class ContentType(enum.Enum):
    """Wire-visible record content types."""

    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23


class Direction(enum.Enum):
    CLIENT_TO_SERVER = "c2s"
    SERVER_TO_CLIENT = "s2c"


# A TLS 1.3 encrypted alert: 2 bytes alert + 1 byte inner type + 16 byte tag
# + 5 byte record header = 24 bytes of ciphertext, 19 of plaintext structure.
TLS13_ENCRYPTED_ALERT_LEN = 24

# A TLS 1.3 client Finished: 32-byte verify_data + type + tag + header.
TLS13_CLIENT_FINISHED_LEN = 53


@dataclass(frozen=True)
class TLSRecord:
    """One TLS record as seen on the wire.

    Attributes:
        content_type: wire-visible type.  For TLS 1.3 encrypted records this
            is always ``APPLICATION_DATA`` regardless of the inner type.
        direction: who sent it.
        length: ciphertext length in bytes.
        inner_type: ground-truth inner content type; carried for tests and
            ablations, **never** read by the detector (which must work from
            wire-visible fields only).
    """

    content_type: ContentType
    direction: Direction
    length: int
    inner_type: ContentType = ContentType.APPLICATION_DATA

    @property
    def wire_visible_application_data(self) -> bool:
        return self.content_type is ContentType.APPLICATION_DATA


def client_records(records: Sequence[TLSRecord]) -> List[TLSRecord]:
    """Filter a trace down to client-sent records."""
    return [r for r in records if r.direction is Direction.CLIENT_TO_SERVER]


def encrypted_application_data(
    records: Sequence[TLSRecord], direction: Direction = Direction.CLIENT_TO_SERVER
) -> List[TLSRecord]:
    """Wire-visible application-data records in one direction."""
    return [
        r
        for r in records
        if r.direction is direction and r.wire_visible_application_data
    ]
