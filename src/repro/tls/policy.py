"""Client-side certificate validation policies.

Apps express their trust decisions — including pinning — as a validation
policy.  A policy inspects the served chain for a hostname and either
returns (accept) or raises :class:`ChainValidationError` with a reason.

The catalogue covers the implementation techniques the paper detects:

* :class:`SystemValidationPolicy` — default root-store validation.
* :class:`SpkiPinPolicy` — OkHttp ``CertificatePinner`` / TrustKit style:
  require one of a set of ``shaN/<b64>`` SPKI pins in the chain.
* :class:`PinnedCertificatePolicy` — whole-certificate pinning against
  embedded certificate fingerprints.
* :class:`NSCPinPolicy` — Android Network Security Configuration pin-sets
  with per-domain scoping, expiration and ``overridePins``.
* :class:`TrustAllPolicy` — validation disabled; what a successful Frida
  hook turns any policy into.
* :class:`CompositePolicy` — per-domain routing (apps pin selectively,
  Section 5.2: "if an app uses pinning, it does so selectively").

Proper implementations pin *in addition to* standard validation — the paper
found no app that skipped normal checks (Section 5.3.4) — so pin policies
here wrap a base policy by default.  Tests can still construct the unsafe
variant explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence

from repro.errors import ChainValidationError
from repro.pki.chain import CertificateChain
from repro.pki.store import RootStore
from repro.pki.validation import ValidationContext, validate_chain
from repro.util.simtime import Timestamp


class ValidationPolicy:
    """Base class: decide whether to trust a served chain."""

    #: Which TLS library implements this policy; drives Frida hookability
    #: (Section 4.3).  Overridden per instance via the constructor.
    library: str = "platform-default"

    def evaluate(
        self, chain: CertificateChain, hostname: str, at_time: Timestamp
    ) -> None:
        """Accept (return) or reject (raise) the chain.

        Raises:
            ChainValidationError: on rejection.
        """
        raise NotImplementedError

    def accepts(
        self, chain: CertificateChain, hostname: str, at_time: Timestamp
    ) -> bool:
        try:
            self.evaluate(chain, hostname, at_time)
        except ChainValidationError:
            return False
        return True

    def is_pinning(self) -> bool:
        """Ground truth: does this policy constitute certificate pinning?"""
        return False


class SystemValidationPolicy(ValidationPolicy):
    """Default validation against the platform root store."""

    def __init__(
        self,
        store: RootStore,
        library: str = "platform-default",
        check_hostname: bool = True,
    ):
        self.store = store
        self.library = library
        self.check_hostname = check_hostname

    def evaluate(self, chain, hostname, at_time):
        ctx = ValidationContext(
            store=self.store,
            hostname=hostname,
            at_time=at_time,
            check_hostname=self.check_hostname,
        )
        validate_chain(chain, ctx)


class TrustAllPolicy(ValidationPolicy):
    """Validation disabled (hooked/bypassed client)."""

    def __init__(self, library: str = "hooked"):
        self.library = library

    def evaluate(self, chain, hostname, at_time):
        return None


class SpkiPinPolicy(ValidationPolicy):
    """SPKI pinning: the chain must contain one of a set of key pins.

    Args:
        pins: ``shaN/<base64>`` pin strings.
        base: standard validation to run first (None for the unsafe
            pin-only variant).
        library: implementing library, e.g. ``"okhttp"`` or ``"trustkit"``.
    """

    def __init__(
        self,
        pins: Iterable[str],
        base: Optional[ValidationPolicy] = None,
        library: str = "okhttp",
    ):
        self.pins: FrozenSet[str] = frozenset(pins)
        self.base = base
        self.library = library
        if not self.pins:
            raise ValueError("SpkiPinPolicy requires at least one pin")

    def is_pinning(self) -> bool:
        return True

    def evaluate(self, chain, hostname, at_time):
        if self.base is not None:
            self.base.evaluate(chain, hostname, at_time)
        if not any(chain.contains_spki(pin) for pin in self.pins):
            raise ChainValidationError(
                f"no pinned SPKI present for {hostname!r}", reason="pin_mismatch"
            )


class PinnedCertificatePolicy(ValidationPolicy):
    """Whole-certificate pinning against SHA-256 fingerprints."""

    def __init__(
        self,
        fingerprints: Iterable[str],
        base: Optional[ValidationPolicy] = None,
        library: str = "custom",
    ):
        self.fingerprints: FrozenSet[str] = frozenset(fingerprints)
        self.base = base
        self.library = library
        if not self.fingerprints:
            raise ValueError("PinnedCertificatePolicy requires a fingerprint")

    def is_pinning(self) -> bool:
        return True

    def evaluate(self, chain, hostname, at_time):
        if self.base is not None:
            self.base.evaluate(chain, hostname, at_time)
        served = {cert.fingerprint_sha256() for cert in chain}
        if not served & self.fingerprints:
            raise ChainValidationError(
                f"no pinned certificate present for {hostname!r}",
                reason="pin_mismatch",
            )


@dataclass(frozen=True)
class NSCDomainRule:
    """One ``<domain-config>`` worth of pinning state.

    Attributes:
        domain: the configured domain.
        include_subdomains: NSC ``includeSubdomains`` attribute.
        pins: SPKI pin strings from the ``<pin-set>``.
        pin_set_expiration: after this time the pin-set is ignored (NSC
            semantics: expired pin-sets fall back to default validation).
        override_pins: the misconfiguration Possemato et al. flagged — a
            debug/trust-anchor ``overridePins="true"`` that disables the
            pin check entirely.
    """

    domain: str
    include_subdomains: bool = True
    pins: FrozenSet[str] = frozenset()
    pin_set_expiration: Optional[Timestamp] = None
    override_pins: bool = False

    def matches(self, hostname: str) -> bool:
        hostname = hostname.lower()
        domain = self.domain.lower()
        if hostname == domain:
            return True
        return self.include_subdomains and hostname.endswith("." + domain)

    def active_at(self, at_time: Timestamp) -> bool:
        if self.override_pins or not self.pins:
            return False
        if self.pin_set_expiration is not None:
            return at_time.unix <= self.pin_set_expiration.unix
        return True


class NSCPinPolicy(ValidationPolicy):
    """Android Network Security Configuration semantics.

    Standard validation always runs; the pin check applies only to
    hostnames matched by a rule whose pin-set is active.
    """

    def __init__(
        self,
        rules: Sequence[NSCDomainRule],
        base: ValidationPolicy,
        library: str = "android-nsc",
    ):
        self.rules = list(rules)
        self.base = base
        self.library = library

    def is_pinning(self) -> bool:
        return any(rule.pins and not rule.override_pins for rule in self.rules)

    def rule_for(self, hostname: str) -> Optional[NSCDomainRule]:
        """Most specific matching rule (longest domain wins)."""
        matching = [r for r in self.rules if r.matches(hostname)]
        if not matching:
            return None
        return max(matching, key=lambda r: len(r.domain))

    def evaluate(self, chain, hostname, at_time):
        self.base.evaluate(chain, hostname, at_time)
        rule = self.rule_for(hostname)
        if rule is None or not rule.active_at(at_time):
            return
        if not any(chain.contains_spki(pin) for pin in rule.pins):
            raise ChainValidationError(
                f"NSC pin-set mismatch for {hostname!r}", reason="pin_mismatch"
            )


class CompositePolicy(ValidationPolicy):
    """Route validation per destination: pin some domains, not others.

    Args:
        default: policy for unmatched hostnames.
        overrides: mapping of domain → policy.  A hostname matches an
            override for the domain itself or any subdomain.
    """

    def __init__(
        self,
        default: ValidationPolicy,
        overrides: Optional[Dict[str, ValidationPolicy]] = None,
    ):
        self.default = default
        self.overrides: Dict[str, ValidationPolicy] = dict(overrides or {})

    def policy_for(self, hostname: str) -> ValidationPolicy:
        hostname = hostname.lower()
        best: Optional[str] = None
        for domain in self.overrides:
            d = domain.lower()
            if hostname == d or hostname.endswith("." + d):
                if best is None or len(d) > len(best):
                    best = d
        return self.overrides[best] if best is not None else self.default

    def is_pinning(self) -> bool:
        return any(policy.is_pinning() for policy in self.overrides.values())

    def pins_hostname(self, hostname: str) -> bool:
        """Ground truth: is this specific hostname covered by a pin?"""
        policy = self.policy_for(hostname)
        if isinstance(policy, NSCPinPolicy):
            rule = policy.rule_for(hostname)
            return rule is not None and bool(rule.pins) and not rule.override_pins
        return policy.is_pinning()

    def evaluate(self, chain, hostname, at_time):
        self.policy_for(hostname).evaluate(chain, hostname, at_time)
