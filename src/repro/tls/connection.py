"""Record-trace synthesis for a simulated connection.

Given a handshake outcome and the app's intent (send data / leave the
connection idle), produce the wire-visible record sequence and TCP teardown
that the capture layer stores and the Section 4.2.2 classifiers consume.

The traces reproduce the confounders the paper had to handle:

* redundant connections that complete the handshake but never carry data;
* failed handshakes for non-pinning reasons (version/cipher mismatch);
* TLS 1.3 disguising alerts and handshake finished as application data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.tls.handshake import HandshakeOutcome
from repro.tls.records import (
    ContentType,
    Direction,
    TLSRecord,
    TLSVersion,
    TLS13_CLIENT_FINISHED_LEN,
    TLS13_ENCRYPTED_ALERT_LEN,
)
from repro.util.rng import DeterministicRng

#: How the TCP connection ended, as visible in the capture.
TEARDOWN_RST = "rst"
TEARDOWN_FIN = "fin"
TEARDOWN_OPEN = "open"  # still open when the capture stopped

_TLS12_VISIBLE_ALERT_LEN = 31


@dataclass
class ConnectionTrace:
    """Wire-visible artefacts of one TCP/TLS connection."""

    records: List[TLSRecord] = field(default_factory=list)
    teardown: str = TEARDOWN_OPEN

    def client_app_data_records(self) -> List[TLSRecord]:
        return [
            r
            for r in self.records
            if r.direction is Direction.CLIENT_TO_SERVER
            and r.content_type is ContentType.APPLICATION_DATA
        ]

    def aborted(self) -> bool:
        return self.teardown in (TEARDOWN_RST, TEARDOWN_FIN)


def _app_data_length(rng: DeterministicRng) -> int:
    """A plausible ciphertext length for a real application-data record."""
    length = 80 + int(rng.expovariate(1 / 400.0))
    return min(length, 16384)


def synthesize_trace(
    outcome: HandshakeOutcome,
    rng: DeterministicRng,
    *,
    client_payload_records: int = 0,
    server_payload_records: int = 0,
    closes_cleanly: bool = True,
) -> ConnectionTrace:
    """Build the record trace for one connection.

    Args:
        outcome: handshake result.
        rng: randomness for record sizes and abort styles.
        client_payload_records: application-data records the client intends
            to send if the handshake succeeds (0 = redundant/idle
            connection).
        server_payload_records: response records from the server.
        closes_cleanly: idle connections either FIN (True) or stay open at
            capture end (False); used connections always stay open here —
            keep-alive — unless the handshake failed.
    """
    trace = ConnectionTrace()
    records = trace.records

    # ClientHello / ServerHello+Certificate are always wire-visible
    # handshake records.
    records.append(
        TLSRecord(ContentType.HANDSHAKE, Direction.CLIENT_TO_SERVER, 512 + rng.randint(0, 64), ContentType.HANDSHAKE)
    )
    if outcome.failure_reason == "no_common_version":
        records.append(
            TLSRecord(ContentType.ALERT, Direction.SERVER_TO_CLIENT, 7, ContentType.ALERT)
        )
        trace.teardown = TEARDOWN_FIN
        return trace

    records.append(
        TLSRecord(
            ContentType.HANDSHAKE,
            Direction.SERVER_TO_CLIENT,
            2800 + rng.randint(0, 1200),
            ContentType.HANDSHAKE,
        )
    )

    if outcome.failure_reason == "no_common_cipher":
        records.append(
            TLSRecord(ContentType.ALERT, Direction.SERVER_TO_CLIENT, 7, ContentType.ALERT)
        )
        trace.teardown = TEARDOWN_FIN
        return trace

    version = outcome.version or TLSVersion.TLS12
    is13 = version.is_tls13

    if outcome.client_alert is not None:
        # Certificate rejected: the client signals failure via a TLS alert
        # or a bare TCP reset — both happen in the wild (Section 4.2.2).
        if rng.chance(0.75):
            if is13:
                records.append(
                    TLSRecord(
                        ContentType.APPLICATION_DATA,
                        Direction.CLIENT_TO_SERVER,
                        TLS13_ENCRYPTED_ALERT_LEN,
                        ContentType.ALERT,
                    )
                )
            else:
                records.append(
                    TLSRecord(
                        ContentType.ALERT,
                        Direction.CLIENT_TO_SERVER,
                        _TLS12_VISIBLE_ALERT_LEN,
                        ContentType.ALERT,
                    )
                )
        trace.teardown = TEARDOWN_RST if rng.chance(0.5) else TEARDOWN_FIN
        return trace

    # Handshake completed.
    if is13:
        # Client Finished is disguised as application data.
        records.append(
            TLSRecord(
                ContentType.APPLICATION_DATA,
                Direction.CLIENT_TO_SERVER,
                TLS13_CLIENT_FINISHED_LEN,
                ContentType.HANDSHAKE,
            )
        )
    else:
        records.append(
            TLSRecord(
                ContentType.CHANGE_CIPHER_SPEC, Direction.CLIENT_TO_SERVER, 6, ContentType.CHANGE_CIPHER_SPEC
            )
        )
        records.append(
            TLSRecord(
                ContentType.HANDSHAKE, Direction.CLIENT_TO_SERVER, 45, ContentType.HANDSHAKE
            )
        )

    if client_payload_records <= 0:
        # Redundant connection: established, never used.
        if closes_cleanly:
            if is13:
                records.append(
                    TLSRecord(
                        ContentType.APPLICATION_DATA,
                        Direction.CLIENT_TO_SERVER,
                        TLS13_ENCRYPTED_ALERT_LEN,
                        ContentType.ALERT,  # close_notify
                    )
                )
            else:
                records.append(
                    TLSRecord(
                        ContentType.ALERT,
                        Direction.CLIENT_TO_SERVER,
                        _TLS12_VISIBLE_ALERT_LEN,
                        ContentType.ALERT,
                    )
                )
            trace.teardown = TEARDOWN_FIN
        else:
            trace.teardown = TEARDOWN_OPEN
        return trace

    for _ in range(client_payload_records):
        records.append(
            TLSRecord(
                ContentType.APPLICATION_DATA,
                Direction.CLIENT_TO_SERVER,
                _app_data_length(rng),
                ContentType.APPLICATION_DATA,
            )
        )
    for _ in range(server_payload_records):
        records.append(
            TLSRecord(
                ContentType.APPLICATION_DATA,
                Direction.SERVER_TO_CLIENT,
                _app_data_length(rng),
                ContentType.APPLICATION_DATA,
            )
        )
    trace.teardown = TEARDOWN_OPEN
    return trace
