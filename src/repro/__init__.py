"""repro — reproduction of *A Comparative Analysis of Certificate Pinning in
Android & iOS* (Pradeep et al., ACM IMC 2022).

The package is organised in two layers:

* **Substrates** — everything the paper's measurement depended on but we
  cannot have in a laptop-scale reproduction: a simulated X.509 PKI
  (:mod:`repro.pki`), a simulated TLS stack (:mod:`repro.tls`), an
  interception proxy and flow capture (:mod:`repro.netsim`), synthetic
  Android/iOS app packages (:mod:`repro.appmodel`), app-store corpora
  (:mod:`repro.corpus`), and device emulation (:mod:`repro.device`).
* **Core** — the paper's actual contribution: static and dynamic pinning
  detection, circumvention, PII analysis and the downstream analyses that
  regenerate every table and figure (:mod:`repro.core`).

Quickstart::

    from repro.corpus import CorpusConfig, CorpusGenerator
    from repro.core.analysis import Study

    corpus = CorpusGenerator(CorpusConfig(seed=2022).scaled(0.1)).generate()
    results = Study(corpus).run()
    print(results.table3().render())
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
