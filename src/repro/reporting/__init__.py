"""Rendering helpers for tables and figure data."""

from repro.reporting.tables import Table

__all__ = ["Table"]
