"""Plain-text table rendering for benchmark output.

Every table/figure computation returns a :class:`Table` so the benchmark
harness can print the same rows the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: What a cell with no data renders as — visually distinct from a true
#: zero (``0.00%``), which is a measured value.
NO_DATA = "—"


@dataclass
class Table:
    """A titled table of string-able cells."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def column(self, header: str) -> List[object]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Fixed-width text rendering."""
        cells = [self.headers] + [[_fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(row[i])) for row in cells)
            for i in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append(
                "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow([_fmt(c) for c in row])
        return buffer.getvalue()


def _fmt(cell: object) -> str:
    if cell is None:
        return NO_DATA
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def ratio(value: Optional[float], digits: int = 2) -> str:
    """Render a plain ratio (Jaccard overlap, rate) as a fixed-point string.

    Like :func:`percent`, ``None`` — the "no data" sentinel — renders as
    :data:`NO_DATA` so an undefined ratio can never masquerade as a
    measured ``0.00``.
    """
    if value is None:
        return NO_DATA
    return f"{value:.{digits}f}"


def percent(value: Optional[float], digits: int = 2) -> str:
    """Render a ratio as a percentage string.

    ``None`` — the "no data" sentinel from the strict stats helpers
    (:func:`repro.util.stats.proportion_or_none`) — renders as
    :data:`NO_DATA`, so an empty denominator can never masquerade as a
    measured ``0.00%``.
    """
    if value is None:
        return NO_DATA
    return f"{value * 100:.{digits}f}%"
