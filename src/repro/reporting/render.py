"""Canonical stdout rendering for study and sweep runs.

The byte layout of ``repro study`` / ``repro sweep`` stdout is a
contract: the CI parallel-parity check diffs it across execution plans,
and the service smoke job diffs a daemon-executed job against its
direct-CLI twin.  Both the CLI and the service therefore render through
these two functions — the *only* place the layout is defined — so
"byte-identical output" is true by construction, not by parallel
maintenance of two format strings.

Everything here is deterministic given the results object.  Volatile
commentary (timings, store statistics, telemetry tables, audit reports)
goes to stderr in the CLI and never enters these strings.
"""

from __future__ import annotations

from typing import List

#: Every table/figure ``repro study`` prints, in print order.  Also the
#: ``repro table <name>`` choice list (plus ``figure4``, which renders
#: as a pair).
TABLE_CHOICES: List[str] = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "table8", "table9", "figure2", "figure3", "figure5",
]


def render_study_stdout(results) -> str:
    """The full ``repro study`` stdout for a `StudyResults`, byte-exact."""
    parts: List[str] = []
    for name in TABLE_CHOICES:
        parts.append(getattr(results, name)().render())
        parts.append("\n\n")
    figure4a, figure4b = results.figure4()
    parts.append(figure4a.render())
    parts.append("\n\n")
    parts.append(figure4b.render())
    parts.append("\n\n")
    parts.append(
        f"circumvention android: {results.circumvention_rate('android'):.2%}\n"
    )
    parts.append(
        f"circumvention ios    : {results.circumvention_rate('ios'):.2%}\n"
    )
    return "".join(parts)


def render_sweep_stdout(results) -> str:
    """The full ``repro sweep`` stdout for a `SweepResults`.

    Unlike the study rendering this is *not* byte-reproducible across
    runs: the grid table embeds per-point elapsed seconds and store hit
    rates.  Cross-run comparisons use the JSON report with those fields
    masked (``tools/diff_sweep_reports.py``), not this string.
    """
    return results.render() + "\n"
