"""ASCII figure rendering.

The paper's figures are bar charts and heat maps; benchmarks print their
underlying data as tables, and these helpers add quick terminal visuals
for the examples.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart.

    Args:
        rows: (label, value) pairs; values must be non-negative.
        title: heading line.
        width: bar width of the maximum value.
        unit: suffix printed after each value.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if not rows:
        return "\n".join(lines + ["(no data)"])
    peak = max(value for _, value in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    for label, value in rows:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:g}{unit}")
    return "\n".join(lines)


def stacked_bar(
    label: str,
    segments: Sequence[Tuple[str, float]],
    width: int = 50,
) -> str:
    """One stacked bar (Figure 5 style): segments as fractions of total."""
    total = sum(value for _, value in segments)
    if total <= 0:
        return f"{label}  (empty)"
    glyphs = "█▓▒░"
    parts: List[str] = []
    legend: List[str] = []
    for index, (name, value) in enumerate(segments):
        glyph = glyphs[index % len(glyphs)]
        cells = round(width * value / total)
        parts.append(glyph * cells)
        legend.append(f"{glyph}={name}({value:g})")
    return f"{label}  {''.join(parts)}  {' '.join(legend)}"


def heatmap_row(label: str, values: Sequence[float], width: int = 6) -> str:
    """One heat-map row with 0–1 values rendered as shaded cells."""
    shades = " ░▒▓█"
    cells = []
    for value in values:
        value = min(max(value, 0.0), 1.0)
        cells.append(shades[round(value * (len(shades) - 1))] * width)
    return f"{label}  |{'|'.join(cells)}|"
