"""Shared utilities: deterministic RNG, encodings, statistics, simulated time.

Everything stochastic in the library flows through :class:`DeterministicRng`
so a single seed reproduces an entire study run bit-for-bit.
"""

from repro.util.encoding import (
    b64encode_nopad,
    hexdigest,
    looks_like_base64,
    pem_unwrap,
    pem_wrap,
    sha256_hex,
)
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.simtime import SimClock, Timestamp
from repro.util.stats import (
    chi_square_independence,
    jaccard_index,
    proportion,
)

__all__ = [
    "DeterministicRng",
    "derive_seed",
    "SimClock",
    "Timestamp",
    "b64encode_nopad",
    "hexdigest",
    "looks_like_base64",
    "pem_unwrap",
    "pem_wrap",
    "sha256_hex",
    "chi_square_independence",
    "jaccard_index",
    "proportion",
]
