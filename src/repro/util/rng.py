"""Deterministic random number generation.

The whole simulation must be reproducible from a single integer seed.  Two
rules keep that true:

1. Never touch the global :mod:`random` state — every component owns a
   :class:`DeterministicRng`.
2. Child generators are derived with :func:`derive_seed` from a parent seed
   plus a stable label, so adding a new consumer never perturbs the stream
   seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(parent_seed: int, *labels: object) -> int:
    """Derive a child seed from ``parent_seed`` and a sequence of labels.

    The derivation hashes the parent seed together with the labels, so the
    child stream is statistically independent of the parent and of siblings
    derived with different labels.

    Args:
        parent_seed: the seed of the owning component.
        labels: any hashable, ``str()``-able values identifying the child
            (e.g. ``("app", 17, "behavior")``).

    Returns:
        A 63-bit non-negative integer seed.
    """
    material = repr(parent_seed) + "\x1f" + "\x1f".join(str(l) for l in labels)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


class DeterministicRng:
    """A seeded random source with convenience draws used across the library.

    Thin wrapper around :class:`random.Random` that adds child derivation and
    a few domain-specific helpers (weighted choice without replacement,
    hex/identifier strings).
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def child(self, *labels: object) -> "DeterministicRng":
        """Return an independent generator derived from this one's seed."""
        return DeterministicRng(derive_seed(self.seed, *labels))

    # -- primitive draws ---------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def expovariate(self, lambd: float) -> float:
        return self._random.expovariate(lambd)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    # -- collection draws --------------------------------------------------

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct items (``k`` is clamped to ``len(items)``)."""
        k = min(k, len(items))
        return self._random.sample(list(items), k)

    def shuffled(self, items: Iterable[T]) -> List[T]:
        """Return a new shuffled list; the input is not modified."""
        out = list(items)
        self._random.shuffle(out)
        return out

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def weighted_sample(
        self, items: Sequence[T], weights: Sequence[float], k: int
    ) -> List[T]:
        """Weighted sampling *without* replacement via sequential draws."""
        pool = list(items)
        pool_weights = list(weights)
        out: List[T] = []
        k = min(k, len(pool))
        for _ in range(k):
            pick = self.weighted_choice(pool, pool_weights)
            idx = pool.index(pick)
            pool.pop(idx)
            pool_weights.pop(idx)
            out.append(pick)
        return out

    def poisson(self, lam: float) -> int:
        """Draw from a Poisson distribution (Knuth's method; lam < ~700)."""
        if lam <= 0:
            return 0
        import math

        threshold = math.exp(-lam)
        count = 0
        product = self._random.random()
        while product > threshold:
            count += 1
            product *= self._random.random()
        return count

    def zipf_rank(self, n: int, exponent: float = 1.0) -> int:
        """Draw a 1-based rank in [1, n] with Zipf-like probability."""
        if n < 1:
            raise ValueError("n must be >= 1")
        weights = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
        total = sum(weights)
        target = self._random.random() * total
        acc = 0.0
        for rank, weight in enumerate(weights, start=1):
            acc += weight
            if target <= acc:
                return rank
        return n

    # -- string draws ------------------------------------------------------

    def hex_string(self, length: int) -> str:
        """Random lowercase hex string of the given length."""
        alphabet = "0123456789abcdef"
        return "".join(self._random.choice(alphabet) for _ in range(length))

    def token(self, length: int, alphabet: Optional[str] = None) -> str:
        """Random identifier-ish token."""
        alphabet = alphabet or "abcdefghijklmnopqrstuvwxyz0123456789"
        return "".join(self._random.choice(alphabet) for _ in range(length))

    def random_bytes(self, length: int) -> bytes:
        return bytes(self._random.randrange(256) for _ in range(length))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeterministicRng(seed={self.seed})"
