"""Encoding helpers shared by the PKI layer and the static analyzer.

These mirror the encodings the paper's static analysis searches for:
base64 SPKI digests (``sha256/...`` pins), hex digests, and PEM-armoured
certificate blobs delimited by ``-----BEGIN CERTIFICATE-----``.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import re
from typing import List

from repro.errors import EncodingError

PEM_BEGIN = "-----BEGIN {label}-----"
PEM_END = "-----END {label}-----"

_BASE64_RE = re.compile(r"^[A-Za-z0-9+/]+={0,2}$")


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def sha1_hex(data: bytes) -> str:
    """Hex SHA-1 digest of ``data``."""
    return hashlib.sha1(data).hexdigest()


def hexdigest(data: bytes, algorithm: str = "sha256") -> str:
    """Hex digest of ``data`` with the named algorithm (sha1 or sha256)."""
    if algorithm == "sha256":
        return sha256_hex(data)
    if algorithm == "sha1":
        return sha1_hex(data)
    raise EncodingError(f"unsupported digest algorithm: {algorithm!r}")


def b64encode_nopad(data: bytes) -> str:
    """Standard base64 without trailing padding (as in HPKP pin headers)."""
    return base64.b64encode(data).decode("ascii").rstrip("=")


def b64encode(data: bytes) -> str:
    """Standard base64 with padding."""
    return base64.b64encode(data).decode("ascii")


def b64decode(text: str) -> bytes:
    """Decode base64, tolerating missing padding."""
    padded = text + "=" * (-len(text) % 4)
    try:
        # binascii.Error (a ValueError subclass) is what b64decode raises
        # on bad input; anything else — e.g. TypeError from passing bytes
        # — is a caller bug and must propagate.
        return base64.b64decode(padded, validate=True)
    except binascii.Error as exc:
        raise EncodingError(f"invalid base64 payload: {text[:32]!r}...") from exc


def looks_like_base64(text: str) -> bool:
    """Heuristic used by the hash-grep: is this a plausible base64 token?"""
    if not text:
        return False
    return bool(_BASE64_RE.match(text))


def pem_wrap(der: bytes, label: str = "CERTIFICATE", width: int = 64) -> str:
    """Armor a DER-like payload into a PEM block.

    Args:
        der: raw payload bytes.
        label: PEM label (``CERTIFICATE``, ``PUBLIC KEY``...).
        width: line-wrap width for the base64 body.
    """
    body = b64encode(der)
    lines = [body[i : i + width] for i in range(0, len(body), width)]
    return "\n".join(
        [PEM_BEGIN.format(label=label), *lines, PEM_END.format(label=label)]
    )


def pem_unwrap(text: str, label: str = "CERTIFICATE") -> List[bytes]:
    """Extract every PEM block with the given label from ``text``.

    Returns:
        The decoded payload of each block, in order of appearance.

    Raises:
        EncodingError: if a block's body is not valid base64.
    """
    begin = PEM_BEGIN.format(label=label)
    end = PEM_END.format(label=label)
    blocks: List[bytes] = []
    cursor = 0
    while True:
        start = text.find(begin, cursor)
        if start < 0:
            break
        stop = text.find(end, start)
        if stop < 0:
            raise EncodingError("unterminated PEM block")
        body = text[start + len(begin) : stop]
        blocks.append(b64decode("".join(body.split())))
        cursor = stop + len(end)
    return blocks


def contains_pem_delimiter(text: str) -> bool:
    """True if the text contains a certificate PEM begin marker.

    This is exactly the string the paper greps for in app code
    (Section 4.1.2).
    """
    return "-----BEGIN CERTIFICATE-----" in text
