"""Simulated time.

The study ran over 2021; certificate validity, expiry checks and capture
timestamps all need a consistent notion of "now" that does not depend on the
wall clock.  :class:`SimClock` provides a monotonically advancing simulated
clock anchored at the study epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

SECONDS_PER_DAY = 86_400
SECONDS_PER_YEAR = 365 * SECONDS_PER_DAY

# 2021-05-01T00:00:00Z — midpoint of the paper's Common/Popular crawls.
STUDY_EPOCH = 1_619_827_200


@dataclass(frozen=True, order=True)
class Timestamp:
    """A point in simulated time, stored as unix seconds."""

    unix: int

    def plus_days(self, days: float) -> "Timestamp":
        return Timestamp(self.unix + int(days * SECONDS_PER_DAY))

    def plus_years(self, years: float) -> "Timestamp":
        return Timestamp(self.unix + int(years * SECONDS_PER_YEAR))

    def plus_seconds(self, seconds: float) -> "Timestamp":
        return Timestamp(self.unix + int(seconds))

    def days_until(self, other: "Timestamp") -> float:
        return (other.unix - self.unix) / SECONDS_PER_DAY

    def isoformat(self) -> str:
        """Render as an ISO-8601 UTC string (no external deps)."""
        import datetime

        dt = datetime.datetime.fromtimestamp(self.unix, tz=datetime.timezone.utc)
        return dt.strftime("%Y-%m-%dT%H:%M:%SZ")

    def __str__(self) -> str:  # pragma: no cover - display only
        return self.isoformat()


STUDY_START = Timestamp(STUDY_EPOCH)


class SimClock:
    """A monotonically advancing simulated clock.

    Components that need the current time receive a clock rather than calling
    into the OS; tests advance it explicitly.
    """

    def __init__(self, start: Timestamp = STUDY_START):
        self._now = start

    @property
    def now(self) -> Timestamp:
        return self._now

    def advance(self, seconds: float) -> Timestamp:
        """Move the clock forward; negative deltas are rejected."""
        if seconds < 0:
            raise ValueError("simulated time cannot move backwards")
        self._now = self._now.plus_seconds(seconds)
        return self._now

    def ticks(self, interval: float, count: int) -> Iterator[Timestamp]:
        """Yield ``count`` timestamps spaced ``interval`` seconds apart,
        advancing the clock as it goes."""
        for _ in range(count):
            yield self._now
            self.advance(interval)
