"""Statistics helpers used by the analysis layer.

The paper uses a chi-square test of independence (p < 0.05) to compare PII
prevalence across pinned vs non-pinned traffic (Section 5.5) and Jaccard
indices to compare pinned-domain sets across platforms (Section 5.1).
scipy is used when available; a pure-Python fallback keeps the library
importable without it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Set, TypeVar

T = TypeVar("T")


def jaccard_index(a: Set[T], b: Set[T]) -> float:
    """Jaccard similarity |a ∩ b| / |a ∪ b|; defined as 1.0 for two empty sets."""
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union)


def proportion(count: int, total: int) -> float:
    """Safe ratio; 0.0 when the denominator is zero."""
    if total <= 0:
        return 0.0
    return count / total


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square test of independence on a 2x2 table."""

    statistic: float
    p_value: float
    degrees_of_freedom: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _chi2_sf_1df(x: float) -> float:
    """Survival function of chi-square with 1 dof = erfc(sqrt(x/2))."""
    return math.erfc(math.sqrt(x / 2.0))


def chi_square_independence(
    table: Sequence[Sequence[float]], correction: bool = True
) -> ChiSquareResult:
    """Chi-square test of independence on a 2x2 contingency table.

    Args:
        table: ``[[a, b], [c, d]]`` observed counts.
        correction: apply Yates' continuity correction (scipy's default).

    Returns:
        A :class:`ChiSquareResult`.

    Raises:
        ValueError: if the table is not 2x2 or a margin is zero.
    """
    if len(table) != 2 or any(len(row) != 2 for row in table):
        raise ValueError("chi_square_independence expects a 2x2 table")

    # Validate margins before dispatching: a zero margin must raise the
    # same ValueError whether scipy handles the table or the fallback
    # does (scipy's own zero-margin error has a different message, and
    # callers match on this one).
    a, b = table[0]
    c, d = table[1]
    row_totals = (a + b, c + d)
    col_totals = (a + c, b + d)
    grand = a + b + c + d
    if grand <= 0 or 0 in row_totals or 0 in col_totals:
        raise ValueError("contingency table has a zero margin")

    try:
        from scipy.stats import chi2_contingency

        stat, p_value, dof, _ = chi2_contingency(table, correction=correction)
        return ChiSquareResult(float(stat), float(p_value), int(dof))
    except ImportError:  # pragma: no cover - exercised only without scipy
        pass

    stat = 0.0
    observed = ((a, b), (c, d))
    for i in range(2):
        for j in range(2):
            expected = row_totals[i] * col_totals[j] / grand
            diff = abs(observed[i][j] - expected)
            if correction:
                diff = max(0.0, diff - 0.5)
            stat += diff * diff / expected
    return ChiSquareResult(stat, _chi2_sf_1df(stat), 1)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
