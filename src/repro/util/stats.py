"""Statistics helpers used by the analysis layer.

The paper uses a chi-square test of independence (p < 0.05) to compare PII
prevalence across pinned vs non-pinned traffic (Section 5.5) and Jaccard
indices to compare pinned-domain sets across platforms (Section 5.1).
scipy is used when available; a pure-Python fallback keeps the library
importable without it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Set, TypeVar

T = TypeVar("T")


def jaccard_index(a: Set[T], b: Set[T]) -> float:
    """Jaccard similarity |a ∩ b| / |a ∪ b|; defined as 1.0 for two empty sets."""
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union)


def proportion(count: int, total: int) -> float:
    """Lenient ratio; 0.0 when the denominator is zero.

    Use only where a zero denominator genuinely *means* zero (e.g. "no
    apps, so no pinning apps").  Anywhere the result is rendered, prefer
    :func:`proportion_or_none` — collapsing "no data" into ``0.0`` made
    empty denominators print as ``0.00%`` in paper tables, which reads
    as a measured zero."""
    if total <= 0:
        return 0.0
    return count / total


def proportion_or_none(count: int, total: int) -> Optional[float]:
    """Strict ratio; ``None`` (no data) when the denominator is zero.

    ``None`` propagates to :func:`repro.reporting.tables.percent` and
    cell formatting as "—", keeping "nothing to measure" visually
    distinct from a measured 0 %.
    """
    if total <= 0:
        return None
    return count / total


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square test of independence on a 2x2 table."""

    statistic: float
    p_value: float
    degrees_of_freedom: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _chi2_sf_1df(x: float) -> float:
    """Survival function of chi-square with 1 dof = erfc(sqrt(x/2))."""
    return math.erfc(math.sqrt(x / 2.0))


def chi_square_independence(
    table: Sequence[Sequence[float]], correction: bool = True
) -> ChiSquareResult:
    """Chi-square test of independence on a 2x2 contingency table.

    Args:
        table: ``[[a, b], [c, d]]`` observed counts.
        correction: apply Yates' continuity correction (scipy's default).

    Returns:
        A :class:`ChiSquareResult`.

    Raises:
        ValueError: if the table is not 2x2 or a margin is zero.
    """
    if len(table) != 2 or any(len(row) != 2 for row in table):
        raise ValueError("chi_square_independence expects a 2x2 table")

    # Validate margins before dispatching: a zero margin must raise the
    # same ValueError whether scipy handles the table or the fallback
    # does (scipy's own zero-margin error has a different message, and
    # callers match on this one).
    a, b = table[0]
    c, d = table[1]
    row_totals = (a + b, c + d)
    col_totals = (a + c, b + d)
    grand = a + b + c + d
    if grand <= 0 or 0 in row_totals or 0 in col_totals:
        raise ValueError("contingency table has a zero margin")

    try:
        from scipy.stats import chi2_contingency

        stat, p_value, dof, _ = chi2_contingency(table, correction=correction)
        return ChiSquareResult(float(stat), float(p_value), int(dof))
    except ImportError:  # pragma: no cover - exercised only without scipy
        pass

    stat = 0.0
    observed = ((a, b), (c, d))
    for i in range(2):
        for j in range(2):
            expected = row_totals[i] * col_totals[j] / grand
            diff = abs(observed[i][j] - expected)
            if correction:
                diff = max(0.0, diff - 0.5)
            stat += diff * diff / expected
    return ChiSquareResult(stat, _chi2_sf_1df(stat), 1)


def mean(values: Sequence[float]) -> float:
    """Lenient arithmetic mean; 0.0 for an empty sequence.

    As with :func:`proportion`, prefer :func:`mean_or_none` wherever the
    value is rendered — an empty sequence has no mean, and printing one
    as ``0.00`` fabricates data.
    """
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def mean_or_none(values: Sequence[float]) -> Optional[float]:
    """Strict arithmetic mean; ``None`` (no data) for an empty sequence."""
    values = list(values)
    if not values:
        return None
    return sum(values) / len(values)
