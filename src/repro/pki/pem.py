"""Loading certificates back out of PEM text.

The static analyzer recovers certificates from app packages as PEM blobs;
this module turns those blobs into :class:`ParsedCertificate` views.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.core import obs
from repro.errors import CertificateError
from repro.pki.certificate import ParsedCertificate, parse_der
from repro.util.encoding import pem_unwrap


@lru_cache(maxsize=4096)
def _load_pem_certificates_cached(text: str) -> Tuple[ParsedCertificate, ...]:
    """Cached parse of one PEM blob.

    Apps ship the same bundled chains (shared SDKs, the same custom roots)
    and the static pipeline re-parses each asset on every scan, so the
    distinct-blob population is small and hot.  ``ParsedCertificate`` is
    frozen, so sharing instances across callers is safe.
    """
    certificates: List[ParsedCertificate] = []
    for der in pem_unwrap(text, label="CERTIFICATE"):
        try:
            certificates.append(parse_der(der))
        except CertificateError:
            continue
    return tuple(certificates)


obs.register_cache("pem_parse", _load_pem_certificates_cached)


def load_pem_certificates(text: str) -> List[ParsedCertificate]:
    """Parse every certificate PEM block found in ``text``.

    Blocks that decode as base64 but are not canonical certificate payloads
    are skipped (apps embed all sorts of PEM-looking material); blocks with
    broken base64 raise.

    Raises:
        EncodingError: on malformed PEM armor.
    """
    return list(_load_pem_certificates_cached(text))
