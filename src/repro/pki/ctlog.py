"""A Certificate Transparency index standing in for crt.sh.

The paper resolves SPKI hashes found in app packages to actual certificates
by querying crt.sh (Section 4.1.3).  :class:`CTLog` indexes every
certificate the simulated PKI issues, keyed by SPKI digest (both sha1 and
sha256, both base64 and hex — the encodings the hash-grep can surface).

Coverage is intentionally imperfect: private/custom-PKI certificates are
never logged, mirroring the paper's observation that only ~50 % of unique
pins resolved to certificates (Section 5.3).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core import obs
from repro.pki.certificate import Certificate
from repro.pki.chain import CertificateChain
from repro.util.encoding import b64encode


class CTLog:
    """An in-memory index of publicly logged certificates."""

    def __init__(self):
        self._by_digest: Dict[str, List[Certificate]] = {}
        self._seen: Set[str] = set()
        # Memoized search results (the static pipeline resolves the same
        # few pins for thousands of apps).  Invalidated wholesale whenever
        # a new certificate lands in the index.
        self._search_cache: Dict[str, Tuple[Certificate, ...]] = {}

    def _index_keys(self, cert: Certificate) -> List[str]:
        sha256 = cert.key.spki_sha256()
        sha1 = cert.key.spki_sha1()
        return [
            b64encode(sha256),
            sha256.hex(),
            b64encode(sha1),
            sha1.hex(),
        ]

    def log_certificate(self, cert: Certificate) -> None:
        """Add one certificate to the index (idempotent per fingerprint)."""
        fingerprint = cert.fingerprint_sha256()
        if fingerprint in self._seen:
            return
        self._seen.add(fingerprint)
        self._search_cache.clear()
        for key in self._index_keys(cert):
            self._by_digest.setdefault(key, []).append(cert)

    def log_chain(self, chain: CertificateChain) -> None:
        """Log every certificate in a served chain."""
        for cert in chain:
            self.log_certificate(cert)

    def search_spki(self, digest: str) -> List[Certificate]:
        """Look up certificates whose SPKI digest matches.

        Args:
            digest: base64 or hex encoding of a sha1/sha256 SPKI digest.
                Trailing base64 padding may be present or absent.
        """
        cached = self._search_cache.get(digest)
        obs.cache_event("ctlog_search", hit=cached is not None)
        if cached is None:
            hits = self._by_digest.get(digest)
            if hits is None and not digest.endswith("="):
                for pad in ("=", "=="):
                    hits = self._by_digest.get(digest + pad)
                    if hits is not None:
                        break
            cached = tuple(hits) if hits else ()
            self._search_cache[digest] = cached
        return list(cached)

    def search_pin(self, pin: str) -> List[Certificate]:
        """Look up a ``shaN/<base64>`` pin string."""
        _, _, digest = pin.partition("/")
        return self.search_spki(digest)

    @property
    def size(self) -> int:
        """Number of distinct certificates logged."""
        return len(self._seen)
