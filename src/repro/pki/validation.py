"""Chain validation, hostname matching and PKI classification.

This module implements the client-side checks the paper's TLS layer needs:

* :func:`validate_chain` — the default (root-store) validation algorithm:
  link signatures, validity windows, CA flags, hostname match, a path to a
  trusted anchor, revocation.
* :func:`hostname_matches` — RFC-6125-style matching with single-label
  wildcards.
* :func:`classify_pki` — the Section 5.3.1 OpenSSL-against-Mozilla check
  that labels a pinned destination as using the default or a custom PKI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import obs
from repro.errors import ChainValidationError
from repro.pki.certificate import Certificate
from repro.pki.chain import CertificateChain
from repro.pki.revocation import RevocationList
from repro.pki.store import RootStore
from repro.util.simtime import Timestamp


def hostname_matches(pattern: str, hostname: str) -> bool:
    """RFC-6125-style hostname matching.

    A leading ``*.`` wildcard matches exactly one label; wildcards anywhere
    else are not honoured.  Comparison is case-insensitive.
    """
    pattern = pattern.lower().rstrip(".")
    hostname = hostname.lower().rstrip(".")
    if not pattern or not hostname:
        return False
    if pattern == hostname:
        return True
    if pattern.startswith("*."):
        suffix = pattern[2:]
        if not suffix:
            return False
        head, _, tail = hostname.partition(".")
        return bool(head) and tail == suffix
    return False


@dataclass
class ValidationContext:
    """Everything a validator needs besides the chain itself.

    Attributes:
        store: trusted roots.
        hostname: expected server identity (skip the check when empty —
            this is the misbehaviour Stone et al. hunt for, kept available
            so tests can model it).
        at_time: validation time.
        revocation: optional CRL set.
        check_hostname: toggle for the hostname check.
        check_validity: toggle for the expiry check.
    """

    store: RootStore
    hostname: str
    at_time: Timestamp
    revocation: Optional[RevocationList] = None
    check_hostname: bool = True
    check_validity: bool = True


#: Failure reasons that depend on the validation time and therefore must
#: never be served from the cache (a chain expired *now* may have been
#: fine an hour ago, and vice versa).
_TIME_DEPENDENT_REASONS = frozenset({"expired", "not_yet_valid", "revoked"})


def validate_chain(chain: CertificateChain, ctx: ValidationContext) -> Certificate:
    """Validate a served chain; return the trust anchor used.

    Performs, in order: link-name consistency, per-certificate validity
    windows, CA flags on non-leaf links, simulated signature verification,
    revocation, hostname match on the leaf, and anchoring in the store
    (either the terminal certificate is itself trusted, or its issuer is
    found in the store and verifies it).

    Results are memoized on the chain object.  The same chain is validated
    many times during a study (every connection to a destination re-serves
    the same chain), and everything except the validity-window checks is
    independent of ``at_time``, so a cached outcome can be replayed for any
    time inside the chain's joint validity window.  Time-dependent failures
    are never cached, and nothing is cached when a revocation list is in
    play (its contents may change between calls).

    Raises:
        ChainValidationError: with a machine-readable ``reason`` on the
            first failed check (``bad_link``, ``expired``, ``not_yet_valid``,
            ``not_ca``, ``bad_signature``, ``revoked``,
            ``hostname_mismatch``, ``untrusted_root``).
    """
    if ctx.revocation is not None:
        return _validate_chain_checks(chain, ctx)

    cache = chain.__dict__.get("_validation_cache")
    if cache is None:
        cache = {}
        object.__setattr__(chain, "_validation_cache", cache)
    # The store participates in the key by identity (default object
    # hash/eq), which also keeps it alive so the id cannot be recycled.
    key = (
        ctx.store,
        ctx.store.generation,
        ctx.hostname,
        ctx.check_hostname,
        ctx.check_validity,
    )
    hit = cache.get(key)
    if hit is not None:
        anchor, message, reason, window_lo, window_hi = hit
        if not ctx.check_validity or window_lo <= ctx.at_time.unix <= window_hi:
            obs.cache_event("validate_chain", hit=True)
            if reason is None:
                return anchor
            raise ChainValidationError(message, reason=reason)

    obs.cache_event("validate_chain", hit=False)
    window_lo = max(cert.not_before.unix for cert in chain)
    window_hi = min(cert.not_after.unix for cert in chain)
    try:
        anchor = _validate_chain_checks(chain, ctx)
    except ChainValidationError as exc:
        if exc.reason not in _TIME_DEPENDENT_REASONS:
            cache[key] = (None, str(exc), exc.reason, window_lo, window_hi)
        raise
    cache[key] = (anchor, None, None, window_lo, window_hi)
    return anchor


def _validate_chain_checks(
    chain: CertificateChain, ctx: ValidationContext
) -> Certificate:
    """The actual checks behind :func:`validate_chain`, uncached."""
    if not chain.links_consistent():
        raise ChainValidationError(
            "issuer/subject names do not link", reason="bad_link"
        )

    for cert in chain:
        if ctx.check_validity:
            if ctx.at_time.unix > cert.not_after.unix:
                raise ChainValidationError(
                    f"{cert.common_name!r} expired {cert.not_after}",
                    reason="expired",
                )
            if ctx.at_time.unix < cert.not_before.unix:
                raise ChainValidationError(
                    f"{cert.common_name!r} not valid before {cert.not_before}",
                    reason="not_yet_valid",
                )
        if ctx.revocation is not None and ctx.revocation.is_revoked(cert):
            raise ChainValidationError(
                f"{cert.common_name!r} is revoked", reason="revoked"
            )

    for cert in chain.certificates[1:]:
        if not cert.is_ca:
            raise ChainValidationError(
                f"{cert.common_name!r} used as an issuer but is not a CA",
                reason="not_ca",
            )

    # Verify each link's signature under its parent's key.
    for child, parent in zip(chain.certificates, chain.certificates[1:]):
        if not parent.key.verify(child.tbs_bytes(), child.signature):
            raise ChainValidationError(
                f"signature on {child.common_name!r} does not verify under "
                f"{parent.common_name!r}",
                reason="bad_signature",
            )

    if ctx.check_hostname and ctx.hostname:
        if not chain.leaf.matches_hostname(ctx.hostname):
            raise ChainValidationError(
                f"leaf does not match hostname {ctx.hostname!r}",
                reason="hostname_mismatch",
            )

    terminal = chain.terminal
    if ctx.store.trusts(terminal):
        if not terminal.key.verify(terminal.tbs_bytes(), terminal.signature):
            raise ChainValidationError(
                "trusted terminal certificate fails self-verification",
                reason="bad_signature",
            )
        return terminal

    anchor = ctx.store.find_issuer(terminal)
    if anchor is None:
        raise ChainValidationError(
            f"no trust anchor for issuer {terminal.issuer.render()!r}",
            reason="untrusted_root",
        )
    if not anchor.key.verify(terminal.tbs_bytes(), terminal.signature):
        raise ChainValidationError(
            f"signature on {terminal.common_name!r} does not verify under "
            f"anchor {anchor.common_name!r}",
            reason="bad_signature",
        )
    return anchor


def chain_is_valid(chain: CertificateChain, ctx: ValidationContext) -> bool:
    """Boolean convenience wrapper around :func:`validate_chain`."""
    try:
        validate_chain(chain, ctx)
    except ChainValidationError:
        return False
    return True


def classify_pki(
    chain: CertificateChain, mozilla_store: RootStore, at_time: Timestamp
) -> str:
    """Classify a served chain as ``"default"`` or ``"custom"`` PKI.

    Mirrors Section 5.3.1: validate the chain with OpenSSL configured with
    the Mozilla CA store (no hostname check — the paper validates chains,
    not connections).  Chains that anchor in Mozilla's store are "default
    PKI"; everything else is "custom".
    """
    ctx = ValidationContext(
        store=mozilla_store, hostname="", at_time=at_time, check_hostname=False
    )
    return "default" if chain_is_valid(chain, ctx) else "custom"
