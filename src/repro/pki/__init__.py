"""Simulated X.509 public-key infrastructure.

This package models everything the paper's pipelines observe about the real
PKI without performing real cryptography:

* :mod:`repro.pki.keys` — key pairs and SubjectPublicKeyInfo (SPKI) digests,
  the unit of HPKP-style pinning (``sha256/<base64>``).
* :mod:`repro.pki.certificate` — certificates with subject/issuer names,
  SANs, validity windows, CA flags and deterministic DER-like encodings.
* :mod:`repro.pki.authority` — certificate authorities and a hierarchy
  builder that issues realistic root → intermediate → leaf chains.
* :mod:`repro.pki.chain` — ordered certificate chains as served in TLS.
* :mod:`repro.pki.store` — root stores (Mozilla, AOSP, iOS, OEM-extended).
* :mod:`repro.pki.validation` — chain validation: signatures, validity
  windows, hostname matching, path to a trusted root, revocation.
* :mod:`repro.pki.ctlog` — a Certificate Transparency index standing in for
  crt.sh, used by static analysis to resolve SPKI hashes to certificates.

Signatures are simulated: a signature is a digest binding the to-be-signed
payload to the *public* identity of the issuer key.  This gives validation
the same structure as the real thing (a chain "verifies" iff each link names
and matches its issuer) while staying dependency-free; adversarial forgery
is modelled behaviourally (the MITM proxy signs with its own CA) rather than
cryptographically.
"""

from repro.pki.authority import CertificateAuthority, PKIHierarchy
from repro.pki.certificate import Certificate, DistinguishedName
from repro.pki.chain import CertificateChain
from repro.pki.ctlog import CTLog
from repro.pki.keys import KeyPair, spki_pin
from repro.pki.store import RootStore, StoreCatalog
from repro.pki.validation import (
    ValidationContext,
    classify_pki,
    hostname_matches,
    validate_chain,
)

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CertificateChain",
    "CTLog",
    "DistinguishedName",
    "KeyPair",
    "PKIHierarchy",
    "RootStore",
    "StoreCatalog",
    "ValidationContext",
    "classify_pki",
    "hostname_matches",
    "spki_pin",
    "validate_chain",
]
