"""Root certificate stores.

Android and iOS ship default root stores; Android OEMs may extend theirs
with extra roots ([50] in the paper); Mozilla's store is the reference the
paper validates against with OpenSSL to classify pinned destinations as
default-PKI vs custom-PKI (Section 5.3.1).  All simulated stores are built
from one :class:`repro.pki.authority.PKIHierarchy` with realistic overlaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional

from repro.pki.authority import PKIHierarchy
from repro.pki.certificate import Certificate


class RootStore:
    """A named collection of trusted root certificates, indexed by subject."""

    def __init__(self, name: str, roots: Iterable[Certificate] = ()):
        self.name = name
        self._by_subject: Dict[str, Certificate] = {}
        #: Bumped on every mutation; validation results cached against a
        #: store are keyed on ``(store, generation)`` so they expire when
        #: the trust set changes (e.g. a device store gaining a proxy CA).
        self.generation = 0
        for root in roots:
            self.add(root)

    def add(self, root: Certificate) -> None:
        """Add a trusted root (must be a CA certificate)."""
        if not root.is_ca:
            raise ValueError(f"{root.common_name!r} is not a CA certificate")
        self._by_subject[root.subject.render()] = root
        self.generation += 1

    def remove(self, root: Certificate) -> None:
        self._by_subject.pop(root.subject.render(), None)
        self.generation += 1

    def trusts(self, cert: Certificate) -> bool:
        """Is this exact certificate a trust anchor here?"""
        anchored = self._by_subject.get(cert.subject.render())
        return anchored is not None and anchored.to_der() == cert.to_der()

    def find_issuer(self, cert: Certificate) -> Optional[Certificate]:
        """Find the anchor whose subject matches ``cert``'s issuer."""
        return self._by_subject.get(cert.issuer.render())

    def copy(self, name: Optional[str] = None) -> "RootStore":
        clone = RootStore(name or self.name)
        clone._by_subject = dict(self._by_subject)
        return clone

    def __len__(self) -> int:
        return len(self._by_subject)

    def __iter__(self) -> Iterator[Certificate]:
        return iter(self._by_subject.values())

    def __contains__(self, cert: Certificate) -> bool:
        return self.trusts(cert)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RootStore({self.name!r}, {len(self)} roots)"


@dataclass
class StoreCatalog:
    """The root stores relevant to the study, built from one hierarchy.

    Attributes:
        mozilla: the reference store used for default-vs-custom PKI
            classification.
        android_aosp: AOSP system store (== mozilla minus a couple of roots,
            modelling imperfect overlap).
        ios: Apple's store (mozilla minus a different couple).
        android_oem: an OEM-extended Android store with extra roots
            (the "tangled mass" effect).
    """

    mozilla: RootStore
    android_aosp: RootStore
    ios: RootStore
    android_oem: RootStore

    @classmethod
    def build(cls, hierarchy: PKIHierarchy) -> "StoreCatalog":
        """Derive all four stores from the default hierarchy.

        Every store contains all *issuing* roots (real server operators
        chain to CAs trusted everywhere); the stores differ in their tails
        of extra, never-issuing roots — the expired/obscure entries prior
        work found in mobile stores, and the OEM preloads of [50].
        """
        roots = hierarchy.root_certificates()
        mozilla = RootStore("mozilla", roots)
        android_aosp = RootStore("android-aosp", roots)
        ios = RootStore("ios", roots)
        legacy = hierarchy.mint_custom_root("Legacy Obscure Authority")
        mozilla.add(legacy.certificate)
        android_aosp.add(legacy.certificate)
        apple_only = hierarchy.mint_custom_root("Apple Ecosystem Services")
        ios.add(apple_only.certificate)
        android_oem = android_aosp.copy("android-oem")
        oem_extra = hierarchy.mint_custom_root("OEM Preload")
        android_oem.add(oem_extra.certificate)
        return cls(
            mozilla=mozilla,
            android_aosp=android_aosp,
            ios=ios,
            android_oem=android_oem,
        )

    def store_for_platform(self, platform: str) -> RootStore:
        """System store for ``"android"`` or ``"ios"``."""
        if platform == "android":
            return self.android_aosp
        if platform == "ios":
            return self.ios
        raise ValueError(f"unknown platform: {platform!r}")
