"""Simulated key pairs and SubjectPublicKeyInfo digests.

A :class:`KeyPair` carries opaque public bytes (the simulated SPKI).  Pins in
the HPKP / OkHttp ``CertificatePinner`` style are digests of those bytes,
rendered ``sha256/<base64>`` or ``sha1/<base64>`` — exactly the token shape
the paper's static analysis greps for with
``sha(1|256)/[a-zA-Z0-9+/=]{28,64}``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

from repro.core import obs
from repro.errors import EncodingError
from repro.util.encoding import b64encode
from repro.util.rng import DeterministicRng


@lru_cache(maxsize=None)
def _spki_digest(public_bytes: bytes, algorithm: str) -> bytes:
    """SPKI digest, memoized process-wide.

    Digests are recomputed for the same key on every chain validation and
    pin comparison — one of the profiled hot paths of the full study.  The
    key space is bounded by the corpus (one entry per generated key), so
    the cache is unbounded.
    """
    if algorithm == "sha256":
        return hashlib.sha256(public_bytes).digest()
    return hashlib.sha1(public_bytes).digest()


@lru_cache(maxsize=None)
def _pin_string(public_bytes: bytes, algorithm: str) -> str:
    return f"{algorithm}/{b64encode(_spki_digest(public_bytes, algorithm))}"


obs.register_cache("spki_digest", _spki_digest)
obs.register_cache("spki_pin", _pin_string)


@dataclass(frozen=True)
class KeyPair:
    """A simulated asymmetric key pair.

    Attributes:
        key_id: short stable identifier (useful in debug output).
        public_bytes: the simulated SubjectPublicKeyInfo encoding.  Two
            certificates share a public key iff these bytes are equal —
            which is how Section 5.3.3's "key reuse across certificate
            renewals" is modelled.
        algorithm: nominal key algorithm label (``rsa2048``, ``ecdsa_p256``).
    """

    key_id: str
    public_bytes: bytes
    algorithm: str = "rsa2048"

    @classmethod
    def generate(cls, rng: DeterministicRng, algorithm: str = "rsa2048") -> "KeyPair":
        """Generate a fresh key pair from the given RNG."""
        key_id = rng.hex_string(16)
        size = 64 if algorithm == "rsa2048" else 32
        public_bytes = rng.random_bytes(size)
        return cls(key_id=key_id, public_bytes=public_bytes, algorithm=algorithm)

    def spki_sha256(self) -> bytes:
        """Raw SHA-256 digest of the SPKI bytes."""
        return _spki_digest(self.public_bytes, "sha256")

    def spki_sha1(self) -> bytes:
        """Raw SHA-1 digest of the SPKI bytes."""
        return _spki_digest(self.public_bytes, "sha1")

    def pin(self, algorithm: str = "sha256") -> str:
        """Render the HPKP-style pin string for this key."""
        return spki_pin(self, algorithm=algorithm)

    def sign(self, payload: bytes) -> bytes:
        """Produce a simulated signature binding ``payload`` to this key.

        The signature is a digest of the public identity plus the payload;
        see the package docstring for why this is sufficient for the
        reproduction.
        """
        return hashlib.sha256(b"SIG" + self.public_bytes + payload).digest()

    def verify(self, payload: bytes, signature: bytes) -> bool:
        """Check a simulated signature allegedly made by this key."""
        return self.sign(payload) == signature


def spki_pin(key: KeyPair, algorithm: str = "sha256") -> str:
    """Format the pin string (``sha256/AAAA...=``) for a key.

    Args:
        key: the key whose SPKI is pinned.
        algorithm: ``"sha256"`` or ``"sha1"``.

    Raises:
        EncodingError: for an unsupported algorithm.
    """
    if algorithm not in ("sha256", "sha1"):
        raise EncodingError(f"unsupported pin algorithm: {algorithm!r}")
    return _pin_string(key.public_bytes, algorithm)


def parse_pin(pin: str) -> tuple:
    """Split a pin string into ``(algorithm, base64_digest)``.

    Raises:
        EncodingError: if the string is not ``shaN/<base64>``.
    """
    if "/" not in pin:
        raise EncodingError(f"not a pin string: {pin!r}")
    algorithm, _, digest = pin.partition("/")
    if algorithm not in ("sha1", "sha256") or not digest:
        raise EncodingError(f"not a pin string: {pin!r}")
    return algorithm, digest
