"""Certificate revocation.

Section 5.3.1 notes that revocation only applies to leaf certificates and
that long-lived self-signed pins cannot be revoked at all; the simulation
keeps a CRL-style set so validators can exercise the ``revoked`` failure
path.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.pki.certificate import Certificate


class RevocationList:
    """A set of revoked (issuer, serial) pairs, CRL style."""

    def __init__(self, entries: Iterable[Certificate] = ()):
        self._revoked: Set[Tuple[str, str]] = set()
        for cert in entries:
            self.revoke(cert)

    @staticmethod
    def _key(cert: Certificate) -> Tuple[str, str]:
        return (cert.issuer.render(), cert.serial)

    def revoke(self, cert: Certificate) -> None:
        """Add a certificate to the list."""
        self._revoked.add(self._key(cert))

    def unrevoke(self, cert: Certificate) -> None:
        self._revoked.discard(self._key(cert))

    def is_revoked(self, cert: Certificate) -> bool:
        return self._key(cert) in self._revoked

    def __len__(self) -> int:
        return len(self._revoked)
