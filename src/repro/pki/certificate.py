"""Certificates and distinguished names.

A :class:`Certificate` carries the fields the paper's analyses observe:
subject and issuer names, subject-alternative names, validity window, the
basic-constraints CA flag, the public key (for SPKI pinning) and a simulated
signature.  ``to_der()`` produces a canonical byte encoding used for
whole-certificate fingerprints and for embedding PEM blobs into app
packages.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

from repro.errors import CertificateError
from repro.pki.keys import KeyPair
from repro.util.encoding import pem_wrap
from repro.util.simtime import Timestamp


@dataclass(frozen=True)
class DistinguishedName:
    """An X.500-style name, reduced to the fields the study compares on.

    The paper matches certificates between static and dynamic data "in terms
    of the Common Name" (Section 5.3.2); equality on this dataclass gives the
    stricter full-DN comparison and :attr:`common_name` the paper's one.
    """

    common_name: str
    organization: str = ""
    country: str = ""

    def render(self) -> str:
        """RFC-4514-ish single-line rendering (memoized per instance)."""
        cached = self.__dict__.get("_rendered")
        if cached is None:
            parts = [f"CN={self.common_name}"]
            if self.organization:
                parts.append(f"O={self.organization}")
            if self.country:
                parts.append(f"C={self.country}")
            cached = ", ".join(parts)
            object.__setattr__(self, "_rendered", cached)
        return cached

    def __str__(self) -> str:  # pragma: no cover - display only
        return self.render()


@dataclass(frozen=True)
class Certificate:
    """A simulated X.509 certificate.

    Attributes:
        subject: who the certificate identifies.
        issuer: who signed it (== subject for self-signed certificates).
        serial: issuer-unique serial number string.
        not_before / not_after: validity window in simulated time.
        key: the subject's key pair (its ``public_bytes`` are the SPKI).
        san: subject alternative names; hostname matching uses these first
            and falls back to the subject CN (as legacy validators do).
        is_ca: basic-constraints CA flag.
        signature: simulated signature over :meth:`tbs_bytes` by the issuer
            key.  Self-signed certificates are signed by their own key.
        issuer_key_id: key id of the signing key, so a validator can tell
            *which* key must verify the signature.
    """

    subject: DistinguishedName
    issuer: DistinguishedName
    serial: str
    not_before: Timestamp
    not_after: Timestamp
    key: KeyPair
    san: Tuple[str, ...] = ()
    is_ca: bool = False
    signature: bytes = b""
    issuer_key_id: str = ""

    def __post_init__(self):
        if self.not_after.unix <= self.not_before.unix:
            raise CertificateError(
                f"certificate {self.subject.common_name!r} has an empty "
                f"validity window"
            )

    # -- identity ----------------------------------------------------------

    @property
    def common_name(self) -> str:
        return self.subject.common_name

    def is_self_signed(self) -> bool:
        """True if subject == issuer and the cert verifies under its own key."""
        return self.subject == self.issuer and self.key.verify(
            self.tbs_bytes(), self.signature
        )

    def tbs_bytes(self) -> bytes:
        """The canonical to-be-signed encoding (memoized per instance).

        The encoding is recomputed for every signature verification during
        chain validation — a profiled hot path of the full study — and the
        certificate is frozen, so computing it once is safe.
        """
        cached = self.__dict__.get("_tbs")
        if cached is None:
            fields = [
                self.subject.render(),
                self.issuer.render(),
                self.serial,
                str(self.not_before.unix),
                str(self.not_after.unix),
                ",".join(self.san),
                "CA" if self.is_ca else "EE",
                self.key.public_bytes.hex(),
            ]
            cached = "\x1e".join(fields).encode("utf-8")
            object.__setattr__(self, "_tbs", cached)
        return cached

    def to_der(self) -> bytes:
        """Canonical full encoding (tbs + signature), the DER stand-in."""
        cached = self.__dict__.get("_der")
        if cached is None:
            cached = self.tbs_bytes() + b"\x1f" + self.signature
            object.__setattr__(self, "_der", cached)
        return cached

    def to_pem(self) -> str:
        """PEM-armoured encoding, greppable by the static analyzer."""
        return pem_wrap(self.to_der(), label="CERTIFICATE")

    def fingerprint_sha256(self) -> str:
        """Hex SHA-256 fingerprint of the full encoding (memoized)."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = hashlib.sha256(self.to_der()).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def spki_pin(self, algorithm: str = "sha256") -> str:
        """HPKP-style pin string for this certificate's public key."""
        return self.key.pin(algorithm=algorithm)

    # -- checks ------------------------------------------------------------

    def valid_at(self, when: Timestamp) -> bool:
        """True if ``when`` falls inside the validity window."""
        return self.not_before.unix <= when.unix <= self.not_after.unix

    def is_expired(self, when: Timestamp) -> bool:
        return when.unix > self.not_after.unix

    def validity_years(self) -> float:
        """Length of the validity window in years (Section 5.3.1 reports
        27- and 10-year self-signed certificates)."""
        return self.not_before.days_until(self.not_after) / 365.0

    def matches_hostname(self, hostname: str) -> bool:
        """Delegates to :func:`repro.pki.validation.hostname_matches`."""
        from repro.pki.validation import hostname_matches

        names = self.san if self.san else (self.subject.common_name,)
        return any(hostname_matches(pattern, hostname) for pattern in names)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "CA" if self.is_ca else "leaf"
        return f"Certificate({self.subject.common_name!r}, {kind}, serial={self.serial})"


def parse_der(der: bytes) -> "ParsedCertificate":
    """Parse the canonical encoding back into a lightweight view.

    The static analyzer uses this to inspect certificates recovered from app
    packages without needing the original :class:`Certificate` object.

    Raises:
        CertificateError: if the payload is not a canonical encoding.
    """
    try:
        # Split on the *first* separator: the tbs side is structured UTF-8
        # text that never contains 0x1f, but the signature is arbitrary
        # bytes that may — rpartition would split inside such a signature
        # and silently corrupt the spki field.
        tbs, sep, signature = der.partition(b"\x1f")
        if not sep:
            raise ValueError("missing tbs/signature separator")
        fields = tbs.decode("utf-8").split("\x1e")
        subject, issuer, serial, nb, na, san, ca_flag, spki_hex = fields
        return ParsedCertificate(
            subject=subject,
            issuer=issuer,
            serial=serial,
            not_before=Timestamp(int(nb)),
            not_after=Timestamp(int(na)),
            san=tuple(s for s in san.split(",") if s),
            is_ca=(ca_flag == "CA"),
            spki_bytes=bytes.fromhex(spki_hex),
            signature=signature,
        )
    except (ValueError, UnicodeDecodeError) as exc:
        raise CertificateError("payload is not a canonical certificate") from exc


@dataclass(frozen=True)
class ParsedCertificate:
    """A certificate recovered from bytes (e.g. a PEM blob in an app)."""

    subject: str
    issuer: str
    serial: str
    not_before: Timestamp
    not_after: Timestamp
    san: Tuple[str, ...]
    is_ca: bool
    spki_bytes: bytes
    signature: bytes

    @property
    def common_name(self) -> str:
        """Extract the CN attribute from the rendered subject."""
        for part in self.subject.split(","):
            part = part.strip()
            if part.startswith("CN="):
                return part[3:]
        return self.subject

    def spki_sha256(self) -> bytes:
        return hashlib.sha256(self.spki_bytes).digest()
