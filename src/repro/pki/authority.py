"""Certificate authorities and hierarchy construction.

:class:`CertificateAuthority` issues certificates; :class:`PKIHierarchy`
builds a realistic default PKI (root CAs + intermediates, as found in public
root stores) and also mints *custom* PKIs for apps that pin their own roots
(Table 6 distinguishes the two).
"""

from __future__ import annotations

import dataclasses

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CertificateError
from repro.pki.certificate import Certificate, DistinguishedName
from repro.pki.chain import CertificateChain
from repro.pki.keys import KeyPair
from repro.util.rng import DeterministicRng
from repro.util.simtime import Timestamp, STUDY_START

# Names modelled after (but distinct from) the operators that dominate real
# root programs; used to label the simulated default PKI.
DEFAULT_ROOT_OPERATORS = [
    "Simulated Global Root CA",
    "TrustAnchor Root R1",
    "TrustAnchor Root R3",
    "Baltimore-Sim CyberTrust Root",
    "DigiSign Global Root G2",
    "LetsSimulate Root X1",
    "Sectigo-Sim AAA Root",
    "GoTrust Root CA 2",
    "AmazonSim Root CA 1",
    "QuadSSL Root CA",
    "EntrustSim Root G4",
    "GlobalSim ECC Root R5",
]


class CertificateAuthority:
    """A certificate authority: a key, a CA certificate and a serial counter."""

    def __init__(self, certificate: Certificate, key: KeyPair, rng: DeterministicRng):
        if not certificate.is_ca:
            raise CertificateError(
                f"{certificate.common_name!r} is not a CA certificate"
            )
        self.certificate = certificate
        self.key = key
        self._rng = rng
        self._serial = 0

    @property
    def name(self) -> DistinguishedName:
        return self.certificate.subject

    def _next_serial(self) -> str:
        self._serial += 1
        return f"{self._serial:08d}-{self._rng.hex_string(8)}"

    def stateless_serial(self, *labels: object) -> str:
        """A serial derived from labels instead of the issuance counter.

        Issuing with a stateless serial (and a caller-supplied RNG) makes
        the certificate a pure function of the CA plus the labels —
        independent of how many certificates were issued before it.  The
        parallel execution engine relies on this for on-demand issuance
        (proxy forgeries) that must not depend on worker scheduling.
        """
        from repro.util.rng import derive_seed

        seed = derive_seed(self._rng.seed, "stateless-serial", *labels)
        return f"{seed & 0xFFFFFFFF:08x}-{DeterministicRng(seed).hex_string(8)}"

    @classmethod
    def self_signed_root(
        cls,
        common_name: str,
        rng: DeterministicRng,
        not_before: Timestamp = STUDY_START.plus_years(-10),
        lifetime_years: float = 25.0,
        organization: str = "",
    ) -> "CertificateAuthority":
        """Create a root CA with a self-signed certificate."""
        key = KeyPair.generate(rng.child("root-key", common_name))
        name = DistinguishedName(
            common_name=common_name, organization=organization or common_name
        )
        unsigned = Certificate(
            subject=name,
            issuer=name,
            serial="00000001-root",
            not_before=not_before,
            not_after=not_before.plus_years(lifetime_years),
            key=key,
            san=(),
            is_ca=True,
            signature=b"",
            issuer_key_id=key.key_id,
        )
        signed = dataclasses.replace(
            unsigned, signature=key.sign(unsigned.tbs_bytes())
        )
        return cls(signed, key, rng.child("root-ca", common_name))

    def issue(
        self,
        common_name: str,
        *,
        is_ca: bool = False,
        san: Sequence[str] = (),
        not_before: Optional[Timestamp] = None,
        lifetime_days: float = 398.0,
        key: Optional[KeyPair] = None,
        organization: str = "",
        rng: Optional[DeterministicRng] = None,
        serial: Optional[str] = None,
    ) -> Tuple[Certificate, KeyPair]:
        """Issue a certificate signed by this authority.

        Args:
            common_name: subject CN.
            is_ca: issue an intermediate CA certificate.
            san: subject alternative names (leaf certificates only, usually).
            not_before: start of validity (defaults to this CA's not_before
                plus a year, keeping children inside the parent window).
            lifetime_days: validity length; the modern default for leaves is
                398 days.
            key: reuse an existing subject key.  Passing the previous leaf's
                key models certificate renewal with key reuse, which is what
                makes SPKI pins survive renewals (Section 5.3.3).
            organization: subject O attribute.
            rng: key-generation randomness.  Defaults to this CA's own
                stream; passing an explicit child stream (plus ``serial``)
                makes the issued certificate independent of issuance order.
            serial: serial override; see :meth:`stateless_serial`.

        Returns:
            ``(certificate, subject_key)``.
        """
        start = not_before or self.certificate.not_before.plus_years(1)
        if start.unix < self.certificate.not_before.unix:
            raise CertificateError(
                "child certificate cannot start before its issuer"
            )
        key_rng = rng if rng is not None else self._rng
        subject_key = key or KeyPair.generate(key_rng.child("issued-key", common_name))
        unsigned = Certificate(
            subject=DistinguishedName(
                common_name=common_name, organization=organization
            ),
            issuer=self.name,
            serial=serial if serial is not None else self._next_serial(),
            not_before=start,
            not_after=start.plus_days(lifetime_days),
            key=subject_key,
            san=tuple(san),
            is_ca=is_ca,
            signature=b"",
            issuer_key_id=self.key.key_id,
        )
        signed = dataclasses.replace(
            unsigned, signature=self.key.sign(unsigned.tbs_bytes())
        )
        return signed, subject_key

    def issue_intermediate(
        self, common_name: str, lifetime_years: float = 10.0
    ) -> "CertificateAuthority":
        """Issue and wrap an intermediate CA."""
        cert, key = self.issue(
            common_name,
            is_ca=True,
            lifetime_days=lifetime_years * 365,
            organization=self.certificate.subject.organization,
        )
        return CertificateAuthority(cert, key, self._rng.child("intermediate", common_name))


@dataclass
class IssuedChain:
    """A leaf chain plus the authorities that produced it."""

    chain: CertificateChain
    leaf_key: KeyPair
    intermediate: Optional[CertificateAuthority]
    root: CertificateAuthority


class PKIHierarchy:
    """Builds and owns the simulated default PKI.

    The hierarchy mints one intermediate per root and issues leaf chains on
    demand.  It also creates standalone *custom* roots for services that run
    their own PKI (Table 6's "Custom PKI" column).
    """

    def __init__(self, rng: DeterministicRng, operators: Sequence[str] = ()):
        self._rng = rng
        self.roots: List[CertificateAuthority] = []
        self.intermediates: Dict[str, CertificateAuthority] = {}
        for operator in operators or DEFAULT_ROOT_OPERATORS:
            root = CertificateAuthority.self_signed_root(
                operator, rng.child("root", operator)
            )
            self.roots.append(root)
            self.intermediates[operator] = root.issue_intermediate(
                f"{operator} Intermediate CA"
            )

    def root_certificates(self) -> List[Certificate]:
        return [root.certificate for root in self.roots]

    def pick_root(self, rng: DeterministicRng) -> CertificateAuthority:
        """Pick an issuing root with a skew toward the first operators,
        mirroring real-world CA market concentration."""
        rank = rng.zipf_rank(len(self.roots), exponent=1.2)
        return self.roots[rank - 1]

    def issue_leaf_chain(
        self,
        hostname: str,
        rng: DeterministicRng,
        *,
        include_root: bool = False,
        lifetime_days: float = 398.0,
        key: Optional[KeyPair] = None,
        wildcard: bool = False,
    ) -> IssuedChain:
        """Issue a default-PKI chain for ``hostname``.

        Args:
            hostname: leaf subject / SAN.
            rng: source of randomness for CA selection and key generation.
            include_root: also serve the root (some servers do).
            lifetime_days: leaf validity.
            key: reuse an existing leaf key (renewal with key reuse).
            wildcard: issue for ``*.<registrable domain>`` as many CDNs do.

        Leaf validity is anchored to the study clock: ``not_before`` falls
        10–250 days before :data:`~repro.util.simtime.STUDY_START`, so the
        chain is valid during dynamic testing.
        """
        root = self.pick_root(rng)
        intermediate = self.intermediates[root.name.common_name]
        not_before = STUDY_START.plus_days(-rng.randint(10, 250))
        san: Tuple[str, ...]
        if wildcard:
            parts = hostname.split(".")
            base = ".".join(parts[-2:]) if len(parts) >= 2 else hostname
            san = (f"*.{base}", base)
        else:
            san = (hostname,)
        leaf, leaf_key = intermediate.issue(
            hostname,
            san=san,
            not_before=not_before,
            lifetime_days=lifetime_days,
            key=key,
        )
        certs: List[Certificate] = [leaf, intermediate.certificate]
        if include_root:
            certs.append(root.certificate)
        return IssuedChain(
            chain=CertificateChain(tuple(certs)),
            leaf_key=leaf_key,
            intermediate=intermediate,
            root=root,
        )

    def mint_custom_root(self, owner: str) -> CertificateAuthority:
        """Create a private root CA not present in any public store."""
        return CertificateAuthority.self_signed_root(
            f"{owner} Private Root CA", self._rng.child("custom-root", owner)
        )

    def authority_for_certificate(
        self, certificate: Certificate
    ) -> Optional[CertificateAuthority]:
        """Find the CA object behind a CA certificate in this hierarchy.

        Used by the Spinner-style probe (Stone et al.): to test whether a
        CA-pinning client checks hostnames, one needs a *legitimately
        issued* certificate for an attacker hostname from the same CA.
        Returns None for certificates outside this hierarchy (custom
        roots minted elsewhere, leaves).
        """
        fingerprint = certificate.fingerprint_sha256()
        for root in self.roots:
            if root.certificate.fingerprint_sha256() == fingerprint:
                return root
        for intermediate in self.intermediates.values():
            if intermediate.certificate.fingerprint_sha256() == fingerprint:
                return intermediate
        return None
