"""Certificate chains as served in a TLS handshake.

The wire order is leaf-first (RFC 8446 §4.4.2); the paper describes chains
root-first when talking about trust ("signatures from the root (first) to
the leaf (last)").  :class:`CertificateChain` stores the wire order and
provides both views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import CertificateError
from repro.pki.certificate import Certificate


@dataclass(frozen=True)
class CertificateChain:
    """An ordered list of certificates, leaf first.

    A chain may or may not include the root; real servers usually omit it
    (the client finds the root in its store by issuer name).
    """

    certificates: Tuple[Certificate, ...]

    def __post_init__(self):
        if not self.certificates:
            raise CertificateError("a certificate chain cannot be empty")

    @classmethod
    def of(cls, *certs: Certificate) -> "CertificateChain":
        return cls(tuple(certs))

    # -- views ---------------------------------------------------------------

    @property
    def leaf(self) -> Certificate:
        return self.certificates[0]

    @property
    def intermediates(self) -> Tuple[Certificate, ...]:
        """Everything between the leaf and the terminal certificate."""
        return self.certificates[1:-1] if len(self.certificates) > 2 else ()

    @property
    def terminal(self) -> Certificate:
        """The last certificate served (a root if the server included it)."""
        return self.certificates[-1]

    def root_first(self) -> List[Certificate]:
        """The paper's ordering: root (or closest-to-root) first."""
        return list(reversed(self.certificates))

    def __len__(self) -> int:
        return len(self.certificates)

    def __iter__(self) -> Iterator[Certificate]:
        return iter(self.certificates)

    def __contains__(self, cert: Certificate) -> bool:
        return cert in self.certificates

    # -- structure checks ------------------------------------------------------

    def is_single_self_signed(self) -> bool:
        """True for the Section 5.3.1 oddity: a lone self-signed cert
        served instead of a chain."""
        return len(self.certificates) == 1 and self.leaf.is_self_signed()

    def links_consistent(self) -> bool:
        """True if each certificate's issuer names the next one's subject."""
        for child, parent in zip(self.certificates, self.certificates[1:]):
            if child.issuer != parent.subject:
                return False
        return True

    def find_by_common_name(self, common_name: str) -> Optional[Certificate]:
        """First certificate in wire order whose subject CN matches."""
        for cert in self.certificates:
            if cert.subject.common_name == common_name:
                return cert
        return None

    def contains_spki(self, pin: str) -> bool:
        """True if any certificate's key matches the given pin string."""
        algorithm = pin.split("/", 1)[0]
        return any(cert.spki_pin(algorithm=algorithm) == pin for cert in self)

    def spki_pins(self, algorithm: str = "sha256") -> List[str]:
        """Pin strings for every certificate in the chain, leaf first."""
        return [cert.spki_pin(algorithm=algorithm) for cert in self]

    def to_pem_bundle(self) -> str:
        """Concatenated PEM blocks, leaf first."""
        return "\n".join(cert.to_pem() for cert in self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = " <- ".join(c.subject.common_name for c in self.certificates)
        return f"CertificateChain({names})"
