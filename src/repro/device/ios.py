"""The iOS test device.

An iPhone X on iOS 13.6, jailbroken with checkra1n (Section 4.2.1) — the
jailbreak gates app decryption for static analysis and Frida for pinning
circumvention.  The device reproduces the two background-traffic
confounders of Section 4.5:

* continuous OS traffic to Apple-controlled domains (``icloud.com``,
  ``apple.com``, ``mzstatic.com``) for the whole test duration;
* associated-domains verification at install time: the OS contacts every
  domain in the app's entitlements.  The verifying daemon does **not**
  trust the user-installed interception CA, so under MITM this traffic
  looks exactly like pinning — and shares the apps' TLS fingerprint.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.device.base import Device
from repro.device.identifiers import DeviceIdentifiers
from repro.pki.certificate import Certificate
from repro.pki.store import RootStore
from repro.util.rng import DeterministicRng

#: Apple-controlled destinations with OS-initiated traffic throughout any
#: capture; the analysis excludes them by registrable domain.
APPLE_BACKGROUND_DOMAINS: Tuple[str, ...] = (
    "icloud.com",
    "apple.com",
    "mzstatic.com",
)

#: Hostnames the device's OS services contact during a capture window.
APPLE_BACKGROUND_HOSTS: Tuple[str, ...] = (
    "gateway.icloud.com",
    "gsp-ssl.ls.apple.com",
    "init.itunes.apple.com",
    "is1-ssl.mzstatic.com",
)


class IOSDevice(Device):
    """iPhone X, iOS 13.6, checkra1n jailbreak."""

    def __init__(
        self,
        system_store: RootStore,
        rng: DeterministicRng,
        proxy_ca: Optional[Certificate] = None,
        jailbroken: bool = True,
    ):
        super().__init__(
            model="iPhone X",
            os_version="iOS 13.6",
            platform="ios",
            system_store=system_store.copy("iphonex-system"),
            identifiers=DeviceIdentifiers.generate(rng.child("ids")),
            jailbroken=jailbroken,
        )
        # The apps' trust view includes the user-installed proxy root; the
        # OS services' view does not.
        self.os_services_store = system_store.copy("iphonex-os-services")
        if proxy_ca is not None:
            self.install_proxy_ca(proxy_ca)
