"""Device identifiers and PII placeholders.

Apps do not hard-code PII; they read it off the device at run time.  The
corpus generator therefore puts *placeholders* into payload templates
(``{{PII:ad_id}}``) and the automation harness substitutes the test
device's concrete values — exactly the situation the paper's PII analysis
faces: analysts know the test device's identifiers and search decrypted
traffic for them (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.util.rng import DeterministicRng

PII_PLACEHOLDER_PREFIX = "{{PII:"

#: The PII types the study searches for (Section 4.4).
PII_TYPES: Tuple[str, ...] = (
    "imei",
    "ad_id",
    "mac",
    "email",
    "state",
    "city",
    "latitude",
    "longitude",
)


def placeholder(pii_type: str) -> str:
    """The payload-template token for a PII type."""
    if pii_type not in PII_TYPES:
        raise ValueError(f"unknown PII type: {pii_type!r}")
    return f"{PII_PLACEHOLDER_PREFIX}{pii_type}}}}}"


@dataclass(frozen=True)
class DeviceIdentifiers:
    """Concrete PII values for one test device."""

    imei: str
    ad_id: str
    mac: str
    email: str
    state: str
    city: str
    latitude: str
    longitude: str

    @classmethod
    def generate(cls, rng: DeterministicRng) -> "DeviceIdentifiers":
        """Synthesize a plausible identifier set."""
        ad_id = "-".join(
            rng.hex_string(n) for n in (8, 4, 4, 4, 12)
        )
        mac = ":".join(rng.hex_string(2) for _ in range(6))
        return cls(
            imei="35" + "".join(str(rng.randint(0, 9)) for _ in range(13)),
            ad_id=ad_id,
            mac=mac,
            email=f"testuser{rng.randint(100, 999)}@example.org",
            state="Massachusetts",
            city="Boston",
            latitude=f"{42.0 + rng.random():.5f}",
            longitude=f"{-71.0 - rng.random():.5f}",
        )

    def as_dict(self) -> Dict[str, str]:
        return {
            "imei": self.imei,
            "ad_id": self.ad_id,
            "mac": self.mac,
            "email": self.email,
            "state": self.state,
            "city": self.city,
            "latitude": self.latitude,
            "longitude": self.longitude,
        }

    def substitute(self, text: str) -> str:
        """Replace every placeholder in a payload-template string.

        Runs once per payload field of every simulated request, so the
        placeholder-free common case returns immediately and the
        (token, value) pairs are built once per instance.
        """
        if PII_PLACEHOLDER_PREFIX not in text:
            return text
        pairs = self.__dict__.get("_substitution_pairs")
        if pairs is None:
            pairs = tuple(
                (placeholder(pii_type), value)
                for pii_type, value in self.as_dict().items()
            )
            object.__setattr__(self, "_substitution_pairs", pairs)
        for token, value in pairs:
            text = text.replace(token, value)
        return text
