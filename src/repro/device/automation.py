"""The dynamic-test automation harness.

Reproduces the paper's loop (Section 4.2.1): install one app at a time for
traffic isolation, collect traffic for a sleep window (30 s by default,
after their 15/30/60 s calibration), uninstall, move on.  No UI
interaction — the paper found random interactions changed nothing.

The harness produces a :class:`~repro.netsim.capture.TrafficCapture` per
app run; running with and without the proxy gives the two settings the
differential detector compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.appmodel.behavior import DestinationUsage
from repro.device.base import Device
from repro.device.ios import APPLE_BACKGROUND_HOSTS, IOSDevice
from repro.errors import DeviceError
from repro.netsim.capture import TrafficCapture
from repro.netsim.flow import Payload
from repro.netsim.proxy import MITMProxy
from repro.netsim.simulate import simulate_flow
from repro.servers.registry import EndpointRegistry
from repro.tls.handshake import ClientProfile
from repro.tls.policy import CompositePolicy, SystemValidationPolicy
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.simtime import SECONDS_PER_DAY, SimClock, Timestamp

#: Length of the simulated measurement campaign.  Every app is assigned a
#: deterministic install time inside this window (derived from the harness
#: seed and the app id), so timestamps do not depend on the order in which
#: apps are processed.  The window must stay well inside the shortest leaf
#: validity (not_before up to 250 days before the study epoch, 398-day
#: lifetime ⇒ expiry at epoch + 148 days at the earliest).
STUDY_WINDOW_DAYS = 60


@dataclass
class RunConfig:
    """One app-run configuration.

    Attributes:
        mitm: intercept TLS (the second experiment setting).
        sleep_s: capture window after launch.
        pre_launch_wait_s: delay between install and launch.  The paper's
            Common-iOS re-run waits 120 s so OS associated-domain
            verification finishes before capture (Section 4.5).
        transient_failure_prob: server-side failure injection rate.
        policy_override: replace the app's own validation policy — how a
            Frida-patched process runs (Section 4.3).
        interact: drive the app's UI (log in, tap around) so
            interaction-gated destinations fire — the §5.7 future-work
            harness; the study itself runs with False.
    """

    mitm: bool = False
    sleep_s: float = 30.0
    pre_launch_wait_s: float = 0.0
    transient_failure_prob: float = 0.015
    policy_override: Optional[CompositePolicy] = None
    interact: bool = False


class AutomationHarness:
    """Drives one device against one corpus world."""

    def __init__(
        self,
        device: Device,
        registry: EndpointRegistry,
        proxy: MITMProxy,
        rng: DeterministicRng,
        clock: Optional[SimClock] = None,
    ):
        self.device = device
        self.registry = registry
        self.proxy = proxy
        self._rng = rng
        self.clock = clock or SimClock()
        # Anchor of the per-app timeline; install times are deterministic
        # offsets from here (see :meth:`_install_time`).
        self._epoch = self.clock.now

    # -- internals -----------------------------------------------------------

    def _install_time(self, app_id: str) -> Timestamp:
        """Deterministic install time for one app.

        Derived from the harness seed and the app id alone, so a given app
        sees the same timeline whether it runs first or last, serially or
        on any worker of the parallel execution engine.  Both experiment
        settings (baseline and MITM) share the anchor, as the paper ran
        them back-to-back.
        """
        window_s = STUDY_WINDOW_DAYS * SECONDS_PER_DAY
        offset_s = derive_seed(self._rng.seed, "install-window", app_id) % window_s
        return self._epoch.plus_seconds(offset_s)

    def _substituted_payloads(self, usage: DestinationUsage) -> list:
        """Payload templates with device PII substituted in."""
        out = []
        for payload in usage.payloads():
            fields = tuple(
                (k, self.device.identifiers.substitute(v))
                for k, v in payload.fields
            )
            out.append(Payload(method=payload.method, path=payload.path, fields=fields))
        return out

    def _emit_usage_flows(
        self,
        capture: TrafficCapture,
        packaged_app,
        usage: DestinationUsage,
        policy: CompositePolicy,
        config: RunConfig,
        launch_time: Timestamp,
        rng: DeterministicRng,
    ) -> None:
        app = packaged_app.app
        if not self.registry.knows(usage.hostname):
            raise DeviceError(
                f"{app.app_id}: behaviour references unknown host {usage.hostname!r}"
            )
        endpoint = self.registry.resolve(usage.hostname)
        client = ClientProfile(
            sni=usage.hostname,
            policy=policy,
            offered_versions=app.offered_versions(),
            offered_suites=app.suites_for_destination(usage.hostname),
        )
        payloads = self._substituted_payloads(usage)
        when = launch_time.plus_seconds(usage.start_offset_s)
        for index in range(usage.used_connections):
            flow = simulate_flow(
                client,
                endpoint,
                when,
                rng.child("used", usage.hostname, index),
                payloads=[payloads[index]] if index < len(payloads) else [],
                proxy=self.proxy if config.mitm else None,
                app_id=app.app_id,
                platform=app.platform,
                transient_failure_prob=config.transient_failure_prob,
                gt_pinned=app.pins_domain(usage.hostname),
            )
            capture.add(flow)
            # HTTP stacks retry a request whose connection died before the
            # response; the paper observed exactly these retries in its
            # MITM experiments.  A transient failure is usually recovered
            # by the retry; a pinning rejection fails again.
            if not flow.trace.client_app_data_records() and not flow.handshake_completed:
                capture.add(
                    simulate_flow(
                        client,
                        endpoint,
                        when.plus_seconds(1),
                        rng.child("retry", usage.hostname, index),
                        payloads=[payloads[index]] if index < len(payloads) else [],
                        proxy=self.proxy if config.mitm else None,
                        app_id=app.app_id,
                        platform=app.platform,
                        transient_failure_prob=config.transient_failure_prob,
                        gt_pinned=app.pins_domain(usage.hostname),
                    )
                )
        for index in range(usage.redundant_connections):
            capture.add(
                simulate_flow(
                    client,
                    endpoint,
                    when,
                    rng.child("idle", usage.hostname, index),
                    payloads=[],
                    proxy=self.proxy if config.mitm else None,
                    app_id=app.app_id,
                    platform=app.platform,
                    transient_failure_prob=config.transient_failure_prob,
                    gt_pinned=app.pins_domain(usage.hostname),
                )
            )

    def _emit_ios_background(
        self,
        capture: TrafficCapture,
        packaged_app,
        config: RunConfig,
        install_time: Timestamp,
        rng: DeterministicRng,
    ) -> None:
        """Apple-service traffic plus associated-domain verification."""
        device = self.device
        assert isinstance(device, IOSDevice)
        app = packaged_app.app
        os_policy = CompositePolicy(
            default=SystemValidationPolicy(
                device.os_services_store, library="securetransport"
            )
        )

        # Continuous Apple-domain chatter during the whole window.
        for host in APPLE_BACKGROUND_HOSTS:
            if not self.registry.knows(host):
                continue
            client = ClientProfile(sni=host, policy=os_policy)
            capture.add(
                simulate_flow(
                    client,
                    self.registry.resolve(host),
                    install_time.plus_seconds(rng.uniform(0, config.sleep_s)),
                    rng.child("apple-bg", host),
                    payloads=[Payload(method="GET", path="/keepalive")],
                    proxy=self.proxy if config.mitm else None,
                    app_id=app.app_id,
                    platform="ios",
                    os_initiated=True,
                )
            )

        # Associated-domain verification fires at install; waiting two
        # minutes before launch (the re-run methodology) keeps it out of
        # the capture window.
        if config.pre_launch_wait_s >= 120.0:
            return
        for domain in app.associated_domains:
            host = domain if self.registry.knows(domain) else f"www.{domain}"
            if not self.registry.knows(host):
                continue
            client = ClientProfile(sni=host, policy=os_policy)
            capture.add(
                simulate_flow(
                    client,
                    self.registry.resolve(host),
                    install_time.plus_seconds(rng.uniform(0, 20)),
                    rng.child("assoc", host),
                    payloads=[
                        Payload(
                            method="GET",
                            path="/.well-known/apple-app-site-association",
                        )
                    ],
                    proxy=self.proxy if config.mitm else None,
                    app_id=app.app_id,
                    platform="ios",
                    os_initiated=True,
                )
            )

    # -- public API ------------------------------------------------------------

    def run_app(self, packaged_app, config: RunConfig) -> TrafficCapture:
        """Install, capture for the sleep window, uninstall.

        Returns the per-app capture (the paper's traffic isolation: one app
        installed at a time).

        Raises:
            DeviceError: platform mismatch or unknown destination.
        """
        app = packaged_app.app
        if app.platform != self.device.platform:
            raise DeviceError(
                f"cannot run {app.platform} app {app.app_id!r} on a "
                f"{self.device.platform} device"
            )

        capture = TrafficCapture()
        rng = self._rng.child("run", app.app_id, config.mitm, config.sleep_s)
        install_time = self._install_time(app.app_id)

        if self.device.platform == "ios":
            self._emit_ios_background(capture, packaged_app, config, install_time, rng)

        launch_time = install_time.plus_seconds(config.pre_launch_wait_s)
        policy = config.policy_override or app.runtime_policy(
            self.device.system_store
        )

        for usage in app.behavior.usages_within(
            config.sleep_s, with_interaction=config.interact
        ):
            self._emit_usage_flows(
                capture, packaged_app, usage, policy, config, launch_time, rng
            )
        return capture

    def handshake_count(self, packaged_app, sleep_s: float) -> int:
        """TLS handshakes a window of ``sleep_s`` observes (the Section
        4.2.1 calibration metric), without running the full capture."""
        return packaged_app.app.behavior.expected_handshakes(sleep_s)
