"""Common device state."""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.identifiers import DeviceIdentifiers
from repro.pki.certificate import Certificate
from repro.pki.store import RootStore


@dataclass
class Device:
    """A test handset.

    Attributes:
        model / os_version: hardware identity (display only).
        platform: ``"android"`` or ``"ios"``.
        system_store: the root store *apps* validate against.  Installing
            the interception CA here is what lets non-pinned connections be
            intercepted.
        identifiers: the device's PII values.
        jailbroken: required on iOS for app decryption and Frida
            (checkra1n in the paper); ``rooted`` is the Android analogue
            (not required — the paper modified the factory image instead).
    """

    model: str
    os_version: str
    platform: str
    system_store: RootStore
    identifiers: DeviceIdentifiers
    jailbroken: bool = False

    def install_proxy_ca(self, certificate: Certificate) -> None:
        """Trust an interception CA for app traffic."""
        self.system_store.add(certificate)

    def trusts(self, certificate: Certificate) -> bool:
        return self.system_store.trusts(certificate)
