"""Device emulation.

Stands in for the paper's testbed hardware: a Pixel 3 on a modified
Android 11 factory image (mitmproxy CA in the *system* store) and a
jailbroken iPhone X on iOS 13.6 (mitmproxy root trusted; checkra1n enables
app decryption and Frida).  The :class:`AutomationHarness` reproduces the
dynamic-pipeline loop: install → capture for a sleep window → uninstall,
including iOS background traffic and associated-domains verification.
"""

from repro.device.android import AndroidDevice
from repro.device.automation import AutomationHarness, RunConfig
from repro.device.base import Device
from repro.device.identifiers import PII_PLACEHOLDER_PREFIX, DeviceIdentifiers
from repro.device.ios import APPLE_BACKGROUND_DOMAINS, IOSDevice

__all__ = [
    "APPLE_BACKGROUND_DOMAINS",
    "AndroidDevice",
    "AutomationHarness",
    "Device",
    "DeviceIdentifiers",
    "IOSDevice",
    "PII_PLACEHOLDER_PREFIX",
    "RunConfig",
]
