"""The Android test device.

A Pixel 3 running a factory Android 11 image modified to include the
mitmproxy certificate in the system certificate store (Section 4.2.1) —
necessary because apps targeting API 24+ ignore user-installed CAs.
Manual analysis found no interfering Android background traffic, so the
device emits none.
"""

from __future__ import annotations

from typing import Optional

from repro.device.base import Device
from repro.device.identifiers import DeviceIdentifiers
from repro.pki.certificate import Certificate
from repro.pki.store import RootStore
from repro.util.rng import DeterministicRng


class AndroidDevice(Device):
    """Pixel 3, Android 11."""

    def __init__(
        self,
        system_store: RootStore,
        rng: DeterministicRng,
        proxy_ca: Optional[Certificate] = None,
    ):
        super().__init__(
            model="Pixel 3",
            os_version="Android 11",
            platform="android",
            system_store=system_store.copy("pixel3-system"),
            identifiers=DeviceIdentifiers.generate(rng.child("ids")),
            jailbroken=False,
        )
        if proxy_ca is not None:
            self.install_proxy_ca(proxy_ca)
