"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``study``    — run the full measurement and print (or save) every table
  and figure.
* ``table``    — run the study and print a single table (``table3``,
  ``figure2``, ...).
* ``score``    — run the dynamic pipeline and print detector
  precision/recall against corpus ground truth.
* ``verify``   — run the study, audit it against ground truth and the
  invariant catalogue, and exit non-zero on any violation.
* ``corpus``   — generate a corpus and print its composition.
* ``sweep``    — run a grid of study configurations (seeds × scales ×
  fault rates × detector ablations × worker counts) through a shared
  result store and print cross-configuration stability tables.
* ``serve``    — run the long-lived study service: a daemon that keeps a
  warm worker pool, a shared result store, and cached corpora resident
  across submitted jobs (DESIGN.md §14).
* ``submit``   — submit a study or sweep job to a running service and
  print its output (byte-identical to the direct command).
* ``jobs``     — inspect or control a running service (status / cancel /
  stats / shutdown).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core import obs
from repro.core.analysis import Study
from repro.core.exec import ExecutionPlan, ResultStore, SeededFaults
from repro.corpus import CorpusConfig, CorpusGenerator
from repro.reporting.render import (
    TABLE_CHOICES,
    render_study_stdout,
    render_sweep_stdout,
)

#: Default service socket path (kept in sync with
#: ``repro.service.protocol.DEFAULT_SOCKET`` without importing the
#: service package for every CLI invocation).
DEFAULT_SOCKET = "repro.sock"


def _build_corpus(args):
    config = CorpusConfig(seed=args.seed)
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    return CorpusGenerator(config).generate()


def _plan(args) -> ExecutionPlan:
    return ExecutionPlan(
        workers=args.workers,
        chunk_size=args.chunk_size,
        max_retries=args.max_retries,
    )


def _faults(args):
    """The deterministic fault-injection predicate, if requested."""
    if args.fault_rate > 0:
        return SeededFaults(args.fault_rate, seed=args.fault_seed)
    return None


def _report_ledger(results) -> None:
    """Print the error ledger to stderr (commentary, like the timing)."""
    print(
        f"# error ledger: {len(results.failures)} failed unit(s)",
        file=sys.stderr,
    )
    for line in results.error_ledger():
        print(f"#   {line}", file=sys.stderr)


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return number


def _workers_arg(value: str):
    """``--workers`` value: a positive integer or the string ``auto``."""
    if value == "auto":
        return value
    try:
        return _positive_int(value)
    except ValueError:
        raise argparse.ArgumentTypeError("must be an integer >= 1 or 'auto'")


def _non_negative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return number


def _rate(value: str) -> float:
    number = float(value)
    if not 0.0 <= number <= 1.0:
        raise argparse.ArgumentTypeError("must be in [0, 1]")
    return number


def _cmd_corpus(args) -> int:
    corpus = _build_corpus(args)
    print(f"unique apps : {corpus.total_unique_apps()}")
    print(f"endpoints   : {len(corpus.registry)}")
    print(f"CT log size : {corpus.registry.ctlog.size}")
    for key, apps in sorted(corpus.datasets.items()):
        pinners = sum(1 for a in apps if a.app.pins_at_runtime())
        print(f"{key[0]:8s} {key[1]:8s} n={len(apps):5d} pinners={pinners}")
    return 0


def _write_audit_json(report, path: str) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_study(args) -> int:
    # Fail on an unwritable export path *before* the run, not after a
    # multi-hour study has produced results it then cannot write.
    for path in (args.trace_out, args.metrics_out, args.audit_out):
        if path:
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                print(
                    f"error: output directory does not exist: {parent}",
                    file=sys.stderr,
                )
                return 2
    corpus = _build_corpus(args)
    recorder = None
    if args.trace_out or args.metrics_out:
        recorder = obs.Recorder()
    # perf_counter, not time.time(): the wall clock can step (NTP slews,
    # suspend/resume) and would mis-report long runs — and telemetry spans
    # already use the monotonic clock, so the headline number must agree
    # with the trace.
    stopwatch = obs.Stopwatch()
    study = Study(
        corpus,
        plan=_plan(args),
        fault_predicate=_faults(args),
        detector=args.detector,
    )
    store = None
    if args.store:
        store = ResultStore(
            args.store,
            corpus,
            sleep_s=study.sleep_s,
            read=not args.no_store_read,
            write=not args.no_store_write,
        )
    audit_enabled = args.audit or args.audit_out is not None
    results = study.run(
        resume=args.resume,
        recorder=recorder,
        store=store,
        audit=args.audit_level if audit_enabled else False,
    )
    print(f"# study completed in {stopwatch.elapsed():.0f}s", file=sys.stderr)
    if store is not None:
        print(f"# result store: {store.stats.describe()}", file=sys.stderr)
    if recorder is not None:
        if args.trace_out:
            recorder.write_trace(args.trace_out)
            print(f"# trace written to {args.trace_out}", file=sys.stderr)
        if args.metrics_out:
            recorder.write_metrics(args.metrics_out)
            print(f"# metrics written to {args.metrics_out}", file=sys.stderr)
        print(results.telemetry_table().render(), file=sys.stderr)
    _report_ledger(results)
    sys.stdout.write(render_study_stdout(results))
    if results.audit is not None:
        # The audit is commentary about the run, not part of the study's
        # deterministic stdout contract — route it to stderr so output
        # diffs (e.g. the CI parallel-parity check) stay byte-identical
        # with and without --audit.
        print(results.audit.render(), file=sys.stderr)
        if args.audit_out:
            _write_audit_json(results.audit, args.audit_out)
            print(f"# audit report written to {args.audit_out}", file=sys.stderr)
        if not results.audit.passed:
            return 1
    return 0


def _cmd_table(args) -> int:
    corpus = _build_corpus(args)
    results = Study(corpus, plan=_plan(args)).run()
    if results.failures:
        _report_ledger(results)
    artefact = getattr(results, args.name)()
    if isinstance(artefact, tuple):
        for part in artefact:
            print(part.render())
            print()
    elif args.csv:
        print(artefact.to_csv(), end="")
    else:
        print(artefact.render())
    return 0


def _cmd_score(args) -> int:
    from repro.core.analysis.scoring import score_apps, score_destinations
    from repro.core.dynamic import DynamicPipeline

    corpus = _build_corpus(args)
    pipeline = DynamicPipeline(corpus)
    for key in sorted(corpus.datasets):
        results = pipeline.run_dataset(*key)
        dest = score_destinations(corpus, results)
        app = score_apps(corpus, results)
        print(
            f"{key[0]:8s} {key[1]:8s} destination P={dest.precision:.3f} "
            f"R={dest.recall:.3f} F1={dest.f1:.3f} | "
            f"app P={app.precision:.3f} R={app.recall:.3f}"
        )
    return 0


def _split_list(value: str, parse) -> list:
    """Parse a comma-separated CLI axis value (``"2022,2023"``)."""
    items = [item.strip() for item in value.split(",") if item.strip()]
    if not items:
        raise argparse.ArgumentTypeError("expected a comma-separated list")
    return [parse(item) for item in items]


def _sweep_spec(args):
    """Build the sweep grid from ``--spec`` or from the axis flags."""
    from repro.core.sweep import SweepSpec

    axis_flags = (
        args.sweep_seeds,
        args.sweep_scales,
        args.sweep_fault_rates,
        args.sweep_detectors,
        args.sweep_workers,
    )
    if args.spec is not None:
        if any(flag is not None for flag in axis_flags):
            raise ValueError("--spec and --sweep-* axis flags are exclusive")
        return SweepSpec.load(args.spec)
    # Unspecified axes degrade to the session's single-run settings, so
    # `repro sweep --sweep-seeds 2022,2023` alone is a valid 2-point grid.
    return SweepSpec(
        seeds=tuple(args.sweep_seeds or [args.seed]),
        scales=tuple(args.sweep_scales or [args.scale]),
        fault_rates=tuple(args.sweep_fault_rates or [args.fault_rate]),
        detectors=tuple(args.sweep_detectors or ["full"]),
        workers=tuple(args.sweep_workers or [args.workers]),
    )


def _cmd_sweep(args) -> int:
    import json

    from repro.core.sweep import SweepEngine

    if args.report_out:
        parent = os.path.dirname(args.report_out) or "."
        if not os.path.isdir(parent):
            print(
                f"error: output directory does not exist: {parent}",
                file=sys.stderr,
            )
            return 2
    try:
        spec = _sweep_spec(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stopwatch = obs.Stopwatch()
    engine = SweepEngine(
        spec,
        store_dir=args.store,
        resume_dir=args.resume_dir,
        audit=args.audit_level if args.audit else False,
        fault_seed=args.fault_seed,
        metrics_dir=args.metrics_dir,
        progress=lambda line: print(f"# {line}", file=sys.stderr),
    )
    results = engine.run()
    print(
        f"# sweep of {len(results.points)} point(s) completed in "
        f"{stopwatch.elapsed():.0f}s",
        file=sys.stderr,
    )
    sys.stdout.write(render_sweep_stdout(results))
    if results.telemetry is not None:
        # Commentary, like the study timing: the merged sweep telemetry
        # goes to stderr so stdout stays the comparison report.
        print(results.telemetry_table().render(), file=sys.stderr)
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(results.to_json_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# sweep report written to {args.report_out}", file=sys.stderr)
    if any(point.audit_passed is False for point in results.points):
        return 1
    return 0


def _cmd_serve(args) -> int:
    from repro.service import StudyService

    # "auto" resolves the same way an execution plan would size a pool.
    workers = ExecutionPlan(workers=args.workers).worker_count
    service = StudyService(
        socket_path=args.socket,
        store_dir=args.store,
        workers=workers,
        queue_size=args.queue_size,
        max_concurrent=args.max_concurrent,
        log=lambda line: print(f"# {line}", file=sys.stderr),
    )
    try:
        code = service.serve_forever()
    except RuntimeError as exc:  # e.g. socket already claimed
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.metrics_out:
        service.recorder.write_metrics(args.metrics_out)
        print(
            f"# service metrics written to {args.metrics_out}", file=sys.stderr
        )
    return code


def _submit_config(args) -> dict:
    """The job config for ``repro submit``, from the session flags."""
    if args.kind == "study":
        return {
            "seed": args.seed,
            "scale": args.scale,
            "workers": args.workers,
            "chunk_size": args.chunk_size,
            "max_retries": args.max_retries,
            "fault_rate": args.fault_rate,
            "fault_seed": args.fault_seed,
        }
    return {
        "seeds": args.sweep_seeds or [args.seed],
        "scales": args.sweep_scales or [args.scale],
        "fault_rates": args.sweep_fault_rates or [args.fault_rate],
        "detectors": args.sweep_detectors or ["full"],
        "workers": args.sweep_workers or [args.workers],
        "fault_seed": args.fault_seed,
    }


def _cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.socket)
    # The daemon may run in another directory: artifact paths it writes
    # on the client's behalf must be absolute.
    metrics_out = os.path.abspath(args.metrics_out) if args.metrics_out else None
    report_out = None
    if args.kind == "sweep" and args.report_out:
        report_out = os.path.abspath(args.report_out)
    try:
        job = client.submit(
            args.kind,
            _submit_config(args),
            metrics_out=metrics_out,
            report_out=report_out,
        )
        print(f"# submitted {job['id']} ({args.kind})", file=sys.stderr)
        if args.no_wait:
            print(job["id"])
            return 0
        job = client.result(job["id"], wait=True, timeout=args.timeout)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if job["state"] != "completed":
        print(f"# {job['id']} {job['state']}", file=sys.stderr)
        if job.get("error"):
            print(job["error"], file=sys.stderr)
        return 1
    print(
        f"# {job['id']} completed "
        f"(queue wait {job['queue_wait_s']:.2f}s, ran {job['elapsed_s']:.1f}s)",
        file=sys.stderr,
    )
    if job.get("store_hits") is not None:
        total = job["store_hits"] + job["store_misses"]
        print(
            f"# result store: {job['store_hits']}/{total} unit hits",
            file=sys.stderr,
        )
    # The job's stdout, byte-identical to the direct command's.
    sys.stdout.write(job["output"] or "")
    return 0


def _cmd_jobs(args) -> int:
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.socket)
    try:
        if args.action == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        elif args.action == "shutdown":
            client.shutdown()
            print("# shutdown requested; service is draining", file=sys.stderr)
        else:  # status / cancel
            if not args.id:
                print(f"error: {args.action} requires a job id", file=sys.stderr)
                return 2
            job = getattr(client, args.action)(args.id)
            print(json.dumps(job, indent=2, sort_keys=True))
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_verify(args) -> int:
    if args.out:
        parent = os.path.dirname(args.out) or "."
        if not os.path.isdir(parent):
            print(
                f"error: output directory does not exist: {parent}",
                file=sys.stderr,
            )
            return 2
    corpus = _build_corpus(args)
    study = Study(corpus, plan=_plan(args), fault_predicate=_faults(args))
    results = study.run(audit=args.level)
    if results.failures:
        _report_ledger(results)
    report = results.audit
    print(report.render())
    if args.out:
        _write_audit_json(report, args.out)
        print(f"# audit report written to {args.out}", file=sys.stderr)
    return 0 if report.passed else 1


def _add_sweep_axis_flags(parser) -> None:
    """The sweep grid axes, shared by ``sweep`` and ``submit sweep``."""
    parser.add_argument(
        "--sweep-seeds",
        metavar="LIST",
        type=lambda v: _split_list(v, int),
        default=None,
        help="comma-separated corpus seeds (default: --seed)",
    )
    parser.add_argument(
        "--sweep-scales",
        metavar="LIST",
        type=lambda v: _split_list(v, float),
        default=None,
        help="comma-separated corpus scales (default: --scale)",
    )
    parser.add_argument(
        "--sweep-fault-rates",
        metavar="LIST",
        type=lambda v: _split_list(v, _rate),
        default=None,
        help="comma-separated fault-injection rates (default: "
        "--fault-rate); faulted points run without the shared store",
    )
    parser.add_argument(
        "--sweep-detectors",
        metavar="LIST",
        type=lambda v: _split_list(v, str),
        default=None,
        help="comma-separated detector ablations from "
        "{full, no-tls13, naive} (default: full); ablated points "
        "re-detect over cached captures and warm-start fully",
    )
    parser.add_argument(
        "--sweep-workers",
        metavar="LIST",
        type=lambda v: _split_list(v, _workers_arg),
        default=None,
        help="comma-separated worker counts (default: --workers)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="corpus scale relative to the paper's (1.0 = 5,150 apps)",
    )
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="worker processes for study execution (results are "
        "identical for any value; 1 = serial; 'auto' sizes the pool to "
        "the machine and falls back to serial when the pool cannot win)",
    )
    parser.add_argument(
        "--chunk-size",
        type=_non_negative_int,
        default=0,
        help="apps per work unit (0 = automatic)",
    )
    parser.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=1,
        help="retries per failed work unit before it is quarantined and "
        "recorded in the error ledger",
    )
    parser.add_argument(
        "--fault-rate",
        type=_rate,
        default=0.0,
        help="fault-injection testing hook: deterministically fail this "
        "fraction of per-app work (0 = disabled)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for --fault-rate (decides which apps fail)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("corpus", help="generate a corpus and print composition")
    study = sub.add_parser("study", help="run everything, print all tables")
    study.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help="checkpoint journal: completed work units are recorded here "
        "and replayed on a later run with the same seed/scale",
    )
    study.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="content-addressed result store: per-app results are "
        "published here and re-used by later runs with the same "
        "configuration, which then recompute only what changed",
    )
    study.add_argument(
        "--no-store-read",
        action="store_true",
        help="do not consult --store before computing (repopulate only)",
    )
    study.add_argument(
        "--no-store-write",
        action="store_true",
        help="do not publish results to --store (read-only consumer)",
    )
    study.add_argument(
        "--detector",
        choices=["full", "no-tls13", "naive"],
        default="full",
        help="dynamic detector variant; under --store a flip re-uses the "
        "cached capture stages and recomputes only detection onward",
    )
    study.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="instrument the run and write a Chrome trace-event JSON "
        "here (load it in Perfetto or about://tracing)",
    )
    study.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="instrument the run and write flat metrics JSON (counters, "
        "gauges, histograms, cache hit rates) here",
    )
    study.add_argument(
        "--audit",
        action="store_true",
        help="after the run, score every detector against corpus ground "
        "truth and check the StudyResults invariant catalogue; the "
        "report goes to stderr and a failed audit exits non-zero",
    )
    study.add_argument(
        "--audit-level",
        choices=["standard", "deep"],
        default="standard",
        help="'standard' = oracle + invariants; 'deep' adds a serial "
        "re-execution determinism check (runs the study twice)",
    )
    study.add_argument(
        "--audit-out",
        metavar="PATH",
        default=None,
        help="write the audit report as JSON here (implies --audit; "
        "validates against schemas/audit_report.schema.json)",
    )
    sweep = sub.add_parser(
        "sweep",
        help="run a grid of study configurations through a shared result "
        "store and print cross-seed stability tables",
    )
    sweep.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="sweep grid as a JSON (or, on Python 3.11+, TOML) document "
        "with keys seeds/scales/fault_rates/detectors/workers; exclusive "
        "with the --sweep-* axis flags",
    )
    _add_sweep_axis_flags(sweep)
    sweep.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="shared content-addressed result store: sweep points that "
        "differ only in analysis-side knobs or worker counts reuse their "
        "siblings' cached pipeline units",
    )
    sweep.add_argument(
        "--resume-dir",
        metavar="DIR",
        default=None,
        help="directory of per-point checkpoint journals; an interrupted "
        "sweep re-run picks each point up where it stopped",
    )
    sweep.add_argument(
        "--audit",
        action="store_true",
        help="audit every point against ground truth; any failed audit "
        "makes the sweep exit non-zero",
    )
    sweep.add_argument(
        "--audit-level",
        choices=["standard", "deep"],
        default="standard",
        help="audit depth when --audit is on",
    )
    sweep.add_argument(
        "--report-out",
        metavar="PATH",
        default=None,
        help="write the sweep report as JSON here (validates against "
        "schemas/sweep_report.schema.json)",
    )
    sweep.add_argument(
        "--metrics-dir",
        metavar="DIR",
        default=None,
        help="write per-point metrics JSON (point-<index>.json) here, "
        "before each point's telemetry merges into the sweep aggregate",
    )
    serve = sub.add_parser(
        "serve",
        help="run the long-lived study service: warm worker pool, shared "
        "result store, cached corpora; jobs arrive over a unix socket "
        "(pool size comes from the global --workers)",
    )
    serve.add_argument(
        "--socket",
        metavar="PATH",
        default=DEFAULT_SOCKET,
        help="unix socket to listen on",
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="shared content-addressed result store all non-faulted jobs "
        "run against; overlapping submissions warm-start from it",
    )
    serve.add_argument(
        "--queue-size",
        type=_positive_int,
        default=16,
        help="bounded job-queue capacity; submits beyond it fail fast",
    )
    serve.add_argument(
        "--max-concurrent",
        type=_positive_int,
        default=1,
        help="jobs running simultaneously (1 = serialise jobs, which "
        "keeps per-job telemetry attribution exact)",
    )
    serve.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the merged service-level metrics JSON here on exit",
    )
    submit = sub.add_parser(
        "submit",
        help="submit a study or sweep job to a running service and print "
        "its output (byte-identical to the direct command)",
    )
    submit.add_argument("kind", choices=["study", "sweep"])
    submit.add_argument(
        "--socket",
        metavar="PATH",
        default=DEFAULT_SOCKET,
        help="the service's unix socket",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="enqueue and print the job id instead of waiting for output",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up waiting for the result after this many seconds",
    )
    submit.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the job's own metrics JSON here (daemon-side write; "
        "the path is made absolute before sending)",
    )
    submit.add_argument(
        "--report-out",
        metavar="PATH",
        default=None,
        help="sweep jobs: write the sweep report JSON here",
    )
    _add_sweep_axis_flags(submit)
    jobs = sub.add_parser(
        "jobs",
        help="inspect or control a running service",
    )
    jobs.add_argument("action", choices=["status", "cancel", "stats", "shutdown"])
    jobs.add_argument("id", nargs="?", default=None, help="job id")
    jobs.add_argument(
        "--socket",
        metavar="PATH",
        default=DEFAULT_SOCKET,
        help="the service's unix socket",
    )
    table = sub.add_parser("table", help="print one table/figure")
    table.add_argument("name", choices=TABLE_CHOICES + ["figure4"])
    table.add_argument("--csv", action="store_true")
    sub.add_parser("score", help="detector precision/recall vs ground truth")
    verify = sub.add_parser(
        "verify",
        help="run the study and audit it: detector scores vs ground "
        "truth, invariant catalogue, optional determinism check",
    )
    verify.add_argument(
        "--level",
        choices=["standard", "deep"],
        default="standard",
        help="'standard' = oracle + invariants; 'deep' adds a serial "
        "re-execution determinism check (runs the study twice)",
    )
    verify.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the audit report as JSON here",
    )

    args = parser.parse_args(argv)
    handlers = {
        "corpus": _cmd_corpus,
        "study": _cmd_study,
        "table": _cmd_table,
        "score": _cmd_score,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "verify": _cmd_verify,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
