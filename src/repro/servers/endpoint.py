"""TLS server endpoints.

One :class:`ServerEndpoint` per hostname: the served chain, the protocol
versions and ciphersuites the server accepts, and an owner label for party
attribution.  Endpoints can rotate their leaf certificate (with or without
key reuse) to exercise the Section 5.3.3 renewal behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.pki.authority import PKIHierarchy
from repro.pki.chain import CertificateChain
from repro.pki.keys import KeyPair
from repro.tls.ciphers import CipherSuite, MODERN_SUITES
from repro.tls.records import TLSVersion
from repro.util.rng import DeterministicRng


@dataclass
class ServerEndpoint:
    """A TLS server for one hostname.

    Attributes:
        hostname: DNS name clients put in the SNI.
        chain: the certificate chain currently served.
        owner: organisation operating the endpoint (party attribution).
        supported_versions: accepted protocol versions.
        supported_suites: acceptable suites in server preference order.
        leaf_key: current leaf key (kept so renewals can reuse it).
        pki_kind: ground truth — ``"default"``, ``"custom"`` or
            ``"self-signed"``.
    """

    hostname: str
    chain: CertificateChain
    owner: str
    supported_versions: Sequence[TLSVersion] = (
        TLSVersion.TLS12,
        TLSVersion.TLS13,
    )
    supported_suites: Sequence[CipherSuite] = MODERN_SUITES
    leaf_key: Optional[KeyPair] = None
    pki_kind: str = "default"

    def serves_tls13(self) -> bool:
        return TLSVersion.TLS13 in self.supported_versions

    def renew_leaf(
        self,
        hierarchy: PKIHierarchy,
        rng: DeterministicRng,
        *,
        reuse_key: bool = True,
    ) -> CertificateChain:
        """Rotate the leaf certificate, optionally reusing the key.

        With ``reuse_key=True`` (the common operational practice the paper
        infers in Section 5.3.3), SPKI pins keep working across the renewal;
        whole-certificate pins break.
        """
        issued = hierarchy.issue_leaf_chain(
            self.hostname,
            rng,
            key=self.leaf_key if reuse_key else None,
        )
        self.chain = issued.chain
        self.leaf_key = issued.leaf_key
        return self.chain
