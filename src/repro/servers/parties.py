"""First- vs third-party attribution.

Figure 5 splits each app's contacted domains into first party (operated by
the app's developer) and third party (SDK vendors, ad/analytics networks,
CDNs).  The paper attributes "using various points of information (whois
data, certificate subject names, etc.)"; the simulation keeps an explicit
owner directory — the whois stand-in — and the same two-signal attribution:
directory lookup first, certificate-subject organisation as fallback.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.pki.chain import CertificateChain


def registrable_domain(hostname: str) -> str:
    """Collapse a hostname to its registrable domain (eTLD+1, naive).

    The simulation only mints two-label registrable domains under generic
    TLDs, so the last two labels suffice.
    """
    parts = hostname.lower().rstrip(".").split(".")
    if len(parts) <= 2:
        return ".".join(parts)
    return ".".join(parts[-2:])


class PartyDirectory:
    """Maps registrable domains to owning organisations."""

    def __init__(self):
        self._owners: Dict[str, str] = {}

    def register(self, hostname_or_domain: str, owner: str) -> None:
        """Record that a domain is operated by ``owner``."""
        self._owners[registrable_domain(hostname_or_domain)] = owner

    def owner_of(self, hostname: str) -> Optional[str]:
        """The whois-style lookup."""
        return self._owners.get(registrable_domain(hostname))

    def classify(
        self,
        hostname: str,
        app_owner: str,
        chain: Optional[CertificateChain] = None,
    ) -> str:
        """Label a destination ``"first"`` or ``"third"`` party for an app.

        Args:
            hostname: the contacted destination.
            app_owner: the organisation that publishes the app.
            chain: optional served chain; its leaf subject organisation is
                the fallback signal when whois has nothing.
        """
        owner = self.owner_of(hostname)
        if owner is None and chain is not None:
            org = chain.leaf.subject.organization
            owner = org or None
        if owner is None:
            return "third"
        return "first" if owner == app_owner else "third"

    def __len__(self) -> int:
        return len(self._owners)
