"""Server-side world: TLS endpoints, the hostname registry, and
party-attribution data.

The simulated Internet consists of :class:`ServerEndpoint` objects (one per
hostname) owned by organisations.  :class:`EndpointRegistry` plays DNS +
the servers themselves; :mod:`repro.servers.parties` is the whois-style
knowledge the paper uses to label destinations first- vs third-party.
"""

from repro.servers.endpoint import ServerEndpoint
from repro.servers.parties import PartyDirectory
from repro.servers.registry import EndpointRegistry

__all__ = ["EndpointRegistry", "PartyDirectory", "ServerEndpoint"]
