"""The endpoint registry — DNS plus the servers themselves.

Everything that answers TLS in the simulation is registered here:
first-party app backends, third-party SDK endpoints, Apple's own services.
The registry also owns the party directory and logs every default-PKI chain
to the CT log, keeping crt.sh-style lookups realistic.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence

from repro.errors import CorpusError
from repro.pki.authority import CertificateAuthority, PKIHierarchy
from repro.pki.chain import CertificateChain
from repro.pki.ctlog import CTLog
from repro.servers.endpoint import ServerEndpoint
from repro.servers.parties import PartyDirectory
from repro.tls.ciphers import MODERN_SUITES, WEAK_SUITES
from repro.tls.records import TLSVersion
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START


class EndpointRegistry:
    """Hostname → :class:`ServerEndpoint`, plus creation helpers."""

    def __init__(self, hierarchy: PKIHierarchy, rng: DeterministicRng):
        self.hierarchy = hierarchy
        self.ctlog = CTLog()
        self.parties = PartyDirectory()
        self._rng = rng
        self._endpoints: Dict[str, ServerEndpoint] = {}

    # -- lookup -------------------------------------------------------------

    def resolve(self, hostname: str) -> ServerEndpoint:
        """Return the endpoint for a hostname.

        Raises:
            CorpusError: for an unknown hostname (a corpus bug — apps only
                contact registered destinations).
        """
        endpoint = self._endpoints.get(hostname.lower())
        if endpoint is None:
            raise CorpusError(f"no endpoint registered for {hostname!r}")
        return endpoint

    def knows(self, hostname: str) -> bool:
        return hostname.lower() in self._endpoints

    def __iter__(self) -> Iterator[ServerEndpoint]:
        return iter(self._endpoints.values())

    def __len__(self) -> int:
        return len(self._endpoints)

    # -- creation -----------------------------------------------------------

    def _server_versions(self, rng: DeterministicRng) -> Sequence[TLSVersion]:
        """Most servers speak 1.2+1.3; a tail is 1.2-only or legacy."""
        draw = rng.random()
        if draw < 0.70:
            return (TLSVersion.TLS12, TLSVersion.TLS13)
        if draw < 0.95:
            return (TLSVersion.TLS11, TLSVersion.TLS12)
        return (TLSVersion.TLS10, TLSVersion.TLS11, TLSVersion.TLS12)

    def _server_suites(self, rng: DeterministicRng):
        """A minority of servers still list weak suites at the bottom."""
        suites = list(MODERN_SUITES)
        if rng.chance(0.25):
            suites.extend(rng.sample(WEAK_SUITES, rng.randint(1, 3)))
        return tuple(suites)

    def create_default_pki_endpoint(
        self,
        hostname: str,
        owner: str,
        *,
        wildcard: bool = False,
        lifetime_days: float = 398.0,
    ) -> ServerEndpoint:
        """Register an endpoint with a default-PKI chain (the common case)."""
        hostname = hostname.lower()
        if hostname in self._endpoints:
            return self._endpoints[hostname]
        rng = self._rng.child("endpoint", hostname)
        issued = self.hierarchy.issue_leaf_chain(
            hostname, rng, wildcard=wildcard, lifetime_days=lifetime_days
        )
        self.ctlog.log_chain(issued.chain)
        self.ctlog.log_certificate(issued.root.certificate)
        endpoint = ServerEndpoint(
            hostname=hostname,
            chain=issued.chain,
            owner=owner,
            supported_versions=self._server_versions(rng),
            supported_suites=self._server_suites(rng),
            leaf_key=issued.leaf_key,
            pki_kind="default",
        )
        self._endpoints[hostname] = endpoint
        self.parties.register(hostname, owner)
        return endpoint

    def create_custom_pki_endpoint(
        self, hostname: str, owner: str, authority: CertificateAuthority
    ) -> ServerEndpoint:
        """Register an endpoint whose chain anchors in a private root.

        Custom-PKI certificates are not CT-logged — which is what makes
        ~half of statically found pins unresolvable via crt.sh.
        """
        hostname = hostname.lower()
        rng = self._rng.child("endpoint", hostname)
        leaf, leaf_key = authority.issue(
            hostname,
            san=(hostname,),
            not_before=STUDY_START.plus_days(-60),
            lifetime_days=730,
        )
        endpoint = ServerEndpoint(
            hostname=hostname,
            chain=CertificateChain.of(leaf, authority.certificate),
            owner=owner,
            supported_versions=self._server_versions(rng),
            supported_suites=self._server_suites(rng),
            leaf_key=leaf_key,
            pki_kind="custom",
        )
        self._endpoints[hostname] = endpoint
        self.parties.register(hostname, owner)
        return endpoint

    def create_self_signed_endpoint(
        self, hostname: str, owner: str, lifetime_years: float = 10.0
    ) -> ServerEndpoint:
        """Register the Section 5.3.1 oddity: a lone long-lived self-signed
        certificate served instead of a chain."""
        hostname = hostname.lower()
        rng = self._rng.child("endpoint", hostname)
        authority = CertificateAuthority.self_signed_root(
            hostname,
            rng.child("self-signed"),
            not_before=STUDY_START.plus_years(-1),
            lifetime_years=lifetime_years,
        )
        endpoint = ServerEndpoint(
            hostname=hostname,
            chain=CertificateChain.of(authority.certificate),
            owner=owner,
            supported_versions=self._server_versions(rng),
            supported_suites=self._server_suites(rng),
            leaf_key=authority.key,
            pki_kind="self-signed",
        )
        self._endpoints[hostname] = endpoint
        self.parties.register(hostname, owner)
        return endpoint
