"""Order-independent metric primitives: counters, gauges, histograms.

Each metric type defines a commutative, associative ``merge`` so that
per-worker telemetry can be folded into the parent recorder in whatever
order unit results arrive — the merged totals are identical for every
completion order, keeping instrumented runs as deterministic as the
study results themselves:

* :class:`Counter` — merge adds.
* :class:`Gauge` — merge keeps the maximum (the only order-independent
  choice for a last-write-wins quantity coming from concurrent workers).
* :class:`Histogram` — merge sums counts/totals and widens min/max.

None of these hold locks; the :class:`~repro.core.obs.recorder.Recorder`
serialises access.  All are picklable so worker snapshots can cross
process boundaries.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0):
        self.value = value

    def add(self, n: float = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A point-in-time level (queue depth, pool size)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)


class Histogram:
    """A count/sum/min/max summary of observed values.

    Deliberately bucket-free: the study's distributions are inspected in
    the Chrome trace, not the metrics file, so the flat export only needs
    enough to compute means and spot outliers.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(
        self,
        count: int = 0,
        total: float = 0.0,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
    ):
        self.count = count
        self.total = total
        self.minimum = minimum
        self.maximum = maximum

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def merge(self, other: "Histogram") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.minimum = (
            other.minimum
            if self.minimum is None
            else min(self.minimum, other.minimum)
        )
        self.maximum = (
            other.maximum
            if self.maximum is None
            else max(self.maximum, other.maximum)
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "mean": self.mean,
        }

    def as_tuple(self) -> Tuple[int, float, Optional[float], Optional[float]]:
        """Compact picklable form for worker snapshots."""
        return (self.count, self.total, self.minimum, self.maximum)

    @classmethod
    def from_tuple(cls, data) -> "Histogram":
        return cls(*data)
