"""The one clock telemetry (and the CLI's elapsed-time report) uses.

Everything that measures a duration in this codebase goes through
:func:`now` — a ``time.perf_counter`` alias.  ``time.time`` deltas jump
whenever the wall clock is adjusted (NTP slews, manual changes, leap
smearing), which makes them wrong for elapsed-time measurement;
``perf_counter`` is monotonic and has the highest available resolution.
Using a single alias keeps span timestamps and stopwatch readings on the
same timebase, so a span's duration and the surrounding stopwatch delta
are directly comparable.
"""

from __future__ import annotations

import time

#: Monotonic high-resolution timestamp in seconds.  Only differences are
#: meaningful; the origin is arbitrary (and differs across processes).
now = time.perf_counter


class Stopwatch:
    """Elapsed-seconds measurement against :func:`now`."""

    __slots__ = ("started",)

    def __init__(self):
        self.started = now()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return now() - self.started

    def restart(self) -> float:
        """Reset the origin; return the elapsed time up to the reset."""
        elapsed = self.elapsed()
        self.started = now()
        return elapsed
