"""Timed regions: the span model and its context-manager timer.

A :class:`Span` is one closed interval on the telemetry clock
(:mod:`repro.core.obs.clock`, ``perf_counter``-based) with a name, a
category, a nesting depth and free-form ``args``.  Spans nest via a
per-thread stack kept by the recorder; the Chrome trace export does not
need explicit parent links (the viewer infers nesting from containment
within one pid/tid track) but the recorded depth makes nesting testable
and keeps the flat span list self-describing.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Compact picklable span form for worker snapshots:
#: ``(name, cat, start, end, depth, pid, tid, args-items)``.
SpanTuple = Tuple[str, str, float, float, int, int, int, tuple]


@dataclass
class Span:
    """One completed timed region."""

    name: str
    cat: str
    start: float
    end: float
    depth: int
    pid: int
    tid: int
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_tuple(self) -> SpanTuple:
        return (
            self.name,
            self.cat,
            self.start,
            self.end,
            self.depth,
            self.pid,
            self.tid,
            tuple(self.args.items()),
        )

    @classmethod
    def from_tuple(cls, data: SpanTuple) -> "Span":
        name, cat, start, end, depth, pid, tid, args = data
        return cls(name, cat, start, end, depth, pid, tid, dict(args))


class SpanTimer:
    """Context manager that records one span into a recorder.

    Created by :meth:`Recorder.span`; measures on
    :func:`repro.core.obs.clock.now` and pushes/pops the recorder's
    per-thread span stack so nested timers know their depth.
    """

    __slots__ = ("_recorder", "name", "cat", "args", "start", "depth")

    def __init__(self, recorder, name: str, cat: str, args: Dict[str, object]):
        self._recorder = recorder
        self.name = name
        self.cat = cat
        self.args = args
        self.start = 0.0
        self.depth = 0

    def __enter__(self) -> "SpanTimer":
        from repro.core.obs import clock

        self.depth = self._recorder._push_span(self.name)
        self.start = clock.now()
        return self

    def __exit__(self, *exc_info) -> None:
        from repro.core.obs import clock

        end = clock.now()
        self._recorder._pop_span()
        self._recorder._record_span(
            Span(
                name=self.name,
                cat=self.cat,
                start=self.start,
                end=end,
                depth=self.depth,
                pid=os.getpid(),
                tid=threading.get_ident() & 0x7FFFFFFF,
                args=self.args,
            )
        )


class NullSpan:
    """The do-nothing timer handed out when no recorder is active.

    A single shared instance keeps the telemetry-off path down to one
    global read, one ``None`` check, and two no-op method calls.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = NullSpan()
