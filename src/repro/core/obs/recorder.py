"""The telemetry recorder and the module-level instrumentation funnel.

One :class:`Recorder` collects everything a run emits — spans, counters,
gauges, histograms — and exports two artifacts:

* a Chrome trace-event JSON (``ph: "X"`` complete events, microsecond
  timestamps) that loads directly into Perfetto or ``about://tracing``;
* a flat metrics JSON with every counter/gauge/histogram.

Instrumented code never takes a recorder parameter.  It calls the
module-level funnel (:func:`span`, :func:`count`, :func:`observe`), which
consults the process-global active recorder: ``None`` means telemetry is
off and every call degrades to a near-free no-op, which is how the whole
subsystem stays off by default with negligible overhead.

Worker processes run their own recorder and :meth:`Recorder.drain` a
picklable :class:`TelemetrySnapshot` after each work unit; the parent
folds snapshots in with :meth:`Recorder.merge_snapshot`.  Counters add,
gauges take maxima, histograms widen — all commutative — so the merged
metrics are identical for every unit completion order (the same
order-independence the engine guarantees for results).  Span *timestamps*
are wall-clock facts and naturally vary run to run; determinism is
claimed for metrics and for study results, never for timings.

``functools.lru_cache``-based hot-path caches register themselves via
:func:`register_cache`; the recorder turns ``cache_info()`` deltas into
``cache.<name>.hit`` / ``cache.<name>.miss`` counters at drain/finalize
time, so cache instrumentation costs nothing per call.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.obs import clock
from repro.core.obs.metrics import Counter, Gauge, Histogram
from repro.core.obs.spans import NULL_SPAN, Span, SpanTimer

#: Version tag stamped into both JSON exports.
SCHEMA_VERSION = "repro-telemetry-v1"

#: Registered ``lru_cache`` functions: metric name -> cached function.
_LRU_CACHES: Dict[str, object] = {}


def register_cache(name: str, cached_function) -> None:
    """Register an ``lru_cache``-wrapped function for hit/miss accounting.

    Idempotent per name; modules call this once at import time.  The
    recorder reads ``cache_info()`` deltas lazily, so registration has no
    runtime cost for uninstrumented runs.
    """
    _LRU_CACHES[name] = cached_function


@dataclass
class TelemetrySnapshot:
    """A picklable delta of one recorder's state since the last drain."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, tuple] = field(default_factory=dict)
    spans: List[tuple] = field(default_factory=list)

    def compute_seconds(self) -> float:
        """Total duration of top-level (depth-0) spans in this snapshot."""
        return sum(s[3] - s[2] for s in self.spans if s[4] == 0)


class Recorder:
    """Collects one run's telemetry; thread-safe; export to JSON."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: List[Span] = []
        self._tls = threading.local()
        self._lru_baseline: Dict[str, Tuple[int, int]] = {}
        self.epoch = clock.now()

    # -- span stack (called by SpanTimer) ----------------------------------

    def _push_span(self, name: str) -> int:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        depth = len(stack)
        stack.append(name)
        return depth

    def _pop_span(self) -> None:
        self._tls.stack.pop()

    def _record_span(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def span_stack(self) -> List[str]:
        """Names of the calling thread's currently open spans."""
        return list(getattr(self._tls, "stack", ()))

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "", **args) -> SpanTimer:
        """A context manager timing one region."""
        return SpanTimer(self, name, cat, args)

    def count(self, name: str, n: float = 1) -> None:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            counter.add(n)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> "Recorder":
        """Make this the process's active recorder and baseline the caches.

        Baselining matters on fork-start worker pools: a forked child
        inherits the parent's warm ``lru_cache`` contents *and* hit/miss
        totals, so only deltas from this point may be attributed to the
        instrumented run.
        """
        for name, function in _LRU_CACHES.items():
            info = function.cache_info()
            self._lru_baseline[name] = (info.hits, info.misses)
        set_recorder(self)
        return self

    def uninstall(self) -> None:
        """Collect final cache deltas and deactivate."""
        self.collect_caches()
        if get_recorder() is self:
            set_recorder(None)

    def collect_caches(self) -> None:
        """Fold ``lru_cache`` hit/miss deltas into counters."""
        for name, function in _LRU_CACHES.items():
            info = function.cache_info()
            base_hits, base_misses = self._lru_baseline.get(name, (0, 0))
            hits = info.hits - base_hits
            misses = info.misses - base_misses
            self._lru_baseline[name] = (info.hits, info.misses)
            if hits:
                self.count(f"cache.{name}.hit", hits)
            if misses:
                self.count(f"cache.{name}.miss", misses)

    # -- worker snapshots --------------------------------------------------

    def drain(self) -> TelemetrySnapshot:
        """Return (and clear) everything recorded since the last drain."""
        self.collect_caches()
        with self._lock:
            snapshot = TelemetrySnapshot(
                counters={k: c.value for k, c in self._counters.items()},
                gauges={k: g.value for k, g in self._gauges.items()},
                histograms={
                    k: h.as_tuple() for k, h in self._histograms.items()
                },
                spans=[s.as_tuple() for s in self._spans],
            )
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
        return snapshot

    def merge_snapshot(
        self,
        snapshot: TelemetrySnapshot,
        rebase_to: Optional[float] = None,
    ) -> None:
        """Fold a worker snapshot in (order-independent).

        Args:
            snapshot: a drained worker delta.
            rebase_to: optional timestamp on *this* recorder's clock to
                shift the snapshot's earliest span onto.  ``perf_counter``
                origins differ across processes; rebasing puts worker
                spans onto the parent timeline so the trace reads as one
                run.  Metrics are unaffected.
        """
        shift = 0.0
        if rebase_to is not None and snapshot.spans:
            shift = rebase_to - min(s[2] for s in snapshot.spans)
        with self._lock:
            for name, value in snapshot.counters.items():
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter()
                counter.add(value)
            for name, value in snapshot.gauges.items():
                gauge = self._gauges.get(name)
                if gauge is None:
                    gauge = self._gauges[name] = Gauge(value)
                else:
                    gauge.merge(Gauge(value))
            for name, data in snapshot.histograms.items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    self._histograms[name] = Histogram.from_tuple(data)
                else:
                    histogram.merge(Histogram.from_tuple(data))
            for data in snapshot.spans:
                span = Span.from_tuple(data)
                span.start += shift
                span.end += shift
                self._spans.append(span)

    def merge_from(self, other: "Recorder") -> TelemetrySnapshot:
        """Drain ``other`` and fold its telemetry into this recorder.

        The cross-run counterpart of the worker-snapshot path: a sweep
        instruments each study run with its own recorder, then merges
        every run into one sweep-level recorder with this method.  The
        drained snapshot is returned so callers can *also* export the
        single run's metrics before it dissolves into the aggregate.
        Merging is commutative (counters add, gauges take maxima,
        histograms widen), so the aggregate is identical for any run
        order.
        """
        snapshot = other.drain()
        self.merge_snapshot(snapshot)
        return snapshot

    # -- read access -------------------------------------------------------

    def counter_value(self, name: str) -> float:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return {k: c.value for k, c in sorted(self._counters.items())}

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    # -- export ------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The run as a Chrome trace-event document.

        Complete (``"ph": "X"``) events with microsecond timestamps
        relative to the recorder's epoch; one pid track per process that
        contributed spans.  Loads in Perfetto and ``about://tracing``.
        """
        with self._lock:
            spans = sorted(self._spans, key=lambda s: (s.pid, s.tid, s.start))
        events = [
            {
                "name": span.name,
                "cat": span.cat or "repro",
                "ph": "X",
                "ts": max(0.0, (span.start - self.epoch) * 1e6),
                "dur": max(0.0, span.duration * 1e6),
                "pid": span.pid,
                "tid": span.tid,
                "args": {str(k): _jsonable(v) for k, v in span.args.items()},
            }
            for span in spans
        ]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": SCHEMA_VERSION},
        }

    def metrics(self) -> dict:
        """The run as a flat metrics document."""
        with self._lock:
            return {
                "schema": SCHEMA_VERSION,
                "counters": {
                    k: self._counters[k].value for k in sorted(self._counters)
                },
                "gauges": {
                    k: self._gauges[k].value for k in sorted(self._gauges)
                },
                "histograms": {
                    k: self._histograms[k].as_dict()
                    for k in sorted(self._histograms)
                },
                "spans": {"total": len(self._spans)},
            }

    def write_trace(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, indent=1)
            fh.write("\n")

    def write_metrics(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.metrics(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def summary_table(self):
        """Counters and span-time totals as a reporting table."""
        from repro.reporting.tables import Table

        table = Table("Telemetry summary", ["metric", "value"])
        for name, value in self.counters().items():
            table.add_row(name, f"{value:g}")
        totals: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for span in self.spans():
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
            counts[span.name] = counts.get(span.name, 0) + 1
        for name in sorted(totals):
            table.add_row(
                f"span.{name}", f"{totals[name]:.3f}s x{counts[name]}"
            )
        for name, histogram in sorted(self._histograms.items()):
            table.add_row(
                f"hist.{name}",
                f"mean={histogram.mean:.4f} n={histogram.count}",
            )
        return table


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# -- the module-level funnel -------------------------------------------------

_ACTIVE: Optional[Recorder] = None


def get_recorder() -> Optional[Recorder]:
    """The process's active recorder, or None when telemetry is off."""
    return _ACTIVE


def set_recorder(recorder: Optional[Recorder]) -> None:
    global _ACTIVE
    _ACTIVE = recorder


def span(name: str, cat: str = "", **args):
    """Time a region on the active recorder (no-op when telemetry is off)."""
    recorder = _ACTIVE
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, cat, **args)


def count(name: str, n: float = 1) -> None:
    """Bump a counter on the active recorder (no-op when off)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.count(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active recorder (no-op when off)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.observe(name, value)


def cache_event(name: str, hit: bool) -> None:
    """Record a hand-rolled cache's hit or miss (no-op when off)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.count(
            f"cache.{name}.hit" if hit else f"cache.{name}.miss"
        )
