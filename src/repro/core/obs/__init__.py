"""Zero-dependency run telemetry: spans, counters, and trace export.

The study's observability layer (DESIGN.md §9).  Three pieces:

* :mod:`repro.core.obs.clock` — the one monotonic clock
  (``time.perf_counter``) every duration in the codebase is measured on.
* :mod:`repro.core.obs.metrics` / :mod:`repro.core.obs.spans` — the
  primitives: order-independently mergeable counters/gauges/histograms
  and nested timed regions.
* :mod:`repro.core.obs.recorder` — the :class:`Recorder` that collects
  both and exports a Chrome trace-event JSON (Perfetto /
  ``about://tracing``) plus a flat metrics JSON, and the module-level
  funnel (:func:`span`, :func:`count`, :func:`observe`,
  :func:`cache_event`) instrumented code calls.

Telemetry is **off by default**: with no recorder installed every funnel
call is a global read and a ``None`` check.  ``Study.run(recorder=...)``
or ``repro study --trace-out/--metrics-out`` turns it on.
"""

from repro.core.obs.clock import Stopwatch, now
from repro.core.obs.metrics import Counter, Gauge, Histogram
from repro.core.obs.recorder import (
    Recorder,
    TelemetrySnapshot,
    cache_event,
    count,
    get_recorder,
    observe,
    register_cache,
    set_recorder,
    span,
)
from repro.core.obs.spans import NULL_SPAN, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_SPAN",
    "Recorder",
    "Span",
    "Stopwatch",
    "TelemetrySnapshot",
    "cache_event",
    "count",
    "get_recorder",
    "now",
    "observe",
    "register_cache",
    "set_recorder",
    "span",
]
