"""Per-app static-analysis reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.core.static.ctlookup import CTResolution
from repro.core.static.nsc_analysis import NSCAnalysis
from repro.core.static.search import ScanResult


@dataclass
class StaticAppReport:
    """Everything static analysis learned about one app.

    The Table 3 predicates:

    * ``embedded_material`` — the "Embedded Certificates" column: any
      certificate or pin token found by the content scans.
    * ``nsc_pins`` — the "Configuration Files" column (prior-work method).
    """

    app_id: str
    platform: str
    scan: ScanResult
    nsc: NSCAnalysis
    ct: CTResolution
    decryption_tool: str = ""

    @property
    def embedded_material(self) -> bool:
        return self.scan.has_material()

    @property
    def nsc_pins(self) -> bool:
        return self.nsc.has_pins

    @property
    def potentially_pinning(self) -> bool:
        """Any static evidence at all."""
        return self.embedded_material or self.nsc_pins

    def all_pin_strings(self) -> Set[str]:
        return self.scan.unique_pins() | set(self.nsc.pins)

    def finding_paths(self) -> Set[str]:
        return self.scan.finding_paths()

    def embedded_certificate_count(self) -> int:
        return len(self.scan.certificates)
