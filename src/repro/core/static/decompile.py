"""Package acquisition: decompilation and decryption.

Android packages decompile with Apktool — always possible.  iOS payloads
are FairPlay-encrypted and need a jailbroken device plus a dump tool
(Section 4.1.2): Flexdecrypt is preferred because it does not need to
launch the app; Frida-iOS-Dump is the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appmodel.android import AndroidApp
from repro.appmodel.filetree import FileTree
from repro.appmodel.ios import IOSApp
from repro.errors import AppModelError, DeviceError


@dataclass(frozen=True)
class DecryptionOutcome:
    """How an iOS payload was obtained."""

    tree: FileTree
    tool: str  # "flexdecrypt" or "frida-ios-dump"


def decompile_android(packaged: AndroidApp) -> FileTree:
    """Apktool stand-in: expose the decompiled file tree.

    Raises:
        AppModelError: for an empty package (a corrupted download).
    """
    tree = packaged.package
    if len(tree) == 0:
        raise AppModelError(f"{packaged.app_id}: empty APK")
    return tree


def decrypt_ios(
    packaged: IOSApp,
    jailbroken_device_available: bool = True,
    prefer_flexdecrypt: bool = True,
) -> DecryptionOutcome:
    """Obtain a decrypted IPA payload.

    Args:
        packaged: the App Store package.
        jailbroken_device_available: decryption requires one.
        prefer_flexdecrypt: use the faster, no-launch tool first.

    Raises:
        DeviceError: if no jailbroken device is available.
    """
    if not jailbroken_device_available:
        raise DeviceError(
            f"{packaged.app_id}: cannot decrypt without a jailbroken device"
        )
    tree = packaged.ipa.decrypt()
    tool = "flexdecrypt" if prefer_flexdecrypt else "frida-ios-dump"
    return DecryptionOutcome(tree=tree, tool=tool)
