"""Resolving SPKI hashes through Certificate Transparency (Section 4.1.3).

Found pins are looked up in the CT index (crt.sh in the paper).  Public
(default-PKI) certificates resolve; custom-PKI and obfuscation artefacts
do not — in the study only ~50 % of unique pins resolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.static.search import PinFinding
from repro.pki.certificate import Certificate
from repro.pki.ctlog import CTLog


@dataclass
class CTResolution:
    """Pin-to-certificate resolution results for one app."""

    resolved: Dict[str, List[Certificate]] = field(default_factory=dict)
    unresolved: List[str] = field(default_factory=list)

    @property
    def resolution_rate(self) -> float:
        total = len(self.resolved) + len(self.unresolved)
        return len(self.resolved) / total if total else 0.0

    def certificates(self) -> List[Certificate]:
        out: List[Certificate] = []
        seen = set()
        for certs in self.resolved.values():
            for cert in certs:
                fp = cert.fingerprint_sha256()
                if fp not in seen:
                    seen.add(fp)
                    out.append(cert)
        return out


def resolve_pins(pins: List[PinFinding], ctlog: CTLog) -> CTResolution:
    """Resolve each unique pin against the CT index."""
    resolution = CTResolution()
    # Sorted so the resolved-dict insertion order is stable across
    # processes (set iteration order varies under hash randomization,
    # and the parallel engine compares results across workers).
    for pin in sorted({f.pin for f in pins}):
        hits = ctlog.search_pin(pin)
        if hits:
            resolution.resolved[pin] = hits
        else:
            resolution.unresolved.append(pin)
    resolution.unresolved.sort()
    return resolution
