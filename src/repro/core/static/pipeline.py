"""Static-pipeline orchestration.

Runs decompilation/decryption, content scans, NSC analysis and CT
resolution over packaged apps, producing :class:`StaticAppReport` per app
and corpus-level aggregates (attribution input, unique-certificate
inventories).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.appmodel.android import AndroidApp
from repro.appmodel.ios import IOSApp
from repro.core import obs
from repro.core.static.attribution import AttributionResult, attribute_findings
from repro.core.static.ctlookup import resolve_pins
from repro.core.static.decompile import decompile_android, decrypt_ios
from repro.core.static.nsc_analysis import NSCAnalysis, analyze_nsc
from repro.core.static.report import StaticAppReport
from repro.core.static.search import scan_tree
from repro.core.exec.faults import maybe_inject
from repro.errors import AnalysisError
from repro.pki.ctlog import CTLog


class StaticPipeline:
    """Static analysis over a corpus.

    Args:
        ctlog: the CT index for hash resolution.
        jailbroken_device_available: gates iOS decryption.
        include_native: run the native-strings pass (ablation knob).
        fault_predicate: injectable per-app failure hook (see
            :mod:`repro.core.exec.faults`); fires before any work on an
            app so no partial state is left behind.
    """

    def __init__(
        self,
        ctlog: CTLog,
        jailbroken_device_available: bool = True,
        include_native: bool = True,
        fault_predicate=None,
    ):
        self.ctlog = ctlog
        self.jailbroken_device_available = jailbroken_device_available
        self.include_native = include_native
        self.fault_predicate = fault_predicate

    def analyze_app(self, packaged) -> StaticAppReport:
        """Analyze one packaged app (Android or iOS)."""
        app = packaged.app
        maybe_inject(self.fault_predicate, "static", app.app_id)
        with obs.span(
            "static.app", cat="static", app=app.app_id, platform=app.platform
        ):
            tool = ""
            with obs.span("static.decompile", cat="static"):
                if isinstance(packaged, AndroidApp):
                    tree = decompile_android(packaged)
                    nsc = analyze_nsc(tree)
                elif isinstance(packaged, IOSApp):
                    outcome = decrypt_ios(
                        packaged, self.jailbroken_device_available
                    )
                    tree = outcome.tree
                    tool = outcome.tool
                    nsc = NSCAnalysis()  # not an Android concept
                else:  # pragma: no cover - defensive
                    raise AnalysisError(
                        f"unknown package type {type(packaged).__name__}"
                    )

            with obs.span("static.scan", cat="static"):
                scan = scan_tree(tree, include_native=self.include_native)
            with obs.span("static.ct_lookup", cat="static"):
                ct = resolve_pins(scan.pins, self.ctlog)
            return StaticAppReport(
                app_id=app.app_id,
                platform=app.platform,
                scan=scan,
                nsc=nsc,
                ct=ct,
                decryption_tool=tool,
            )

    def analyze_dataset(self, packaged_apps: Iterable) -> List[StaticAppReport]:
        return [self.analyze_app(p) for p in packaged_apps]

    @staticmethod
    def attribute(reports: Iterable[StaticAppReport]) -> AttributionResult:
        """Corpus-level third-party attribution over finding paths."""
        return attribute_findings(
            {r.app_id: r.finding_paths() for r in reports}
        )
