"""Static-pipeline orchestration.

Runs decompilation/decryption, content scans, NSC analysis and CT
resolution over packaged apps, producing :class:`StaticAppReport` per app
and corpus-level aggregates (attribution input, unique-certificate
inventories).

The per-app flow is the declarative :data:`STATIC_GRAPH` stage graph
(DESIGN.md §15): decompile → scan → ct_lookup → report, with per-stage
telemetry, fault points, and content-addressed stage fingerprints derived
from the declaration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.appmodel.android import AndroidApp
from repro.appmodel.filetree import FileTree
from repro.appmodel.ios import IOSApp
from repro.core.pipeline import Artifact, Stage, StageGraph
from repro.core.static.attribution import AttributionResult, attribute_findings
from repro.core.static.ctlookup import resolve_pins
from repro.core.static.decompile import decompile_android, decrypt_ios
from repro.core.static.nsc_analysis import NSCAnalysis, analyze_nsc
from repro.core.static.report import StaticAppReport
from repro.core.static.search import scan_tree
from repro.errors import AnalysisError
from repro.pki.ctlog import CTLog

#: Tool sentinel for the simulated apktool decompilation path.  Android
#: apps need no decryption, but report rows must never carry an empty
#: tool field (the audit catalogue asserts this).
ANDROID_DECOMPILER = "apktool-sim"


@dataclass(frozen=True)
class DecompiledApp:
    """The ``decompile`` stage's artifact: a file tree plus provenance.

    NSC extraction rides along because it reads the same manifest pass
    the Android decompiler produces (and is structurally empty on iOS).
    """

    tree: FileTree
    tool: str
    nsc: NSCAnalysis


def _decompile(ctx, a):
    packaged = a["packaged"]
    if isinstance(packaged, AndroidApp):
        tree = decompile_android(packaged)
        return DecompiledApp(
            tree=tree, tool=ANDROID_DECOMPILER, nsc=analyze_nsc(tree)
        )
    if isinstance(packaged, IOSApp):
        outcome = decrypt_ios(packaged, ctx.jailbroken_device_available)
        # NSC is not an iOS concept; an empty analysis keeps report rows
        # uniform.
        return DecompiledApp(
            tree=outcome.tree, tool=outcome.tool, nsc=NSCAnalysis()
        )
    raise AnalysisError(  # pragma: no cover - defensive
        f"unknown package type {type(packaged).__name__}"
    )


def _scan(ctx, a):
    return scan_tree(a["decompile"].tree, include_native=ctx.include_native)


def _ct_lookup(ctx, a):
    return resolve_pins(a["scan"].pins, ctx.ctlog)


def _report(ctx, a):
    return StaticAppReport(
        app_id=a["app_id"],
        platform=a["platform"],
        scan=a["scan"],
        nsc=a["decompile"].nsc,
        ct=a["ct_lookup"],
        decryption_tool=a["decompile"].tool,
    )


STATIC_GRAPH = StageGraph(
    kind="static",
    seeds=(Artifact("packaged", "the packaged app under analysis"),),
    stages=(
        Stage(
            name="decompile",
            fn=_decompile,
            config=("jailbroken_device_available",),
            cost_share=0.45,
            persist=True,
        ),
        Stage(
            name="scan",
            fn=_scan,
            inputs=("decompile",),
            config=("include_native",),
            cost_share=0.45,
            persist=True,
            derive=lambda r: r.scan,
        ),
        Stage(
            name="ct_lookup",
            fn=_ct_lookup,
            inputs=("scan",),
            cost_share=0.10,
            persist=True,
            derive=lambda r: r.ct,
        ),
        Stage(
            name="report",
            fn=_report,
            inputs=("decompile", "scan", "ct_lookup"),
            span=False,
        ),
    ),
    defaults={
        "jailbroken_device_available": True,
        "include_native": True,
    },
)


class StaticPipeline:
    """Static analysis over a corpus.

    Args:
        ctlog: the CT index for hash resolution.
        jailbroken_device_available: gates iOS decryption.
        include_native: run the native-strings pass (ablation knob).
        fault_predicate: injectable per-app failure hook (see
            :mod:`repro.core.exec.faults`); fires before any work on an
            app so no partial state is left behind.
    """

    graph = STATIC_GRAPH

    def __init__(
        self,
        ctlog: CTLog,
        jailbroken_device_available: bool = True,
        include_native: bool = True,
        fault_predicate=None,
    ):
        self.ctlog = ctlog
        self.jailbroken_device_available = jailbroken_device_available
        self.include_native = include_native
        self.fault_predicate = fault_predicate

    def analyze_app(self, packaged, cache=None, dataset=None) -> StaticAppReport:
        """Analyze one packaged app (Android or iOS).

        With a ``cache`` (stage-granular result store) and a ``dataset``
        name, warm stages are served from the store and only invalidated
        stages recompute.
        """
        return STATIC_GRAPH.run(self, packaged, cache=cache, dataset=dataset)

    def analyze_dataset(self, packaged_apps: Iterable) -> List[StaticAppReport]:
        return [self.analyze_app(p) for p in packaged_apps]

    @staticmethod
    def attribute(reports: Iterable[StaticAppReport]) -> AttributionResult:
        """Corpus-level third-party attribution over finding paths."""
        return attribute_findings(
            {r.app_id: r.finding_paths() for r in reports}
        )
