"""Static analysis pipeline (Section 4.1).

Stages, mirroring Figure 1 steps 2–3:

1. :mod:`repro.core.static.decompile` — Apktool for Android;
   Flexdecrypt / Frida-iOS-Dump for (jailbroken-device) iOS decryption.
2. :mod:`repro.core.static.search` — ripgrep-style scans for certificate
   files, PEM delimiters and SPKI-hash tokens, plus a radare2-style
   strings pass over native binaries.
3. :mod:`repro.core.static.nsc_analysis` — the prior-work technique:
   Android Network Security Configuration extraction and parsing.
4. :mod:`repro.core.static.ctlookup` — resolve found hashes to
   certificates through the CT log (crt.sh).
5. :mod:`repro.core.static.attribution` — map finding paths to
   third-party frameworks (Table 7).
"""

from repro.core.static.decompile import decompile_android, decrypt_ios
from repro.core.static.nsc_analysis import analyze_nsc
from repro.core.static.pipeline import StaticPipeline
from repro.core.static.report import StaticAppReport
from repro.core.static.search import scan_tree

__all__ = [
    "StaticAppReport",
    "StaticPipeline",
    "analyze_nsc",
    "decompile_android",
    "decrypt_ios",
    "scan_tree",
]
