"""Third-party code attribution (Section 4.1.4, Table 7).

Each finding carries the package path where it was found.  Paths that
recur across more than a threshold number of apps (5 in the paper) are
reviewed and mapped to third-party frameworks; generic names
(``config.json`` etc.) are discarded.  The simulation's "manual review" is
a prefix map seeded from the SDK catalog — the same public knowledge the
authors used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.appmodel.sdk import SDK_CATALOG

#: File names too generic to attribute (the paper names config.json).
GENERIC_BASENAMES: Set[str] = {
    "config.json",
    "cacert.pem",
    "roots.pem",
    "resources.arsc",
    "info.plist",
}

THIRD_PARTY_THRESHOLD = 5


def _known_prefixes() -> Dict[str, str]:
    """Path prefix → framework name, from public SDK knowledge."""
    prefixes: Dict[str, str] = {}
    for sdk in SDK_CATALOG:
        if sdk.code_path_android:
            prefixes[sdk.code_path_android] = sdk.name
            prefixes["smali/" + sdk.code_path_android] = sdk.name
        if sdk.code_path_ios:
            prefixes[sdk.code_path_ios] = sdk.name
    return prefixes


def _attribute_path(path: str, prefixes: Dict[str, str]) -> Optional[str]:
    """Framework owning a path, if any prefix matches."""
    basename = path.rsplit("/", 1)[-1].lower()
    if basename in GENERIC_BASENAMES:
        return None
    best: Optional[str] = None
    best_len = -1
    for prefix, name in prefixes.items():
        if prefix in path and len(prefix) > best_len:
            best = name
            best_len = len(prefix)
    return best


@dataclass
class AttributionResult:
    """Framework attribution across a set of apps.

    Attributes:
        framework_apps: framework → app ids whose findings attribute to it.
        unattributed_paths: recurring paths no prefix explained (the
            candidates a human reviewer would investigate next).
    """

    framework_apps: Dict[str, Set[str]] = field(default_factory=dict)
    unattributed_paths: List[Tuple[str, int]] = field(default_factory=list)

    def framework_counts(self) -> List[Tuple[str, int]]:
        """Table 7 rows: frameworks by number of apps, descending."""
        rows = [(name, len(apps)) for name, apps in self.framework_apps.items()]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows

    def top(self, n: int = 5) -> List[Tuple[str, int]]:
        return self.framework_counts()[:n]


def attribute_findings(
    app_finding_paths: Dict[str, Iterable[str]],
    threshold: int = THIRD_PARTY_THRESHOLD,
) -> AttributionResult:
    """Attribute per-app finding paths to third-party frameworks.

    Args:
        app_finding_paths: app id → paths where certificates/pins were
            found in that app's package.
        threshold: minimum number of apps sharing a path (or framework)
            for third-party attribution — below it, the material is
            presumed first-party.
    """
    prefixes = _known_prefixes()
    result = AttributionResult()

    path_apps: Dict[str, Set[str]] = {}
    for app_id, paths in app_finding_paths.items():
        for path in set(paths):
            path_apps.setdefault(path, set()).add(app_id)

    framework_apps: Dict[str, Set[str]] = {}
    unexplained: Dict[str, int] = {}
    for path, apps in path_apps.items():
        if path.rsplit("/", 1)[-1].lower() in GENERIC_BASENAMES:
            continue  # too generic to mean anything (paper drops these)
        framework = _attribute_path(path, prefixes)
        if framework is not None:
            framework_apps.setdefault(framework, set()).update(apps)
        elif len(apps) > threshold:
            unexplained[path] = len(apps)

    # Keep only frameworks that clear the recurrence bar.
    result.framework_apps = {
        name: apps
        for name, apps in framework_apps.items()
        if len(apps) > threshold
    }
    result.unattributed_paths = sorted(
        unexplained.items(), key=lambda kv: (-kv[1], kv[0])
    )
    return result
