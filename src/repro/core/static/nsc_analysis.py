"""NSC-based static analysis — the prior-work technique (Section 4.1.1).

Extract the AndroidManifest, follow its ``networkSecurityConfig``
reference, parse the config and report whether it uses pin-sets.  Running
this alongside the fuller scans is what lets Table 3 compare "our
methods" against "the method used by prior work" on identical datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.appmodel.filetree import FileTree
from repro.appmodel.manifest import AndroidManifest
from repro.appmodel.nsc import NSCConfig
from repro.errors import AppModelError


@dataclass
class NSCAnalysis:
    """Outcome of the NSC extraction for one Android package.

    Attributes:
        uses_nsc: an NSC file is referenced and present.
        has_pins: at least one ``<pin-set>`` is configured.
        pins: the pin strings found (``shaN/<b64>``).
        misconfigured_override: a ``<certificates overridePins="true">``
            entry neutralises the pins — the Possemato et al.
            misconfiguration.
        domains: pinned domains.
        overridden_domains: the subset of ``domains`` whose pin-set is
            neutralised by an override.
    """

    uses_nsc: bool = False
    has_pins: bool = False
    pins: List[str] = field(default_factory=list)
    misconfigured_override: bool = False
    domains: List[str] = field(default_factory=list)
    overridden_domains: List[str] = field(default_factory=list)


def analyze_nsc(tree: FileTree) -> NSCAnalysis:
    """Run the NSC technique over a decompiled Android package.

    Returns an all-False analysis when the manifest is missing or carries
    no NSC reference; raises nothing for malformed configs (they count as
    unused, as a real pipeline would skip them with a warning).
    """
    manifest_node = tree.get("AndroidManifest.xml")
    if manifest_node is None:
        return NSCAnalysis()
    try:
        manifest = AndroidManifest.from_xml(manifest_node.content)
    except AppModelError:
        return NSCAnalysis()

    resource_path = manifest.nsc_resource_path()
    if not resource_path:
        return NSCAnalysis()
    config_node = tree.get(resource_path)
    if config_node is None:
        return NSCAnalysis()
    try:
        config = NSCConfig.from_xml(config_node.content)
    except AppModelError:
        return NSCAnalysis()

    analysis = NSCAnalysis(uses_nsc=True)
    for dc in config.domain_configs:
        if dc.pins:
            analysis.has_pins = True
            analysis.domains.append(dc.domain)
            analysis.pins.extend(p.as_pin_string() for p in dc.pins)
            if dc.override_pins:
                analysis.misconfigured_override = True
                analysis.overridden_domains.append(dc.domain)
    return analysis
