"""ripgrep/radare2-style content scans (Section 4.1.2).

Three detection channels, exactly as the paper describes:

* files with certificate extensions (``.der .pem .crt .cert .cer``),
  parsed as PEM or base64-DER;
* ``-----BEGIN CERTIFICATE-----`` delimited blobs anywhere in text files;
* SPKI-hash tokens matching ``sha(1|256)/[a-zA-Z0-9+/=]{28,64}`` — the
  28–64 length range spans the digest encodings the paper greps for:
  base64 (28 chars for SHA-1, 44 for SHA-256) and hex (40 and 64), hex
  being a subset of the base64 character class;
* a strings pass over native libraries / Mach-O executables (libradare2
  in the paper) applying the same regexes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Set, Tuple

from repro.appmodel.filetree import FileNode, FileTree
from repro.core import obs
from repro.errors import CertificateError, EncodingError
from repro.pki.certificate import ParsedCertificate, parse_der
from repro.pki.pem import load_pem_certificates
from repro.util.encoding import b64decode

CERT_EXTENSIONS: Tuple[str, ...] = (".der", ".pem", ".crt", ".cert", ".cer")

#: The paper's hash regex, with boundary anchoring.  Unanchored, a pin
#: token embedded in a longer base64 run would match only its first 64
#: characters and surface a truncated (wrong) digest; the lookarounds
#: reject any token whose digest run extends past the match on either
#: side, so only cleanly delimited tokens are reported.  ``=`` stays out
#: of the *lookbehind* class: base64 padding terminates a token, so a
#: ``=`` before ``sha`` is a separator (``pins=sha256/...``), never the
#: tail of a run the token belongs to.
HASH_PATTERN = re.compile(
    r"(?<![a-zA-Z0-9+/])sha(1|256)/[a-zA-Z0-9+/=]{28,64}(?![a-zA-Z0-9+/=])"
)

PEM_DELIMITER_PATTERN = re.compile(r"-----BEGIN CERTIFICATE-----")


@dataclass(frozen=True)
class CertificateFinding:
    """A certificate recovered from a package.

    Attributes:
        path: file path inside the package.
        certificate: parsed view.
        channel: which detection channel found it (``extension``, ``pem``).
    """

    path: str
    certificate: ParsedCertificate
    channel: str


@dataclass(frozen=True)
class PinFinding:
    """An SPKI pin string found in a package."""

    path: str
    pin: str
    channel: str  # "text" or "native-strings"

    @property
    def algorithm(self) -> str:
        return self.pin.split("/", 1)[0]

    @property
    def digest(self) -> str:
        return self.pin.split("/", 1)[1]


@dataclass
class ScanResult:
    """Everything the content scan surfaced for one package."""

    certificates: List[CertificateFinding] = field(default_factory=list)
    pins: List[PinFinding] = field(default_factory=list)

    def has_material(self) -> bool:
        return bool(self.certificates or self.pins)

    def unique_pins(self) -> Set[str]:
        return {f.pin for f in self.pins}

    def finding_paths(self) -> Set[str]:
        return {f.path for f in self.certificates} | {f.path for f in self.pins}


@lru_cache(maxsize=4096)
def _parse_certificate_content(content: str) -> Tuple[ParsedCertificate, ...]:
    """Recover certificates from extension-matched file content.

    PEM-armoured content parses directly; otherwise the content is tried
    as base64 DER (the ``.der``/``.cer`` convention).  Unparseable content
    yields nothing — apps ship all kinds of junk under these extensions.
    Cached on the content string: bundled certificate assets repeat across
    apps (shared SDKs) and across the repeated scans of a study.
    """
    if "-----BEGIN CERTIFICATE-----" in content:
        try:
            return tuple(load_pem_certificates(content))
        except EncodingError:
            return ()
    try:
        decoded = b64decode("".join(content.split()))
    except EncodingError:
        return ()
    # Some ``.cer`` files are base64-wrapped PEM text; others are bare DER.
    try:
        text = decoded.decode("utf-8")
    except UnicodeDecodeError:
        text = ""
    if "-----BEGIN CERTIFICATE-----" in text:
        try:
            return tuple(load_pem_certificates(text))
        except EncodingError:
            return ()
    try:
        return (parse_der(decoded),)
    except CertificateError:
        return ()


obs.register_cache("cert_parse", _parse_certificate_content)


def _parse_certificate_file(node: FileNode) -> List[ParsedCertificate]:
    return list(_parse_certificate_content(node.content))


def scan_tree(tree: FileTree, include_native: bool = True) -> ScanResult:
    """Run all detection channels over a package tree.

    Args:
        tree: decompiled/decrypted package contents.
        include_native: also run the radare2-style strings pass over
            binary files (ablations turn this off).
    """
    result = ScanResult()
    # Dedup on (path, subject, serial) as a tuple — concatenating subject
    # and serial would make ("A", "BC") collide with ("AB", "C") and drop
    # a distinct certificate.
    seen_cert_fingerprints: Set[Tuple[str, str, str]] = set()

    # Channel 1: certificate file extensions.
    for node in tree.with_extensions(CERT_EXTENSIONS):
        for cert in _parse_certificate_file(node):
            key = (node.path, cert.subject, cert.serial)
            if key not in seen_cert_fingerprints:
                seen_cert_fingerprints.add(key)
                result.certificates.append(
                    CertificateFinding(node.path, cert, "extension")
                )

    # Channel 2: PEM delimiters in any text file.
    for node, _ in tree.grep(PEM_DELIMITER_PATTERN, include_binary=False):
        if node.extension in CERT_EXTENSIONS:
            continue  # already covered by channel 1
        try:
            for cert in load_pem_certificates(node.content):
                key = (node.path, cert.subject, cert.serial)
                if key not in seen_cert_fingerprints:
                    seen_cert_fingerprints.add(key)
                    result.certificates.append(
                        CertificateFinding(node.path, cert, "pem")
                    )
        except EncodingError:
            continue

    # Channel 3: SPKI hash tokens in text files.
    seen_pins: Set[Tuple[str, str]] = set()
    for node, match in tree.grep(HASH_PATTERN, include_binary=False):
        key = (node.path, match)
        if key not in seen_pins:
            seen_pins.add(key)
            result.pins.append(PinFinding(node.path, match, "text"))

    # Channel 4: native-binary strings pass (both regexes).
    if include_native:
        for node in tree.walk():
            if not node.binary:
                continue
            for match in HASH_PATTERN.finditer(node.content):
                key = (node.path, match.group(0))
                if key not in seen_pins:
                    seen_pins.add(key)
                    result.pins.append(
                        PinFinding(node.path, match.group(0), "native-strings")
                    )
            if PEM_DELIMITER_PATTERN.search(node.content):
                try:
                    for cert in load_pem_certificates(node.content):
                        key = (node.path, cert.subject, cert.serial)
                        if key not in seen_cert_fingerprints:
                            seen_cert_fingerprints.add(key)
                            result.certificates.append(
                                CertificateFinding(node.path, cert, "native-strings")
                            )
                except EncodingError:
                    pass
    return result
