"""Analysis-side detector ablations over already-captured traffic.

The sweep's ``detector`` axis must not re-run the dynamic pipeline: every
:class:`~repro.core.dynamic.pipeline.DynamicAppResult` already carries the
two raw captures and the exclusion set, so an ablated detector is a pure
re-derivation of the verdict map — which is exactly what makes ablated
sweep points free under a shared result store (they reuse every cached
pipeline unit of their full-detector sibling and only re-detect).

Scope: an ablation rewrites the *detection-derived* views of a study —
per-destination verdicts, and with them prevalence, consistency and
detector scoring.  Circumvention and PII comparisons were measured
against the full detector's pinned sets during execution and are carried
over unchanged; re-measuring them would require re-running pipelines,
defeating the warm-start contract (DESIGN.md §13 records this scope).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import obs
from repro.core.analysis.study import StudyResults
from repro.core.dynamic.detector import (
    DestinationVerdict,
    detect_pinned_destinations,
    naive_detect_pinned_destinations,
)
from repro.core.dynamic.pipeline import DynamicAppResult
from repro.core.sweep.spec import DETECTORS
from repro.corpus.datasets import DatasetKey


def _redetect(result: DynamicAppResult, detector: str) -> DynamicAppResult:
    """One app's result under an ablated detector (captures unchanged)."""
    if detector == "no-tls13":
        verdicts = detect_pinned_destinations(
            result.direct_capture,
            result.mitm_capture,
            result.excluded_destinations,
            tls13_heuristics=False,
        )
    else:  # "naive"
        flagged = naive_detect_pinned_destinations(
            result.mitm_capture, result.excluded_destinations
        )
        # The naive detector returns a bare set; rebuild a verdict map
        # over the same destination universe the differential detector
        # reports so downstream not-pinned accounting stays comparable.
        full = detect_pinned_destinations(
            result.direct_capture,
            result.mitm_capture,
            result.excluded_destinations,
        )
        verdicts = {}
        for destination, verdict in full.items():
            verdicts[destination] = DestinationVerdict(
                destination=destination,
                used_direct=verdict.used_direct,
                mitm_observed=verdict.mitm_observed,
                mitm_all_failed=verdict.mitm_all_failed,
                pinned=destination in flagged,
                excluded=verdict.excluded,
            )
    return DynamicAppResult(
        app_id=result.app_id,
        platform=result.platform,
        verdicts=verdicts,
        direct_capture=result.direct_capture,
        mitm_capture=result.mitm_capture,
        excluded_destinations=result.excluded_destinations,
        reran_with_wait=result.reran_with_wait,
    )


def apply_detector_ablation(results: StudyResults, detector: str) -> StudyResults:
    """Re-derive a study's detection-side views under an ablated detector.

    ``"full"`` returns ``results`` unchanged.  Otherwise a **new**
    :class:`StudyResults` is built — never a mutated copy, because the
    original's memo cache indexes views computed from the original
    verdicts and must stay valid for the caller.
    """
    if detector == "full":
        return results
    if detector not in DETECTORS:
        raise ValueError(
            f"unknown detector ablation {detector!r}; expected one of "
            f"{DETECTORS}"
        )
    with obs.span("sweep.ablation", cat="sweep", detector=detector):
        dynamic: Dict[DatasetKey, List[DynamicAppResult]] = {
            key: [_redetect(result, detector) for result in dataset_results]
            for key, dataset_results in results.dynamic_results.items()
        }
        obs.count(
            "sweep.ablation.redetected",
            sum(len(v) for v in dynamic.values()),
        )
    return StudyResults(
        corpus=results.corpus,
        static_reports=results.static_reports,
        dynamic_results=dynamic,
        circumvention=results.circumvention,
        pii=results.pii,
        failures=results.failures,
        window_s=results.window_s,
        telemetry=results.telemetry,
        audit=results.audit,
    )
