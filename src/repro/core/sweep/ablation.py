"""Analysis-side detector ablations over already-captured traffic.

The sweep's ``detector`` axis must not re-run the dynamic pipeline: every
:class:`~repro.core.dynamic.pipeline.DynamicAppResult` already carries the
two raw captures and the exclusion set, so an ablated detector is a pure
re-derivation of the verdict map — which is exactly what makes ablated
sweep points free under a shared result store (they reuse every cached
pipeline unit of their full-detector sibling and only re-detect).

Since PR 10 this is ordinary stage-graph invalidation
(DESIGN.md §15): the dynamic graph's ``rederive`` walk marks the
``detect`` stage dirty, rebuilds its clean upstream artifacts (captures,
exclusions) from the finished result via the stages' ``derive``
extractors, and recomputes only the dirty suffix — the same invalidation
semantics a ``--detector`` flip triggers through the result store,
applied in-memory.

Scope: an ablation rewrites the *detection-derived* views of a study —
per-destination verdicts, and with them prevalence, consistency and
detector scoring.  Circumvention and PII comparisons were measured
against the full detector's pinned sets during execution and are carried
over unchanged; re-measuring them would require re-running pipelines,
defeating the warm-start contract (DESIGN.md §13 records this scope).
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, List

from repro.core import obs
from repro.core.analysis.study import StudyResults
from repro.core.dynamic.pipeline import DYNAMIC_GRAPH, DynamicAppResult
from repro.core.sweep.spec import DETECTORS
from repro.corpus.datasets import DatasetKey


def _redetect(result: DynamicAppResult, detector: str) -> DynamicAppResult:
    """One app's result under an ablated detector (captures unchanged)."""
    return DYNAMIC_GRAPH.rederive(
        SimpleNamespace(detector=detector),
        seeds={
            "packaged": None,
            "app_id": result.app_id,
            "platform": result.platform,
        },
        result=result,
        dirty={"detect"},
        params={
            "wait": 120.0 if result.reran_with_wait else 0.0,
            "interact": False,
        },
    )


def apply_detector_ablation(results: StudyResults, detector: str) -> StudyResults:
    """Re-derive a study's detection-side views under an ablated detector.

    ``"full"`` returns ``results`` unchanged.  Otherwise a **new**
    :class:`StudyResults` is built — never a mutated copy, because the
    original's memo cache indexes views computed from the original
    verdicts and must stay valid for the caller.
    """
    if detector == "full":
        return results
    if detector not in DETECTORS:
        raise ValueError(
            f"unknown detector ablation {detector!r}; expected one of "
            f"{DETECTORS}"
        )
    with obs.span("sweep.ablation", cat="sweep", detector=detector):
        dynamic: Dict[DatasetKey, List[DynamicAppResult]] = {
            key: [_redetect(result, detector) for result in dataset_results]
            for key, dataset_results in results.dynamic_results.items()
        }
        obs.count(
            "sweep.ablation.redetected",
            sum(len(v) for v in dynamic.values()),
        )
    return StudyResults(
        corpus=results.corpus,
        static_reports=results.static_reports,
        dynamic_results=dynamic,
        circumvention=results.circumvention,
        pii=results.pii,
        failures=results.failures,
        window_s=results.window_s,
        telemetry=results.telemetry,
        audit=results.audit,
    )
