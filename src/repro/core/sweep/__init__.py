"""Scenario sweeps: run a grid of study configurations and compare.

One reproduction run is a point estimate; the sweep layer turns the repo
into a study fleet.  :class:`~repro.core.sweep.spec.SweepSpec` declares a
grid (seeds × scales × fault rates × detector ablations × worker
counts), :class:`~repro.core.sweep.engine.SweepEngine` executes every
point through the ordinary :class:`~repro.core.analysis.Study` machinery
with a shared content-addressed result store (warm-starting points that
differ only in analysis-side knobs), and
:class:`~repro.core.sweep.report.SweepResults` aggregates the headline
findings into cross-seed stability tables plus a schema-validated JSON
report.  Surfaced on the CLI as ``repro sweep``.
"""

from repro.core.sweep.ablation import apply_detector_ablation
from repro.core.sweep.engine import SweepEngine, SweepPointResult
from repro.core.sweep.report import FindingStability, SweepResults
from repro.core.sweep.spec import DETECTORS, SweepPoint, SweepSpec

__all__ = [
    "DETECTORS",
    "FindingStability",
    "SweepEngine",
    "SweepPoint",
    "SweepPointResult",
    "SweepResults",
    "SweepSpec",
    "apply_detector_ablation",
]
