"""The sweep executor: one `Study` run per grid point, shared caching.

:class:`SweepEngine` expands a :class:`~repro.core.sweep.spec.SweepSpec`
and runs each point through the ordinary
:class:`~repro.core.analysis.Study` machinery — same engine, same plans,
same determinism contract — with the sweep-level glue this module owns:

* **Shared result store.**  All non-faulted points run against one
  content-addressed store directory.  Corpus fingerprints already key
  every entry, so seed/scale points coexist safely, and points that
  differ only in analysis-side knobs (detector ablation) or execution
  sharding (worker count) warm-start from their siblings' entries.
  Fault-injected points run store-less: a store hit short-circuits the
  per-app pipeline *before* the injection site, so serving cached
  results would silently turn the fault test into a no-op.
* **Corpus reuse.**  Generation is deterministic per ``(seed, scale)``,
  so the engine builds each corpus once and shares it across the points
  that need it.
* **Telemetry merging.**  Every point runs with its own recorder; after
  the run it is drained into one sweep-level recorder
  (:meth:`~repro.core.obs.Recorder.merge_from`), giving the sweep a
  single merged metrics document alongside optional per-point exports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core import obs
from repro.core.analysis import Study
from repro.core.exec import ExecutionPlan, ResultStore, SeededFaults
from repro.core.sweep.ablation import apply_detector_ablation
from repro.core.sweep.spec import SweepPoint, SweepSpec
from repro.corpus import CorpusConfig, CorpusGenerator


@dataclass
class SweepPointResult:
    """What one executed grid point contributes to the sweep report."""

    point: SweepPoint
    findings: Dict[str, Optional[float]]
    failures: int = 0
    elapsed_s: float = 0.0
    #: Store lookup tallies for this point, or ``None`` when the point
    #: ran store-less (no shared store, or fault injection active).
    store_hits: Optional[int] = None
    store_misses: Optional[int] = None
    #: The audit verdict, or ``None`` when auditing was off.
    audit_passed: Optional[bool] = None

    @property
    def store_hit_rate(self) -> Optional[float]:
        if self.store_hits is None or self.store_misses is None:
            return None
        total = self.store_hits + self.store_misses
        return self.store_hits / total if total else None

    def to_json_dict(self) -> dict:
        store = None
        if self.store_hits is not None:
            store = {
                "hits": self.store_hits,
                "misses": self.store_misses,
                "hit_rate": self.store_hit_rate,
            }
        return {
            "config": self.point.config_dict(),
            "findings": dict(self.findings),
            "failures": self.failures,
            "elapsed_s": self.elapsed_s,
            "store": store,
            "audit_passed": self.audit_passed,
        }


class SweepEngine:
    """Execute a sweep spec point by point.

    Args:
        spec: the grid to expand and run.
        sleep_s: dynamic capture window, shared by every point (it enters
            store fingerprints, so sweeping it would defeat sharing).
        store_dir: optional shared result-store directory.  Cold points
            populate it; warm siblings reuse it (see the module
            docstring for the fault-injection exception).
        resume_dir: optional directory of per-point checkpoint journals
            (``<slug>.journal``); an interrupted sweep re-run picks up
            each point where it stopped.
        audit: ``False``, ``"standard"`` or ``"deep"`` — passed through
            to :meth:`Study.run` for every point.
        fault_seed: seed for the fault-injection predicate of points
            with a non-zero fault rate.
        metrics_dir: optional directory for per-point metrics JSON
            (``point-<index>.json``), written before the point's
            telemetry is merged into the sweep aggregate.
        progress: optional callable for per-point progress lines.
        pool: optional shared :class:`~repro.core.exec.WarmPool` owned
            by the caller (the study service).  Points whose
            configuration is compatible run on it; others fall back to
            their own pools.  Never shut down by the sweep.
        corpora: optional externally owned ``(seed, scale) -> corpus``
            cache to share corpus construction with the caller (the
            service keeps one across jobs); the engine reads and
            populates it in place.
    """

    def __init__(
        self,
        spec: SweepSpec,
        sleep_s: float = 30.0,
        store_dir: Optional[str] = None,
        resume_dir: Optional[str] = None,
        audit: Union[bool, str] = False,
        fault_seed: int = 0,
        metrics_dir: Optional[str] = None,
        progress: Optional[Callable[[str], None]] = None,
        pool=None,
        corpora: Optional[Dict[Tuple[int, float], object]] = None,
    ):
        self.spec = spec
        self.sleep_s = sleep_s
        self.store_dir = store_dir
        self.resume_dir = resume_dir
        self.audit = audit
        self.fault_seed = fault_seed
        self.metrics_dir = metrics_dir
        self.progress = progress or (lambda line: None)
        self.pool = pool
        self._corpora: Dict[Tuple[int, float], object] = corpora if corpora is not None else {}

    def _corpus(self, seed: int, scale: float):
        key = (seed, scale)
        if key not in self._corpora:
            config = CorpusConfig(seed=seed)
            if scale != 1.0:
                config = config.scaled(scale)
            with obs.span("sweep.corpus", cat="sweep", seed=seed, scale=scale):
                self._corpora[key] = CorpusGenerator(config).generate()
        else:
            obs.count("sweep.corpus.reused")
        return self._corpora[key]

    def _run_point(
        self, index: int, point: SweepPoint, sweep_recorder: "obs.Recorder"
    ) -> SweepPointResult:
        corpus = self._corpus(point.seed, point.scale)
        recorder = obs.Recorder()
        faults = (
            SeededFaults(point.fault_rate, seed=self.fault_seed)
            if point.fault_rate > 0
            else None
        )
        store = None
        if self.store_dir is not None and faults is None:
            store = ResultStore(self.store_dir, corpus, sleep_s=self.sleep_s)
        resume = None
        if self.resume_dir is not None:
            os.makedirs(self.resume_dir, exist_ok=True)
            resume = os.path.join(self.resume_dir, f"{point.slug()}.journal")

        study = Study(
            corpus,
            sleep_s=self.sleep_s,
            plan=ExecutionPlan(workers=point.workers),
            fault_predicate=faults,
            pool=self.pool,
        )
        stopwatch = obs.Stopwatch()
        results = study.run(resume=resume, recorder=recorder, store=store, audit=self.audit)
        # Study.run uninstalled the recorder; re-install it so the
        # analysis-side ablation and finding extraction are observed too.
        recorder.install()
        try:
            ablated = apply_detector_ablation(results, point.detector)
            with obs.span("sweep.findings", cat="sweep"):
                findings = ablated.headline_findings()
        finally:
            recorder.uninstall()
        elapsed = stopwatch.elapsed()

        if self.metrics_dir is not None:
            os.makedirs(self.metrics_dir, exist_ok=True)
            recorder.write_metrics(os.path.join(self.metrics_dir, f"point-{index:02d}.json"))
        # The point's recorder dissolves into the sweep aggregate so
        # cross-configuration totals come from one merged document.
        sweep_recorder.merge_from(recorder)

        return SweepPointResult(
            point=point,
            findings=findings,
            failures=len(results.failures),
            elapsed_s=elapsed,
            store_hits=store.stats.unit_hits if store is not None else None,
            store_misses=(
                store.stats.unit_misses if store is not None else None
            ),
            audit_passed=(
                results.audit.passed if results.audit is not None else None
            ),
        )

    def run(self) -> "SweepResults":
        """Run every point; always returns a complete `SweepResults`."""
        from repro.core.sweep.report import SweepResults

        points = self.spec.expand()
        telemetry = obs.Recorder()
        results: List[SweepPointResult] = []
        for index, point in enumerate(points):
            self.progress(f"[{index + 1}/{len(points)}] {point.label()}")
            result = self._run_point(index, point, telemetry)
            results.append(result)
            detail = f"{result.elapsed_s:.1f}s, {result.failures} failure(s)"
            if result.store_hit_rate is not None:
                detail += f", store hit rate {result.store_hit_rate:.0%}"
            self.progress(f"    done in {detail}")
        return SweepResults(spec=self.spec, points=results, telemetry=telemetry)
