"""Declarative sweep grids: which study configurations to run.

A :class:`SweepSpec` names the axes of a scenario matrix — corpus seeds,
corpus scales, fault-injection rates, detector ablations, worker counts —
and :meth:`SweepSpec.expand` turns it into the deterministic list of
:class:`SweepPoint` configurations the engine executes.  Specs come from
CLI flags (``repro sweep --sweep-seeds 2022,2023 ...``) or from a small
JSON/TOML file (:meth:`SweepSpec.load`), so a study fleet is one checked-in
document rather than a hand-rolled shell loop.

Axis semantics:

* ``seeds`` / ``scales`` change the corpus itself — every per-app
  fingerprint differs, so these points never share result-store entries.
* ``detectors`` are *analysis-side* ablations re-run over the captures a
  sibling point already produced (:mod:`repro.core.sweep.ablation`), so
  they share **every** pipeline unit with their full-detector sibling.
* ``workers`` changes only execution sharding; the engine's determinism
  contract makes results identical and fingerprints are worker-agnostic,
  so these points also warm-start fully.
* ``fault_rates`` inject per-app failures; a faulted point runs without
  the shared store (a store hit would bypass the injection site, making
  the fault test vacuous).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

#: The detector ablations a sweep may request (see
#: :func:`repro.core.sweep.ablation.apply_detector_ablation`).
DETECTORS: Tuple[str, ...] = ("full", "no-tls13", "naive")


@dataclass(frozen=True)
class SweepPoint:
    """One fully specified study configuration inside a sweep."""

    seed: int
    scale: float
    fault_rate: float = 0.0
    detector: str = "full"
    workers: Union[int, str] = 1

    def label(self) -> str:
        """Human-readable one-liner for tables and progress output."""
        return (
            f"seed={self.seed} scale={self.scale:g} "
            f"faults={self.fault_rate:g} detector={self.detector} "
            f"workers={self.workers}"
        )

    def slug(self) -> str:
        """Filesystem-safe identifier (per-point journals, metrics files)."""
        return (
            f"seed{self.seed}-scale{self.scale:g}-fault{self.fault_rate:g}"
            f"-{self.detector}-w{self.workers}"
        ).replace(".", "p")

    def group_label(self) -> str:
        """The point's configuration *excluding the seed* — the grouping
        key for cross-seed stability aggregation."""
        return (
            f"scale={self.scale:g} faults={self.fault_rate:g} "
            f"detector={self.detector} workers={self.workers}"
        )

    def config_dict(self) -> dict:
        return {
            "seed": self.seed,
            "scale": self.scale,
            "fault_rate": self.fault_rate,
            "detector": self.detector,
            "workers": self.workers,
        }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid sweep spec: {message}")


@dataclass(frozen=True)
class SweepSpec:
    """The axes of a scenario matrix; expansion is their cross product."""

    seeds: Tuple[int, ...]
    scales: Tuple[float, ...]
    fault_rates: Tuple[float, ...] = (0.0,)
    detectors: Tuple[str, ...] = ("full",)
    workers: Tuple[Union[int, str], ...] = (1,)

    def __post_init__(self):
        _require(len(self.seeds) > 0, "seeds must be non-empty")
        _require(len(self.scales) > 0, "scales must be non-empty")
        _require(len(self.fault_rates) > 0, "fault_rates must be non-empty")
        _require(len(self.detectors) > 0, "detectors must be non-empty")
        _require(len(self.workers) > 0, "workers must be non-empty")
        for seed in self.seeds:
            _require(
                isinstance(seed, int) and not isinstance(seed, bool),
                f"seed {seed!r} is not an integer",
            )
        for scale in self.scales:
            _require(
                isinstance(scale, (int, float)) and scale > 0,
                f"scale {scale!r} is not a positive number",
            )
        for rate in self.fault_rates:
            _require(
                isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0,
                f"fault rate {rate!r} is not in [0, 1]",
            )
        for detector in self.detectors:
            _require(
                detector in DETECTORS,
                f"detector {detector!r} is not one of {DETECTORS}",
            )
        for count in self.workers:
            _require(
                count == "auto"
                or (
                    isinstance(count, int)
                    and not isinstance(count, bool)
                    and count >= 1
                ),
                f"workers {count!r} is not a positive integer or 'auto'",
            )
        # Duplicate axis values would silently run (and aggregate) the
        # same configuration twice, skewing stability statistics.
        for name in ("seeds", "scales", "fault_rates", "detectors", "workers"):
            values = getattr(self, name)
            _require(
                len(set(values)) == len(values),
                f"{name} contains duplicates: {values}",
            )

    def expand(self) -> List[SweepPoint]:
        """The deterministic point list: axes iterate in declaration
        order, seeds varying fastest so cross-seed siblings are adjacent.

        Ordering matters for warm-starting too: for each configuration
        group the ``full`` detector (when listed) runs before its
        ablated siblings, so the siblings find the store populated.
        """
        detectors = sorted(self.detectors, key=lambda d: (d != "full", DETECTORS.index(d)))
        return [
            SweepPoint(
                seed=seed,
                scale=float(scale),
                fault_rate=float(rate),
                detector=detector,
                workers=count,
            )
            for count in self.workers
            for rate in self.fault_rates
            for scale in self.scales
            for detector in detectors
            for seed in self.seeds
        ]

    def axes_dict(self) -> dict:
        return {
            "seeds": list(self.seeds),
            "scales": list(self.scales),
            "fault_rates": list(self.fault_rates),
            "detectors": list(self.detectors),
            "workers": list(self.workers),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Sequence]) -> "SweepSpec":
        """Build a spec from a parsed JSON/TOML mapping (validating)."""
        _require(isinstance(data, dict), "spec document must be a mapping")
        known = {"seeds", "scales", "fault_rates", "detectors", "workers"}
        unknown = set(data) - known
        _require(not unknown, f"unknown keys {sorted(unknown)}")
        _require("seeds" in data, "'seeds' is required")
        _require("scales" in data, "'scales' is required")
        kwargs = {}
        for key in known & set(data):
            value = data[key]
            _require(
                isinstance(value, (list, tuple)),
                f"{key} must be a list, got {type(value).__name__}",
            )
            kwargs[key] = tuple(value)
        return cls(**kwargs)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepSpec":
        """Load a spec from a ``.json`` or ``.toml`` file.

        TOML needs the stdlib ``tomllib`` (Python 3.11+); on older
        interpreters a ``.toml`` spec raises with a pointer to the JSON
        equivalent rather than failing on a missing import.
        """
        path = Path(path)
        if path.suffix == ".toml":
            try:
                import tomllib
            except ImportError:
                raise ValueError(
                    f"{path}: TOML specs need Python 3.11+ (tomllib); "
                    "use the JSON form instead"
                )
            with open(path, "rb") as fh:
                return cls.from_dict(tomllib.load(fh))
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
