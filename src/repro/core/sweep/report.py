"""Sweep aggregation: cross-configuration comparison and stability.

:class:`SweepResults` holds every executed point's headline findings and
derives the comparison artifacts the sweep exists for:

* the **grid table** — one row per point (configuration, failures,
  store reuse, audit verdict);
* the **stability tables** — per finding, per configuration group
  (everything but the seed), the mean / min / max / spread across seeds
  and a flag for findings whose *sign* flips between seeds, the
  robustness failure a single-draw study cannot see;
* a machine-readable JSON document
  (``schemas/sweep_report.schema.json``) for CI and downstream tooling.

"No data" discipline carries through from the study layer: a finding a
configuration could not measure is ``None`` end to end, excluded from
means and spreads, rendered as "—", and reported as ``n_defined <
n_points`` — never collapsed into a fabricated zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import obs
from repro.core.sweep.engine import SweepPointResult
from repro.core.sweep.spec import SweepSpec
from repro.reporting.tables import Table, ratio
from repro.util.stats import mean_or_none

#: Version tag stamped into the sweep-report JSON.
SCHEMA_VERSION = "repro-sweep-v1"


@dataclass
class FindingStability:
    """One finding's behaviour across the seeds of one configuration."""

    finding: str
    group: str
    #: Per-seed values in expansion order; ``None`` where a seed's
    #: configuration had no data for this finding.
    values: List[Optional[float]] = field(default_factory=list)

    @property
    def defined(self) -> List[float]:
        return [v for v in self.values if v is not None]

    @property
    def n_points(self) -> int:
        return len(self.values)

    @property
    def n_defined(self) -> int:
        return len(self.defined)

    @property
    def mean(self) -> Optional[float]:
        return mean_or_none(self.defined)

    @property
    def min(self) -> Optional[float]:
        return min(self.defined) if self.defined else None

    @property
    def max(self) -> Optional[float]:
        return max(self.defined) if self.defined else None

    @property
    def spread(self) -> Optional[float]:
        """Max minus min — the blunt "how much did the draw matter"."""
        if not self.defined:
            return None
        return max(self.defined) - min(self.defined)

    @property
    def sign_flip(self) -> bool:
        """True when the finding is positive under one seed and negative
        under another — its qualitative conclusion is seed-dependent."""
        return bool(self.defined) and min(self.defined) < 0 < max(self.defined)

    def to_json_dict(self) -> dict:
        return {
            "finding": self.finding,
            "config": self.group,
            "n_points": self.n_points,
            "n_defined": self.n_defined,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "spread": self.spread,
            "sign_flip": self.sign_flip,
        }


@dataclass
class SweepResults:
    """Everything a sweep produced, plus the comparison layer."""

    spec: SweepSpec
    points: List[SweepPointResult]
    #: The merged sweep-level recorder (every point's telemetry folded
    #: in), or None for an uninstrumented construction (tests).
    telemetry: Optional["obs.Recorder"] = field(
        default=None, repr=False, compare=False
    )

    # -- aggregation -------------------------------------------------------

    def stability(self) -> List[FindingStability]:
        """Per-finding cross-seed stability, one entry per
        (configuration group, finding); computed on demand."""
        groups: Dict[str, List[SweepPointResult]] = {}
        order: List[str] = []
        for result in self.points:
            key = result.point.group_label()
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(result)

        out: List[FindingStability] = []
        for group in order:
            members = groups[group]
            names: List[str] = []
            seen = set()
            for member in members:
                for name in member.findings:
                    if name not in seen:
                        seen.add(name)
                        names.append(name)
            for name in sorted(names):
                out.append(
                    FindingStability(
                        finding=name,
                        group=group,
                        values=[m.findings.get(name) for m in members],
                    )
                )
        return out

    def sign_flips(self) -> List[FindingStability]:
        """The findings whose conclusions flipped across seeds."""
        return [s for s in self.stability() if s.sign_flip]

    # -- tables ------------------------------------------------------------

    def grid_table(self) -> Table:
        table = Table(
            title="Sweep grid: executed configurations",
            headers=[
                "Point",
                "Configuration",
                "Failures",
                "Store hit rate",
                "Audit",
                "Elapsed (s)",
            ],
        )
        for index, result in enumerate(self.points):
            if result.store_hits is None:
                store = None  # ran store-less -> "—", not a fake 0 %
            else:
                store = (
                    f"{result.store_hit_rate:.0%} "
                    f"({result.store_hits}/"
                    f"{result.store_hits + result.store_misses})"
                    if result.store_hit_rate is not None
                    else "0 lookups"
                )
            audit = (
                None
                if result.audit_passed is None
                else ("PASS" if result.audit_passed else "FAIL")
            )
            table.add_row(
                index,
                result.point.label(),
                result.failures,
                store,
                audit,
                f"{result.elapsed_s:.1f}",
            )
        return table

    def stability_table(self) -> Table:
        """Per-finding stability across seeds, grouped by configuration.

        ``Mean``/``Min``/``Max``/``Spread`` are over the seeds where the
        finding was measured; a finding no seed could measure renders as
        "—" across the board with ``N = 0/k``.
        """
        table = Table(
            title="Cross-seed stability of headline findings",
            headers=[
                "Finding",
                "Configuration",
                "Mean",
                "Min",
                "Max",
                "Spread",
                "N",
                "Sign flip",
            ],
        )
        for entry in self.stability():
            table.add_row(
                entry.finding,
                entry.group,
                ratio(entry.mean, 4),
                ratio(entry.min, 4),
                ratio(entry.max, 4),
                ratio(entry.spread, 4),
                f"{entry.n_defined}/{entry.n_points}",
                "FLIP" if entry.sign_flip else "",
            )
        return table

    def telemetry_table(self) -> Optional[Table]:
        if self.telemetry is None:
            return None
        return self.telemetry.summary_table()

    # -- export ------------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "axes": self.spec.axes_dict(),
            "points": [p.to_json_dict() for p in self.points],
            "stability": [s.to_json_dict() for s in self.stability()],
        }

    def render(self) -> str:
        parts = [self.grid_table().render(), self.stability_table().render()]
        flips = self.sign_flips()
        if flips:
            lines = ["Sign flips (conclusion depends on the seed):"]
            lines.extend(
                f"  {s.finding} [{s.group}]: "
                f"min={s.min:+.4f} max={s.max:+.4f}"
                for s in flips
            )
            parts.append("\n".join(lines))
        return "\n\n".join(parts)
