"""The paper's core contribution: pinning detection and analysis.

* :mod:`repro.core.static` — package-level detection (embedded
  certificates, SPKI hashes, NSC files, third-party attribution).
* :mod:`repro.core.dynamic` — run-time detection via differential traffic
  analysis.
* :mod:`repro.core.circumvent` — Frida-style pinning bypass.
* :mod:`repro.core.pii` — PII detection in decrypted traffic.
* :mod:`repro.core.analysis` — the study orchestrator and every
  table/figure computation.
"""
