"""Table 9 assembly: PII in pinned vs non-pinned traffic (Section 5.5).

Pinned flows come from the circumvention re-runs (only decrypted pinned
traffic is readable); non-pinned flows come from the ordinary MITM runs,
where default validation accepted the proxy certificate.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.circumvent.pipeline import CircumventionResult
from repro.core.dynamic.pipeline import DynamicAppResult
from repro.core.pii.compare import PIIComparison, compare_pii_prevalence
from repro.core.pii.detector import PIIDetector
from repro.device.identifiers import DeviceIdentifiers
from repro.netsim.flow import FlowRecord
from repro.reporting.tables import Table, percent

#: The PII types Table 9 reports per platform, in paper order.
TABLE9_TYPES = ("ad_id", "email", "state", "city", "latitude")


def collect_non_pinned_flows(
    results: Sequence[DynamicAppResult],
) -> List[FlowRecord]:
    """Decrypted MITM flows to destinations that were not pinned."""
    flows: List[FlowRecord] = []
    for result in results:
        pinned = result.pinned_destinations
        excluded = result.excluded_destinations
        for flow in result.mitm_capture:
            if not flow.plaintext_visible or flow.os_initiated:
                continue
            if flow.sni in pinned or flow.sni in excluded:
                continue
            flows.append(flow)
    return flows


def collect_pinned_flows(
    circumventions: Sequence[CircumventionResult],
) -> List[FlowRecord]:
    """Decrypted flows to pinned destinations from the hooked re-runs."""
    flows: List[FlowRecord] = []
    for circ in circumventions:
        flows.extend(circ.decrypted_pinned_flows())
    return flows


def platform_pii_comparison(
    platform: str,
    identifiers: DeviceIdentifiers,
    dynamic_results: Sequence[DynamicAppResult],
    circumventions: Sequence[CircumventionResult],
) -> PIIComparison:
    detector = PIIDetector(identifiers)
    return compare_pii_prevalence(
        platform,
        detector,
        collect_pinned_flows(circumventions),
        collect_non_pinned_flows(dynamic_results),
    )


def pii_table(comparisons: Iterable[PIIComparison]) -> Table:
    table = Table(
        title="Table 9: PII in pinned vs non-pinned TLS connections",
        headers=["Platform", "PII", "Pinned", "Non-Pinned", "Significant (p<0.05)"],
    )
    for comparison in comparisons:
        for pii_type in TABLE9_TYPES:
            row = comparison.row(pii_type)
            # A side with no decrypted flows has no rate — render the
            # no-data dash, not a fabricated 0.00%.
            table.add_row(
                comparison.platform.capitalize(),
                pii_type,
                percent(row.pinned_rate if row.pinned_total else None),
                percent(row.non_pinned_rate if row.non_pinned_total else None),
                "*" if row.significant else "",
            )
    return table
