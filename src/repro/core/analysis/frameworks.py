"""Third-party framework table (Section 5.3.5, Table 7)."""

from __future__ import annotations

from typing import Iterable

from repro.core.static.attribution import AttributionResult
from repro.core.static.pipeline import StaticPipeline
from repro.core.static.report import StaticAppReport
from repro.reporting.tables import Table


def frameworks_table(
    android_reports: Iterable[StaticAppReport],
    ios_reports: Iterable[StaticAppReport],
    top_n: int = 5,
) -> Table:
    """Table 7: top frameworks embedding certificates per platform."""
    table = Table(
        title="Table 7: Top third-party frameworks embedding certificates",
        headers=["Platform", "Framework", "# apps"],
    )
    for platform, reports in (("Android", android_reports), ("iOS", ios_reports)):
        attribution = StaticPipeline.attribute(list(reports))
        for name, count in attribution.top(top_n):
            table.add_row(platform, name, count)
    return table


def attribution_for(
    reports: Iterable[StaticAppReport],
) -> AttributionResult:
    return StaticPipeline.attribute(list(reports))
