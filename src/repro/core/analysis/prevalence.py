"""Pinning-prevalence aggregation (Tables 2 and 3).

Table 3 crosses detection technique × dataset × platform; Table 2 puts
our numbers next to prior work's NSC-only and dynamic-only techniques.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.dynamic.pipeline import DynamicAppResult
from repro.core.static.report import StaticAppReport
from repro.reporting.tables import NO_DATA, Table, percent
from repro.util.stats import proportion_or_none


@dataclass(frozen=True)
class PrevalenceCell:
    """One Table 3 cell: count and rate."""

    count: int
    total: int

    @property
    def rate(self) -> float:
        """Lenient rate (0.0 for an empty dataset); use
        :attr:`rate_or_none` anywhere the value is rendered."""
        return self.count / self.total if self.total else 0.0

    @property
    def rate_or_none(self) -> Optional[float]:
        """Strict rate: ``None`` when there is no data to divide by."""
        return proportion_or_none(self.count, self.total)

    def render(self) -> str:
        """``"12.34% (5)"`` — or :data:`NO_DATA` for an empty dataset,
        which must never read as a measured 0 %."""
        if self.total == 0:
            return NO_DATA
        return f"{percent(self.rate)} ({self.count})"


def dataset_prevalence(
    static_reports: Sequence[StaticAppReport],
    dynamic_results: Sequence[DynamicAppResult],
) -> Dict[str, PrevalenceCell]:
    """The three Table 3 cells for one dataset."""
    total = len(static_reports)
    return {
        "dynamic": PrevalenceCell(
            sum(1 for r in dynamic_results if r.pins()), total
        ),
        "embedded": PrevalenceCell(
            sum(1 for r in static_reports if r.embedded_material), total
        ),
        "nsc": PrevalenceCell(
            sum(1 for r in static_reports if r.nsc_pins), total
        ),
    }


def prevalence_table(
    cells: Dict[Tuple[str, str], Dict[str, PrevalenceCell]],
) -> Table:
    """Render Table 3 from per-dataset cells.

    Args:
        cells: (platform, dataset) → technique → cell.
    """
    table = Table(
        title="Table 3: Certificate pinning prevalence by method and dataset",
        headers=[
            "Dataset",
            "Platform",
            "Dynamic analysis",
            "Embedded Certificates",
            "Configuration Files*",
        ],
    )
    for dataset in ("common", "popular", "random"):
        for platform in ("android", "ios"):
            cell = cells.get((platform, dataset))
            if cell is None:
                continue
            nsc = cell["nsc"].render() if platform == "android" else "-"
            table.add_row(
                dataset.capitalize(),
                platform.capitalize() if platform == "ios" else "Android",
                cell["dynamic"].render(),
                cell["embedded"].render(),
                nsc,
            )
    return table


def prior_work_table(
    cells: Dict[Tuple[str, str], Dict[str, PrevalenceCell]],
) -> Table:
    """Table 2 analogue: prior techniques re-run on our datasets.

    Prior work's headline technique is NSC-based static analysis
    (Possemato et al., Oltrogge et al.); ours adds content scans and the
    differential dynamic method.  The ratio column quantifies the paper's
    "up to 4 times more pinning" claim.
    """
    table = Table(
        title="Table 2 (reprise): prior-work technique vs this work, same datasets",
        headers=[
            "Dataset",
            "Platform",
            "NSC static (prior work)",
            "Dynamic (this work)",
            "Ratio",
        ],
    )
    for dataset in ("common", "popular", "random"):
        for platform in ("android",):
            cell = cells.get((platform, dataset))
            if cell is None:
                continue
            nsc_rate = cell["nsc"].rate
            dyn_rate = cell["dynamic"].rate
            ratio = dyn_rate / nsc_rate if nsc_rate else float("inf")
            table.add_row(
                dataset.capitalize(),
                "Android",
                cell["nsc"].render(),
                cell["dynamic"].render(),
                f"{ratio:.1f}x",
            )
    return table
