"""The end-to-end study orchestrator.

:class:`Study` runs the full measurement over a corpus — static analysis,
the two-setting dynamic experiments (with the Common-iOS re-run),
circumvention and PII analysis — and :class:`StudyResults` exposes one
method per paper table/figure.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core import obs as obs_mod
from repro.core.analysis import categories as categories_mod
from repro.core.analysis import certificates as certificates_mod
from repro.core.analysis import consistency as consistency_mod
from repro.core.analysis import destinations as destinations_mod
from repro.core.analysis import frameworks as frameworks_mod
from repro.core.analysis import pii_analysis as pii_mod
from repro.core.analysis import prevalence as prevalence_mod
from repro.core.analysis import security as security_mod
from repro.core.circumvent.pipeline import (
    CircumventionPipeline,
    CircumventionResult,
)
from repro.core.dynamic.pipeline import DynamicAppResult, DynamicPipeline
from repro.core.exec import (
    ExecutionEngine,
    ExecutionPlan,
    ResultStore,
    StudyCheckpoint,
    UnitFailure,
)
from repro.core.pii.compare import PIIComparison
from repro.core.static.pipeline import StaticPipeline
from repro.core.static.report import StaticAppReport
from repro.corpus.datasets import AppCorpus, DatasetKey
from repro.reporting.tables import Table


@dataclass
class StudyResults:
    """Everything a full study run produced."""

    corpus: AppCorpus
    static_reports: Dict[DatasetKey, List[StaticAppReport]]
    dynamic_results: Dict[DatasetKey, List[DynamicAppResult]]
    circumvention: Dict[str, List[CircumventionResult]]
    pii: Dict[str, PIIComparison]
    #: The error ledger: apps the engine abandoned after retry and
    #: quarantine.  Empty for a trouble-free run; a non-empty ledger means
    #: every other field holds *partial* results that exclude exactly
    #: these apps.
    failures: List[UnitFailure] = field(default_factory=list)
    #: The capture window the run used (``Study.sleep_s``); the audit
    #: layer needs it to derive dynamic ground truth.
    window_s: float = 30.0
    #: The telemetry recorder the run was instrumented with, or None when
    #: telemetry was off.  Excluded from comparison: two runs with the
    #: same inputs produce equal results whether or not either was
    #: observed.
    telemetry: Optional["obs_mod.Recorder"] = field(
        default=None, repr=False, compare=False
    )
    #: The audit report attached by ``Study.run(audit=...)``, or None
    #: when the run was not audited.  Excluded from comparison like the
    #: recorder: auditing never perturbs results.
    audit: Optional[object] = field(default=None, repr=False, compare=False)
    #: Memoized derived views.  Every table method funnels through a small
    #: set of expensive aggregations (prevalence cells, pair
    #: classifications, per-app indexes); rendering all tables repeatedly
    #: must compute each aggregation once.  The inputs above are never
    #: mutated after construction, so the memos cannot go stale.
    _cache: Dict[object, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _memo(self, key, compute):
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    # -- lookup helpers -------------------------------------------------------

    def dynamic_by_app(self, platform: str) -> Dict[str, DynamicAppResult]:
        """Per-app dynamic results for one platform (cached; treat the
        returned dict as read-only — callers share one instance).

        An app sampled into more than one dataset has one result per
        dataset.  Precedence is the sorted dataset order — ``common`` <
        ``popular`` < ``random``, first wins — which keeps the iOS
        Common 120 s re-run results authoritative for pair apps.  Each
        shadowed duplicate bumps the ``study.dynamic_by_app.shadowed``
        counter, and a duplicate whose pinned destinations *differ* from
        the winner's additionally warns: that is a cross-dataset
        measurement inconsistency worth a human look, not just
        redundancy.
        """

        def compute() -> Dict[str, DynamicAppResult]:
            out: Dict[str, DynamicAppResult] = {}
            for (plat, _), results in sorted(self.dynamic_results.items()):
                if plat != platform:
                    continue
                for result in results:
                    winner = out.setdefault(result.app_id, result)
                    if winner is result:
                        continue
                    obs_mod.count("study.dynamic_by_app.shadowed")
                    if winner.pinned_destinations != result.pinned_destinations:
                        warnings.warn(
                            f"dynamic results for {platform} app "
                            f"{result.app_id!r} disagree across datasets: "
                            f"keeping pinned={sorted(winner.pinned_destinations)}, "
                            f"shadowing pinned={sorted(result.pinned_destinations)}",
                            stacklevel=2,
                        )
            return out

        return self._memo(("dynamic_by_app", platform), compute)

    def static_by_app(self, platform: str) -> Dict[str, StaticAppReport]:
        """Per-app static reports for one platform (cached; treat the
        returned dict as read-only — callers share one instance).

        Duplicate-app precedence matches :meth:`dynamic_by_app`:
        sorted dataset order, first occurrence wins.  Shadowed
        duplicates bump ``study.static_by_app.shadowed`` and warn when
        the shadowed report's findings differ from the winner's.
        """

        def compute() -> Dict[str, StaticAppReport]:
            out: Dict[str, StaticAppReport] = {}
            for (plat, _), reports in sorted(self.static_reports.items()):
                if plat != platform:
                    continue
                for report in reports:
                    winner = out.setdefault(report.app_id, report)
                    if winner is report:
                        continue
                    obs_mod.count("study.static_by_app.shadowed")
                    if (
                        bool(winner.embedded_material)
                        != bool(report.embedded_material)
                        or bool(winner.nsc_pins) != bool(report.nsc_pins)
                    ):
                        warnings.warn(
                            f"static reports for {platform} app "
                            f"{report.app_id!r} disagree across datasets: "
                            f"keeping (material={bool(winner.embedded_material)}, "
                            f"nsc={bool(winner.nsc_pins)}), shadowing "
                            f"(material={bool(report.embedded_material)}, "
                            f"nsc={bool(report.nsc_pins)})",
                            stacklevel=2,
                        )
            return out

        return self._memo(("static_by_app", platform), compute)

    def all_dynamic(self, platform: str) -> List[DynamicAppResult]:
        return list(self.dynamic_by_app(platform).values())

    def error_ledger(self) -> List[str]:
        """Human-readable ledger lines, one per abandoned app."""
        return [failure.describe() for failure in self.failures]

    def telemetry_table(self) -> Optional[Table]:
        """Summary of recorded telemetry, or None when the run was not
        instrumented (pass ``recorder=`` to :meth:`Study.run`)."""
        if self.telemetry is None:
            return None
        return self.telemetry.summary_table()

    def pair_classifications(
        self,
    ) -> List[Tuple[str, consistency_mod.ConsistencyClassification]]:
        """Classify every Common pair (Section 5.1); computed once."""

        def compute():
            android_results = {
                r.app_id: r for r in self.dynamic_results[("android", "common")]
            }
            ios_results = {
                r.app_id: r for r in self.dynamic_results[("ios", "common")]
            }
            named = []
            for android_pkg, ios_pkg in self.corpus.common_pairs():
                a = android_results.get(android_pkg.app.app_id)
                i = ios_results.get(ios_pkg.app.app_id)
                if a is None or i is None:
                    continue
                obs = consistency_mod.PairObservation.from_results(a, i)
                named.append(
                    (android_pkg.app.name, consistency_mod.classify_pair(obs))
                )
            return named

        return self._memo("pair_classifications", compute)

    # -- tables -----------------------------------------------------------------

    def _prevalence_cells(self):
        """Per-dataset prevalence aggregation (cached: tables 2 and 3 both
        consume it, and each render must not recompute it)."""

        def compute():
            cells = {}
            for key in self.static_reports:
                cells[key] = prevalence_mod.dataset_prevalence(
                    self.static_reports[key], self.dynamic_results[key]
                )
            return cells

        return self._memo("prevalence_cells", compute)

    def table1(self) -> Table:
        return categories_mod.dataset_category_table(self.corpus)

    def table2(self) -> Table:
        return prevalence_mod.prior_work_table(self._prevalence_cells())

    def table3(self) -> Table:
        return prevalence_mod.prevalence_table(self._prevalence_cells())

    def table4(self) -> Table:
        return categories_mod.category_pinning_table(
            self.corpus, "android", self.dynamic_by_app("android")
        )

    def table5(self) -> Table:
        return categories_mod.category_pinning_table(
            self.corpus, "ios", self.dynamic_by_app("ios")
        )

    def table6(self) -> Table:
        rows = [
            certificates_mod.classify_pinned_destinations(
                self.corpus, platform, self.all_dynamic(platform)
            )
            for platform in ("android", "ios")
        ]
        return certificates_mod.pki_table(rows)

    def table7(self) -> Table:
        return frameworks_mod.frameworks_table(
            self.static_by_app("android").values(),
            self.static_by_app("ios").values(),
        )

    def table8(self) -> Table:
        cells = {
            key: security_mod.analyze_ciphers(results)
            for key, results in self.dynamic_results.items()
        }
        return security_mod.cipher_table(cells)

    def table9(self) -> Table:
        return pii_mod.pii_table(
            [self.pii[p] for p in ("ios", "android") if p in self.pii]
        )

    # -- figures ----------------------------------------------------------------

    def figure2(self) -> Table:
        summary = consistency_mod.summarize_pairs(
            [c for _, c in self.pair_classifications()]
        )
        return consistency_mod.figure2_table(summary)

    def figure3(self) -> Table:
        return consistency_mod.figure3_table(self.pair_classifications())

    def figure4(self) -> Tuple[Table, Table]:
        return consistency_mod.figure4_tables(self.pair_classifications())

    def figure5(self) -> Table:
        return destinations_mod.figure5_table(self.destination_profiles())

    def destination_profiles(self):
        return destinations_mod.build_destination_profiles(
            self.corpus, self.dynamic_results
        )

    def circumvention_rate(self, platform: str) -> float:
        return CircumventionPipeline.destination_bypass_rate(
            self.circumvention.get(platform, [])
        )

    def headline_findings(self) -> Dict[str, Optional[float]]:
        """The paper's headline numbers as one flat scalar map.

        The cross-configuration comparison layer
        (:mod:`repro.core.sweep`) aggregates *these* values across sweep
        points — finding name → value, with ``None`` (not a fabricated
        zero) wherever a configuration produced no data to measure.
        Signed deltas are included deliberately: a finding whose sign
        flips across seeds ("iOS pins more than Android") is the
        instability the stability tables exist to flag.
        """
        from repro.util.stats import mean_or_none, proportion_or_none

        findings: Dict[str, Optional[float]] = {}

        for (platform, dataset), cells in self._prevalence_cells().items():
            for technique in ("dynamic", "embedded", "nsc"):
                if technique == "nsc" and platform != "android":
                    continue  # NSC is an Android-only mechanism
                findings[f"prevalence.{technique}.{platform}.{dataset}"] = (
                    cells[technique].rate_or_none
                )

        classifications = [c for _, c in self.pair_classifications()]
        pinning = [c for c in classifications if c.pins_either]
        findings["consistency.pins_both_rate"] = proportion_or_none(
            sum(1 for c in pinning if c.pins_both), len(pinning)
        )
        findings["consistency.inconsistent_rate"] = proportion_or_none(
            sum(1 for c in pinning if c.verdict == "inconsistent"),
            len(pinning),
        )
        findings["consistency.mean_jaccard"] = mean_or_none(
            [c.jaccard for c in classifications if c.jaccard is not None]
        )

        for platform in ("android", "ios"):
            findings[f"circumvention.{platform}"] = (
                self.circumvention_rate(platform)
                if self.circumvention.get(platform)
                else None
            )

        for platform, comparison in sorted(self.pii.items()):
            measured = [
                row
                for row in comparison.rows
                if row.pinned_total and row.non_pinned_total
            ]
            findings[f"pii.{platform}.rate_delta"] = mean_or_none(
                [row.pinned_rate - row.non_pinned_rate for row in measured]
            )
            tested = [r for r in comparison.rows if r.chi_square is not None]
            findings[f"pii.{platform}.significant_fraction"] = (
                proportion_or_none(
                    sum(1 for r in tested if r.significant), len(tested)
                )
            )

        # Signed cross-platform gaps: a sweep wants to know not just the
        # per-platform rates but whether their ordering is stable.
        for dataset in ("common", "popular", "random"):
            android = findings.get(f"prevalence.dynamic.android.{dataset}")
            ios = findings.get(f"prevalence.dynamic.ios.{dataset}")
            findings[f"delta.dynamic_prevalence.ios_minus_android.{dataset}"] = (
                ios - android if android is not None and ios is not None else None
            )

        return dict(sorted(findings.items()))

    # -- extensions ---------------------------------------------------------------

    def spinner_report(self, platform: str):
        """Stone-et-al-style hostname-verification probe results."""
        from repro.core.analysis.spinner import spinner_scan

        store = (
            self.corpus.stores.android_aosp
            if platform == "android"
            else self.corpus.stores.ios
        )
        return spinner_scan(
            self.corpus, platform, self.all_dynamic(platform), store
        )

    def nsc_misconfig_report(self):
        """Possemato-et-al-style NSC overridePins findings (Android)."""
        from repro.core.analysis.misconfig import find_nsc_misconfigurations

        return find_nsc_misconfigurations(
            list(self.static_by_app("android").values()),
            self.all_dynamic("android"),
        )

    def detection_scores(self):
        """Per-dataset detector precision/recall against ground truth."""
        from repro.core.analysis.scoring import score_destinations

        return {
            key: score_destinations(self.corpus, results)
            for key, results in sorted(self.dynamic_results.items())
        }


class Study:
    """Run the full paper measurement over one corpus.

    Args:
        corpus: the generated app corpus.
        sleep_s: dynamic-run capture window.
        plan: how to shard per-app work across worker processes, and how
            hard to fight per-app failures (retries, quarantine); the
            default plan runs serially.  Results are identical for every
            plan (see :mod:`repro.core.exec`).
        workers: shorthand for ``plan=ExecutionPlan(workers=...)`` — an
            integer pool size, or ``"auto"`` to size the pool to the
            machine and let the cost-aware scheduler fall back to serial
            when the pool cannot win.  Ignored when ``plan`` is given.
        fault_predicate: injectable per-app failure hook for
            fault-tolerance testing (see :mod:`repro.core.exec.faults`).
        pool: optional shared :class:`~repro.core.exec.WarmPool` whose
            lifetime the caller owns (the study service keeps one warm
            across jobs).  Used when compatible with this study's
            configuration, ignored otherwise; never shut down by this
            study.  Results are identical with or without it.
        detector: the dynamic pipeline's detector variant
            (``full`` / ``no-tls13`` / ``naive``) — the ``detect``
            stage's config knob, so under a result store a flip
            invalidates only detection and its downstream while the
            capture stages warm-start.
    """

    def __init__(
        self,
        corpus: AppCorpus,
        sleep_s: float = 30.0,
        plan: Optional[ExecutionPlan] = None,
        fault_predicate=None,
        workers: Optional[Union[int, str]] = None,
        pool=None,
        detector: str = "full",
    ):
        self.corpus = corpus
        if plan is None and workers is not None:
            plan = ExecutionPlan(workers=workers)
        self.plan = plan or ExecutionPlan()
        self.sleep_s = sleep_s
        self.dynamic_pipeline = DynamicPipeline(
            corpus,
            sleep_s=sleep_s,
            fault_predicate=fault_predicate,
            detector=detector,
        )
        self.static_pipeline = StaticPipeline(
            corpus.registry.ctlog, fault_predicate=fault_predicate
        )
        self.circumvention_pipeline = CircumventionPipeline(
            self.dynamic_pipeline, fault_predicate=fault_predicate
        )
        self.engine = ExecutionEngine(
            corpus,
            self.plan,
            sleep_s=sleep_s,
            pipelines=(
                self.static_pipeline,
                self.dynamic_pipeline,
                self.circumvention_pipeline,
            ),
            fault_predicate=fault_predicate,
            pool=pool,
        )

    def _rerun_ids(
        self,
        android: List[DynamicAppResult],
        ios: List[DynamicAppResult],
    ) -> set:
        """Common-iOS apps to re-measure with the 120 s wait (Section 4.5).

        The paper re-ran the Common apps that pinned *on either platform*,
        with a two-minute install-to-launch wait, and used those results
        for the iOS Common numbers.
        """
        android_by_id = {r.app_id: r for r in android}
        ios_by_id = {r.app_id: r for r in ios}
        rerun_ids = set()
        for android_pkg, ios_pkg in self.corpus.common_pairs():
            a = android_by_id.get(android_pkg.app.app_id)
            i = ios_by_id.get(ios_pkg.app.app_id)
            if (a is not None and a.pins()) or (i is not None and i.pins()):
                rerun_ids.add(ios_pkg.app.app_id)
        return rerun_ids

    def run(
        self,
        resume: Optional[str] = None,
        recorder: Optional["obs_mod.Recorder"] = None,
        store=None,
        store_read: bool = True,
        store_write: bool = True,
        audit: Union[bool, str] = False,
    ) -> StudyResults:
        """Execute every pipeline stage; deterministic for a given corpus
        and identical for every execution plan.

        Degrades gracefully: per-app failures are retried, quarantined,
        and — if they persist — recorded in ``StudyResults.failures``
        while every other app's results survive.  The surviving results
        are bit-for-bit what an untroubled run would have produced.

        Args:
            resume: optional checkpoint-journal path.  Completed work
                units are journaled there as the run progresses, and
                units already journaled (by this run's configuration —
                same seed and capture window) are replayed instead of
                recomputed, so an interrupted or partially failed run
                picks up where it left off.
            recorder: optional :class:`repro.core.obs.Recorder`.  When
                given, the run is instrumented — spans, counters and
                cache statistics accumulate in the recorder (worker
                processes included), and the recorder is attached to the
                results as ``StudyResults.telemetry``.  Results are
                bit-for-bit identical with or without a recorder.
            store: optional result-store directory (or a pre-built
                :class:`~repro.core.exec.resultstore.ResultStore`).
                Work units whose per-app results are already stored are
                composed from the store instead of recomputed; completed
                units are published back.  A warm re-run with the same
                configuration recomputes nothing and still produces
                bit-for-bit identical results; any configuration change
                (seed, scale, capture window, code version) changes the
                fingerprints and invalidates cleanly.
            store_read: consult the store before computing (ignored
                without ``store``; ``False`` forces a repopulating run).
            store_write: publish computed results (ignored without
                ``store``).
            audit: run the ground-truth audit over the finished results
                and attach the report as ``StudyResults.audit``.  Pass
                ``True`` (or ``"standard"``) for the oracle + invariant
                pass, or ``"deep"`` to add the serial-re-run determinism
                check.  Auditing reads the results; it never changes
                them.
        """
        checkpoint: Optional[StudyCheckpoint] = None
        if recorder is not None:
            # Must happen before the engine spins up its pool so workers
            # are initialized with telemetry on.
            self.engine.recorder = recorder
            recorder.install()
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(
                store,
                self.corpus,
                sleep_s=self.sleep_s,
                read=store_read,
                write=store_write,
            )
        self.engine.store = store
        if resume is not None:
            checkpoint = StudyCheckpoint(
                resume, self.corpus.seed, self.sleep_s
            ).open()
        try:
            results = self._run(checkpoint)
            results.telemetry = recorder
            if audit:
                from repro.core.verify import audit_study

                level = "standard" if audit is True else audit
                with obs_mod.span("phase.audit", cat="study"):
                    results.audit = audit_study(results, level=level)
            return results
        finally:
            if checkpoint is not None:
                checkpoint.close()
            self.engine.close()
            self.engine.store = None
            if recorder is not None:
                recorder.uninstall()
                self.engine.recorder = None

    def _run(self, checkpoint: Optional[StudyCheckpoint] = None) -> StudyResults:
        corpus = self.corpus
        engine = self.engine
        ledger: List[UnitFailure] = []

        # Phase 1: every static scan and every initial dynamic pass is
        # independent per app — shard them all into one batch.
        units: List = []
        owners: List[Tuple[str, DatasetKey]] = []
        for key in sorted(corpus.datasets):
            indices = range(len(corpus.dataset(*key)))
            for kind in ("static", "dynamic"):
                for unit in engine.units_for(kind, key, indices, 0.0):
                    units.append(unit)
                    owners.append((kind, key))
        with obs_mod.span("phase.static_dynamic", cat="study"):
            outcome = engine.execute_resilient(units, checkpoint)
        ledger.extend(outcome.failures)
        merged: Dict[Tuple[str, DatasetKey], list] = {}
        for owner, unit_result in zip(owners, outcome.unit_results):
            merged.setdefault(owner, []).extend(unit_result)

        static_reports: Dict[DatasetKey, List[StaticAppReport]] = {}
        dynamic_results: Dict[DatasetKey, List[DynamicAppResult]] = {}
        for key in sorted(corpus.datasets):
            static_reports[key] = merged.get(("static", key), [])
            dynamic_results[key] = merged.get(("dynamic", key), [])

        # Phase 2: the Common-iOS re-run, for apps the initial passes
        # found pinning on either platform.
        rerun_ids = self._rerun_ids(
            dynamic_results[("android", "common")],
            dynamic_results[("ios", "common")],
        )
        ios_common = dynamic_results[("ios", "common")]
        rerun_indices = [
            index
            for index, packaged in enumerate(corpus.dataset("ios", "common"))
            if packaged.app.app_id in rerun_ids
        ]
        with obs_mod.span("phase.ios_rerun", cat="study"):
            rerun_outcome = engine.map_dataset_resilient(
                "dynamic", ("ios", "common"), rerun_indices, 120.0, checkpoint
            )
        ledger.extend(rerun_outcome.failures)
        # Replace by app id, not position: with partial phase-1 results
        # the list no longer lines up with dataset indices.  A re-run of
        # an app whose initial pass failed is appended — the re-run is a
        # complete measurement, so this recovers the app.
        position_by_id = {r.app_id: i for i, r in enumerate(ios_common)}
        for result in rerun_outcome.items:
            position = position_by_id.get(result.app_id)
            if position is None:
                ios_common.append(result)
            else:
                ios_common[position] = result

        # Phase 3: circumvention sweeps over every app found pinning.
        # Workers receive only the pinned destination sets, not the full
        # dynamic results.
        circumvention: Dict[str, List[CircumventionResult]] = {
            "android": [],
            "ios": [],
        }
        with obs_mod.span("phase.circumvention", cat="study"):
            for (platform, dataset), results in sorted(
                dynamic_results.items()
            ):
                results_by_id = {r.app_id: r for r in results}
                indices: List[int] = []
                pinned_sets: List[Tuple[str, ...]] = []
                for index, packaged in enumerate(
                    corpus.dataset(platform, dataset)
                ):
                    result = results_by_id.get(packaged.app.app_id)
                    if result is None or not result.pins():
                        continue
                    indices.append(index)
                    pinned_sets.append(
                        tuple(sorted(result.pinned_destinations))
                    )
                circ_outcome = engine.map_dataset_resilient(
                    "circumvent",
                    (platform, dataset),
                    indices,
                    pinned_sets,
                    checkpoint,
                )
                ledger.extend(circ_outcome.failures)
                circumvention[platform].extend(
                    circ for circ in circ_outcome.items if circ is not None
                )

        pii: Dict[str, PIIComparison] = {}
        with obs_mod.span("phase.pii", cat="study"):
            for platform in ("android", "ios"):
                device = (
                    self.dynamic_pipeline.android_device
                    if platform == "android"
                    else self.dynamic_pipeline.ios_device
                )
                all_results = []
                for (plat, _), results in sorted(dynamic_results.items()):
                    if plat == platform:
                        all_results.extend(results)
                pii[platform] = pii_mod.platform_pii_comparison(
                    platform,
                    device.identifiers,
                    all_results,
                    circumvention[platform],
                )

        return StudyResults(
            corpus=corpus,
            static_reports=static_reports,
            dynamic_results=dynamic_results,
            circumvention=circumvention,
            pii=pii,
            failures=ledger,
            window_s=self.sleep_s,
        )
