"""The end-to-end study orchestrator.

:class:`Study` runs the full measurement over a corpus — static analysis,
the two-setting dynamic experiments (with the Common-iOS re-run),
circumvention and PII analysis — and :class:`StudyResults` exposes one
method per paper table/figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.analysis import categories as categories_mod
from repro.core.analysis import certificates as certificates_mod
from repro.core.analysis import consistency as consistency_mod
from repro.core.analysis import destinations as destinations_mod
from repro.core.analysis import frameworks as frameworks_mod
from repro.core.analysis import pii_analysis as pii_mod
from repro.core.analysis import prevalence as prevalence_mod
from repro.core.analysis import security as security_mod
from repro.core.circumvent.pipeline import (
    CircumventionPipeline,
    CircumventionResult,
)
from repro.core.dynamic.pipeline import DynamicAppResult, DynamicPipeline
from repro.core.pii.compare import PIIComparison
from repro.core.static.pipeline import StaticPipeline
from repro.core.static.report import StaticAppReport
from repro.corpus.datasets import AppCorpus, DatasetKey
from repro.reporting.tables import Table


@dataclass
class StudyResults:
    """Everything a full study run produced."""

    corpus: AppCorpus
    static_reports: Dict[DatasetKey, List[StaticAppReport]]
    dynamic_results: Dict[DatasetKey, List[DynamicAppResult]]
    circumvention: Dict[str, List[CircumventionResult]]
    pii: Dict[str, PIIComparison]

    # -- lookup helpers -------------------------------------------------------

    def dynamic_by_app(self, platform: str) -> Dict[str, DynamicAppResult]:
        out: Dict[str, DynamicAppResult] = {}
        for (plat, _), results in sorted(self.dynamic_results.items()):
            if plat != platform:
                continue
            for result in results:
                out.setdefault(result.app_id, result)
        return out

    def static_by_app(self, platform: str) -> Dict[str, StaticAppReport]:
        out: Dict[str, StaticAppReport] = {}
        for (plat, _), reports in sorted(self.static_reports.items()):
            if plat != platform:
                continue
            for report in reports:
                out.setdefault(report.app_id, report)
        return out

    def all_dynamic(self, platform: str) -> List[DynamicAppResult]:
        return list(self.dynamic_by_app(platform).values())

    def pair_classifications(
        self,
    ) -> List[Tuple[str, consistency_mod.ConsistencyClassification]]:
        """Classify every Common pair (Section 5.1)."""
        android_results = {
            r.app_id: r for r in self.dynamic_results[("android", "common")]
        }
        ios_results = {
            r.app_id: r for r in self.dynamic_results[("ios", "common")]
        }
        named = []
        for android_pkg, ios_pkg in self.corpus.common_pairs():
            a = android_results.get(android_pkg.app.app_id)
            i = ios_results.get(ios_pkg.app.app_id)
            if a is None or i is None:
                continue
            obs = consistency_mod.PairObservation.from_results(a, i)
            named.append(
                (android_pkg.app.name, consistency_mod.classify_pair(obs))
            )
        return named

    # -- tables -----------------------------------------------------------------

    def _prevalence_cells(self):
        cells = {}
        for key in self.static_reports:
            cells[key] = prevalence_mod.dataset_prevalence(
                self.static_reports[key], self.dynamic_results[key]
            )
        return cells

    def table1(self) -> Table:
        return categories_mod.dataset_category_table(self.corpus)

    def table2(self) -> Table:
        return prevalence_mod.prior_work_table(self._prevalence_cells())

    def table3(self) -> Table:
        return prevalence_mod.prevalence_table(self._prevalence_cells())

    def table4(self) -> Table:
        return categories_mod.category_pinning_table(
            self.corpus, "android", self.dynamic_by_app("android")
        )

    def table5(self) -> Table:
        return categories_mod.category_pinning_table(
            self.corpus, "ios", self.dynamic_by_app("ios")
        )

    def table6(self) -> Table:
        rows = [
            certificates_mod.classify_pinned_destinations(
                self.corpus, platform, self.all_dynamic(platform)
            )
            for platform in ("android", "ios")
        ]
        return certificates_mod.pki_table(rows)

    def table7(self) -> Table:
        return frameworks_mod.frameworks_table(
            self.static_by_app("android").values(),
            self.static_by_app("ios").values(),
        )

    def table8(self) -> Table:
        cells = {
            key: security_mod.analyze_ciphers(results)
            for key, results in self.dynamic_results.items()
        }
        return security_mod.cipher_table(cells)

    def table9(self) -> Table:
        return pii_mod.pii_table(
            [self.pii[p] for p in ("ios", "android") if p in self.pii]
        )

    # -- figures ----------------------------------------------------------------

    def figure2(self) -> Table:
        summary = consistency_mod.summarize_pairs(
            [c for _, c in self.pair_classifications()]
        )
        return consistency_mod.figure2_table(summary)

    def figure3(self) -> Table:
        return consistency_mod.figure3_table(self.pair_classifications())

    def figure4(self) -> Tuple[Table, Table]:
        return consistency_mod.figure4_tables(self.pair_classifications())

    def figure5(self) -> Table:
        return destinations_mod.figure5_table(self.destination_profiles())

    def destination_profiles(self):
        return destinations_mod.build_destination_profiles(
            self.corpus, self.dynamic_results
        )

    def circumvention_rate(self, platform: str) -> float:
        return CircumventionPipeline.destination_bypass_rate(
            self.circumvention.get(platform, [])
        )

    # -- extensions ---------------------------------------------------------------

    def spinner_report(self, platform: str):
        """Stone-et-al-style hostname-verification probe results."""
        from repro.core.analysis.spinner import spinner_scan

        store = (
            self.corpus.stores.android_aosp
            if platform == "android"
            else self.corpus.stores.ios
        )
        return spinner_scan(
            self.corpus, platform, self.all_dynamic(platform), store
        )

    def nsc_misconfig_report(self):
        """Possemato-et-al-style NSC overridePins findings (Android)."""
        from repro.core.analysis.misconfig import find_nsc_misconfigurations

        return find_nsc_misconfigurations(
            list(self.static_by_app("android").values()),
            self.all_dynamic("android"),
        )

    def detection_scores(self):
        """Per-dataset detector precision/recall against ground truth."""
        from repro.core.analysis.scoring import score_destinations

        return {
            key: score_destinations(self.corpus, results)
            for key, results in sorted(self.dynamic_results.items())
        }


class Study:
    """Run the full paper measurement over one corpus."""

    def __init__(self, corpus: AppCorpus, sleep_s: float = 30.0):
        self.corpus = corpus
        self.dynamic_pipeline = DynamicPipeline(corpus, sleep_s=sleep_s)
        self.static_pipeline = StaticPipeline(corpus.registry.ctlog)
        self.circumvention_pipeline = CircumventionPipeline(self.dynamic_pipeline)

    def _run_common_with_rerun(
        self,
    ) -> Tuple[List[DynamicAppResult], List[DynamicAppResult]]:
        """Initial Common passes plus the Section 4.5 iOS re-run.

        The paper re-ran the 72 Common apps that pinned *on either
        platform*, with a two-minute install-to-launch wait, and used
        those results for the iOS Common numbers.
        """
        android = self.dynamic_pipeline.run_dataset("android", "common")
        ios = self.dynamic_pipeline.run_dataset("ios", "common")

        android_by_id = {r.app_id: r for r in android}
        ios_by_id = {r.app_id: r for r in ios}
        ios_packaged = {
            p.app.app_id: p for p in self.corpus.dataset("ios", "common")
        }

        rerun_ids = set()
        for android_pkg, ios_pkg in self.corpus.common_pairs():
            a = android_by_id.get(android_pkg.app.app_id)
            i = ios_by_id.get(ios_pkg.app.app_id)
            if (a is not None and a.pins()) or (i is not None and i.pins()):
                rerun_ids.add(ios_pkg.app.app_id)

        for index, result in enumerate(ios):
            if result.app_id in rerun_ids:
                ios[index] = self.dynamic_pipeline.run_app(
                    ios_packaged[result.app_id], pre_launch_wait_s=120.0
                )
        return android, ios

    def run(self) -> StudyResults:
        """Execute every pipeline stage; deterministic for a given corpus."""
        corpus = self.corpus

        static_reports: Dict[DatasetKey, List[StaticAppReport]] = {}
        for key, apps in sorted(corpus.datasets.items()):
            static_reports[key] = self.static_pipeline.analyze_dataset(apps)

        dynamic_results: Dict[DatasetKey, List[DynamicAppResult]] = {}
        common_android, common_ios = self._run_common_with_rerun()
        dynamic_results[("android", "common")] = common_android
        dynamic_results[("ios", "common")] = common_ios
        for dataset in ("popular", "random"):
            for platform in ("android", "ios"):
                dynamic_results[(platform, dataset)] = (
                    self.dynamic_pipeline.run_dataset(platform, dataset)
                )

        circumvention: Dict[str, List[CircumventionResult]] = {
            "android": [],
            "ios": [],
        }
        for (platform, dataset), results in sorted(dynamic_results.items()):
            packaged = corpus.dataset(platform, dataset)
            circumvention[platform].extend(
                self.circumvention_pipeline.circumvent_dataset(packaged, results)
            )

        pii: Dict[str, PIIComparison] = {}
        for platform in ("android", "ios"):
            device = (
                self.dynamic_pipeline.android_device
                if platform == "android"
                else self.dynamic_pipeline.ios_device
            )
            all_results = []
            for (plat, _), results in sorted(dynamic_results.items()):
                if plat == platform:
                    all_results.extend(results)
            pii[platform] = pii_mod.platform_pii_comparison(
                platform,
                device.identifiers,
                all_results,
                circumvention[platform],
            )

        return StudyResults(
            corpus=corpus,
            static_reports=static_reports,
            dynamic_results=dynamic_results,
            circumvention=circumvention,
            pii=pii,
        )
