"""Category analyses (Tables 1, 4 and 5).

Table 1 describes the datasets; Tables 4/5 rank categories by pinning
prevalence, normalising per-category pinner counts by per-category app
counts across all of a platform's datasets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.core.dynamic.pipeline import DynamicAppResult
from repro.corpus.datasets import AppCorpus
from repro.reporting.tables import Table, percent


def dataset_category_table(corpus: AppCorpus, top_n: int = 10) -> Table:
    """Table 1: top categories per dataset with shares."""
    table = Table(
        title="Table 1: Top app categories per dataset",
        headers=["Platform", "Dataset", "Rank", "Category", "Share"],
    )
    for (platform, dataset), apps in sorted(corpus.datasets.items()):
        counts = Counter(p.app.category for p in apps)
        total = len(apps)
        for rank, (category, count) in enumerate(counts.most_common(top_n), 1):
            table.add_row(
                platform, dataset, rank, category, percent(count / total, 0)
            )
    return table


@dataclass(frozen=True)
class CategoryPinningRow:
    """One Table 4/5 row."""

    category: str
    popularity_rank: int
    pinning_rate: float
    pinning_apps: int
    total_apps: int


def category_pinning_rows(
    corpus: AppCorpus,
    platform: str,
    dynamic_by_app: Dict[str, DynamicAppResult],
    min_apps: int = 2,
) -> List[CategoryPinningRow]:
    """Per-category pinning prevalence across all of a platform's datasets.

    Args:
        corpus: the generated corpus.
        platform: ``"android"`` or ``"ios"``.
        dynamic_by_app: app id → dynamic result (unique apps).
        min_apps: drop categories with fewer apps than this (tiny-cell
            noise suppression; the paper's top-10 lists implicitly do the
            same).
    """
    apps = corpus.all_apps(platform)
    totals: Counter = Counter(p.app.category for p in apps)
    pinners: Counter = Counter()
    for packaged in apps:
        result = dynamic_by_app.get(packaged.app.app_id)
        if result is not None and result.pins():
            pinners[packaged.app.category] += 1

    popularity = {
        category: rank
        for rank, (category, _) in enumerate(totals.most_common(), 1)
    }
    rows: List[CategoryPinningRow] = []
    for category, total in totals.items():
        if total < min_apps:
            continue
        count = pinners.get(category, 0)
        rows.append(
            CategoryPinningRow(
                category=category,
                popularity_rank=popularity[category],
                pinning_rate=count / total,
                pinning_apps=count,
                total_apps=total,
            )
        )
    rows.sort(key=lambda r: (-r.pinning_rate, r.category))
    return rows


def category_pinning_table(
    corpus: AppCorpus,
    platform: str,
    dynamic_by_app: Dict[str, DynamicAppResult],
    top_n: int = 10,
) -> Table:
    """Tables 4/5: top-N pinning categories for a platform."""
    number = "4" if platform == "android" else "5"
    table = Table(
        title=(
            f"Table {number}: Top categories of pinning apps on "
            f"{platform} (all datasets)"
        ),
        headers=["Category (Rank)", "Pinning %", "No. of Apps"],
    )
    for row in category_pinning_rows(corpus, platform, dynamic_by_app)[:top_n]:
        if row.pinning_apps == 0:
            continue
        table.add_row(
            f"{row.category} ({row.popularity_rank})",
            percent(row.pinning_rate),
            row.pinning_apps,
        )
    return table
