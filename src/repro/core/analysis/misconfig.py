"""NSC misconfiguration analysis (Possemato et al., USENIX Sec'20).

Prior work found Network Security Configurations where a pin-set is
declared but neutralised by a ``<certificates overridePins="true">``
trust-anchor entry — the pins look like protection in static analysis yet
enforce nothing.  This module counts those cases and cross-checks them
against dynamic results: a correctly implemented pipeline should see the
overridden domains as *unpinned* at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.dynamic.pipeline import DynamicAppResult
from repro.core.static.report import StaticAppReport
from repro.reporting.tables import Table


@dataclass
class MisconfigFinding:
    """One app with an overridden pin-set."""

    app_id: str
    pinned_domains_declared: List[str]
    enforced_at_runtime: Optional[bool] = None


@dataclass
class MisconfigReport:
    """NSC misconfiguration summary."""

    apps_with_nsc_pins: int = 0
    misconfigured: List[MisconfigFinding] = field(default_factory=list)

    @property
    def misconfigured_count(self) -> int:
        return len(self.misconfigured)

    @property
    def misconfiguration_rate(self) -> float:
        if not self.apps_with_nsc_pins:
            return 0.0
        return self.misconfigured_count / self.apps_with_nsc_pins


def find_nsc_misconfigurations(
    static_reports: Sequence[StaticAppReport],
    dynamic_results: Optional[Sequence[DynamicAppResult]] = None,
) -> MisconfigReport:
    """Scan static reports for overridden pin-sets.

    Args:
        static_reports: per-app static results (Android).
        dynamic_results: optional matching dynamic results; when given,
            each finding records whether *any* declared NSC domain was
            actually enforced (detected pinned) at run time.
    """
    dynamic_by_app: Dict[str, DynamicAppResult] = {}
    if dynamic_results:
        dynamic_by_app = {r.app_id: r for r in dynamic_results}

    report = MisconfigReport()
    for static in static_reports:
        if not static.nsc.has_pins:
            continue
        report.apps_with_nsc_pins += 1
        if not static.nsc.misconfigured_override:
            continue
        finding = MisconfigFinding(
            app_id=static.app_id,
            pinned_domains_declared=list(static.nsc.overridden_domains),
        )
        dynamic = dynamic_by_app.get(static.app_id)
        if dynamic is not None:
            finding.enforced_at_runtime = bool(
                set(finding.pinned_domains_declared)
                & dynamic.pinned_destinations
            )
        report.misconfigured.append(finding)
    return report


def misconfig_table(report: MisconfigReport) -> Table:
    table = Table(
        title="NSC pin-sets neutralised by overridePins (Possemato et al.)",
        headers=["Apps with NSC pins", "Misconfigured", "Rate"],
    )
    table.add_row(
        report.apps_with_nsc_pins,
        report.misconfigured_count,
        f"{report.misconfiguration_rate:.1%}",
    )
    return table
