"""Cross-platform pinning consistency (Section 5.1, Figures 2–4).

For each Common pair, compare the pinned and not-pinned destination sets
observed on each platform:

* **consistent** — at least one common pinned domain, and no domain
  pinned on one platform observed unpinned on the other;
* **inconsistent** — some domain pinned on one platform appears unpinned
  on the other;
* **inconclusive** — the pinned domains of each platform were never
  observed on the other at all.

Figure 3's per-app numbers — Jaccard overlap of the two pinned sets, and
each direction's "% of pinned domains unpinned on the other platform" —
are computed here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.dynamic.pipeline import DynamicAppResult
from repro.reporting.tables import Table, percent, ratio
from repro.util.stats import jaccard_index


@dataclass
class PairObservation:
    """The four observed sets for one Common pair."""

    android_pinned: Set[str]
    android_unpinned: Set[str]
    ios_pinned: Set[str]
    ios_unpinned: Set[str]

    @classmethod
    def from_results(
        cls, android: DynamicAppResult, ios: DynamicAppResult
    ) -> "PairObservation":
        return cls(
            android_pinned=set(android.pinned_destinations),
            android_unpinned=set(android.not_pinned_destinations),
            ios_pinned=set(ios.pinned_destinations),
            ios_unpinned=set(ios.not_pinned_destinations),
        )


@dataclass
class ConsistencyClassification:
    """Verdict plus the Figure 3/4 numbers for one pair.

    Attributes:
        pins_android / pins_ios: whether each side pinned at all.
        verdict: ``consistent`` / ``inconsistent`` / ``inconclusive`` /
            ``none``.
        jaccard: overlap of the two pinned sets; ``None`` (no data)
            unless both platforms pin — a pair with one empty pinned set
            has no overlap to measure, and rendering a fabricated
            ``0.00`` would read as a measured disjointness.
        android_cross_unpinned: fraction of Android-pinned domains seen
            unpinned on iOS; ``None`` when Android pinned nothing (an
            empty denominator is not a measured 0 %).
        ios_cross_unpinned: fraction of iOS-pinned domains seen unpinned
            on Android; ``None`` when iOS pinned nothing.
        identical_sets: both platforms pin exactly the same set.
    """

    pins_android: bool
    pins_ios: bool
    verdict: str
    jaccard: Optional[float] = None
    android_cross_unpinned: Optional[float] = None
    ios_cross_unpinned: Optional[float] = None
    identical_sets: bool = False

    @property
    def pins_both(self) -> bool:
        return self.pins_android and self.pins_ios

    @property
    def pins_either(self) -> bool:
        return self.pins_android or self.pins_ios


def classify_pair(obs: PairObservation) -> ConsistencyClassification:
    """Classify one Common pair per the Section 5.1 definitions."""
    pins_android = bool(obs.android_pinned)
    pins_ios = bool(obs.ios_pinned)

    # An empty pinned set has no cross-unpinned fraction: None (no data),
    # never a fabricated 0.0 that downstream tables would print as a
    # measured 0 %.
    android_cross = (
        len(obs.android_pinned & obs.ios_unpinned) / len(obs.android_pinned)
        if obs.android_pinned
        else None
    )
    ios_cross = (
        len(obs.ios_pinned & obs.android_unpinned) / len(obs.ios_pinned)
        if obs.ios_pinned
        else None
    )

    if not pins_android and not pins_ios:
        return ConsistencyClassification(False, False, "none")

    inconsistent = (android_cross or 0.0) > 0 or (ios_cross or 0.0) > 0
    jaccard = (
        jaccard_index(obs.android_pinned, obs.ios_pinned)
        if (pins_android and pins_ios)
        else None
    )
    common_pinned = obs.android_pinned & obs.ios_pinned

    if inconsistent:
        verdict = "inconsistent"
    elif pins_android and pins_ios and common_pinned:
        verdict = "consistent"
    else:
        # Pinned domains never observed on the other platform (or no
        # common pinned domain): cannot conclude either way.
        verdict = "inconclusive"

    return ConsistencyClassification(
        pins_android=pins_android,
        pins_ios=pins_ios,
        verdict=verdict,
        jaccard=jaccard,
        android_cross_unpinned=android_cross,
        ios_cross_unpinned=ios_cross,
        identical_sets=(
            pins_android
            and pins_ios
            and obs.android_pinned == obs.ios_pinned
        ),
    )


@dataclass
class ConsistencySummary:
    """Figure 2's aggregate view of the Common dataset."""

    total_pinning_either: int = 0
    pins_both: int = 0
    android_only: int = 0
    ios_only: int = 0
    both_consistent: int = 0
    both_identical: int = 0
    both_inconsistent: int = 0
    both_inconclusive: int = 0
    android_only_inconsistent: int = 0
    android_only_inconclusive: int = 0
    ios_only_inconsistent: int = 0
    ios_only_inconclusive: int = 0


def summarize_pairs(
    classifications: List[ConsistencyClassification],
) -> ConsistencySummary:
    """Aggregate pair classifications into the Figure 2 counts."""
    summary = ConsistencySummary()
    for c in classifications:
        if not c.pins_either:
            continue
        summary.total_pinning_either += 1
        if c.pins_both:
            summary.pins_both += 1
            if c.verdict == "consistent":
                summary.both_consistent += 1
                if c.identical_sets:
                    summary.both_identical += 1
            elif c.verdict == "inconsistent":
                summary.both_inconsistent += 1
            else:
                summary.both_inconclusive += 1
        elif c.pins_android:
            summary.android_only += 1
            if c.verdict == "inconsistent":
                summary.android_only_inconsistent += 1
            else:
                summary.android_only_inconclusive += 1
        else:
            summary.ios_only += 1
            if c.verdict == "inconsistent":
                summary.ios_only_inconsistent += 1
            else:
                summary.ios_only_inconclusive += 1
    return summary


def figure2_table(summary: ConsistencySummary) -> Table:
    table = Table(
        title="Figure 2: Pinning consistency in the Common dataset",
        headers=["Group", "Count"],
    )
    table.add_row("Apps pinning on either platform", summary.total_pinning_either)
    table.add_row("Pin on both platforms", summary.pins_both)
    table.add_row("  consistent", summary.both_consistent)
    table.add_row("    identical pinned sets", summary.both_identical)
    table.add_row("  inconsistent", summary.both_inconsistent)
    table.add_row("  inconclusive", summary.both_inconclusive)
    table.add_row("Pin only on Android", summary.android_only)
    table.add_row("  inconsistent", summary.android_only_inconsistent)
    table.add_row("  inconclusive", summary.android_only_inconclusive)
    table.add_row("Pin only on iOS", summary.ios_only)
    table.add_row("  inconsistent", summary.ios_only_inconsistent)
    table.add_row("  inconclusive", summary.ios_only_inconclusive)
    return table


def figure3_table(
    named: List[Tuple[str, ConsistencyClassification]],
) -> Table:
    """Figure 3: both-platform inconsistent apps' heat-map values."""
    table = Table(
        title="Figure 3: Inconsistent pinning in apps that pin on both platforms",
        headers=[
            "App",
            "Pinned overlap (Jaccard)",
            "% Android-pinned unpinned on iOS",
            "% iOS-pinned unpinned on Android",
        ],
    )
    for name, c in named:
        if c.pins_both and c.verdict == "inconsistent":
            table.add_row(
                name,
                ratio(c.jaccard),
                percent(c.android_cross_unpinned, 0),
                percent(c.ios_cross_unpinned, 0),
            )
    return table


def figure4_tables(
    named: List[Tuple[str, ConsistencyClassification]],
) -> Tuple[Table, Table]:
    """Figure 4: exclusive-platform pinners' cross-unpinned percentages."""
    android = Table(
        title="Figure 4a: Apps pinning exclusively on Android",
        headers=["App", "% pinned domains unpinned on iOS", "Verdict"],
    )
    ios = Table(
        title="Figure 4b: Apps pinning exclusively on iOS",
        headers=["App", "% pinned domains unpinned on Android", "Verdict"],
    )
    for name, c in named:
        if c.pins_android and not c.pins_ios:
            android.add_row(
                name, percent(c.android_cross_unpinned, 0), c.verdict
            )
        elif c.pins_ios and not c.pins_android:
            ios.add_row(name, percent(c.ios_cross_unpinned, 0), c.verdict)
    return android, ios
