"""Spinner-style hostname-verification probing (Stone et al., ACSAC'17).

The paper's §2.2 builds on Stone et al., who detected pinned connections
that fail to validate certificate *hostnames*: an app that pins a CA but
skips hostname verification accepts any certificate that CA issues —
including one the attacker legitimately bought for their own domain.

The probe: for each pinned destination whose chain anchors in the default
PKI, obtain a certificate for an attacker-controlled hostname from the
same issuing CA and ask the app's validation policy to evaluate it for
the pinned destination.  Acceptance ⇒ vulnerable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.dynamic.pipeline import DynamicAppResult
from repro.corpus.datasets import AppCorpus
from repro.pki.chain import CertificateChain
from repro.pki.store import RootStore
from repro.reporting.tables import Table
from repro.util.simtime import STUDY_START

ATTACKER_HOSTNAME = "attacker-controlled.example"


@dataclass(frozen=True)
class SpinnerFinding:
    """One probed (app, destination) pair."""

    app_id: str
    destination: str
    vulnerable: bool
    reason: str  # "accepted_probe" / "rejected" / "not_probeable"


def build_probe_chain(
    corpus: AppCorpus, destination: str
) -> Optional[CertificateChain]:
    """A chain for the attacker hostname, issued by the destination's CA.

    Returns None when no probe is possible: the destination is unknown,
    self-signed, or runs a PKI the attacker cannot obtain issuance from
    (custom roots).
    """
    if not corpus.registry.knows(destination):
        return None
    endpoint = corpus.registry.resolve(destination)
    chain = endpoint.chain
    if len(chain) < 2 or endpoint.pki_kind != "default":
        return None
    issuer = corpus.hierarchy.authority_for_certificate(chain.certificates[1])
    if issuer is None:
        return None
    probe_leaf, _ = issuer.issue(
        ATTACKER_HOSTNAME,
        san=(ATTACKER_HOSTNAME,),
        not_before=STUDY_START.plus_days(-1),
    )
    return CertificateChain((probe_leaf,) + chain.certificates[1:])


def probe_app(
    corpus: AppCorpus,
    result: DynamicAppResult,
    device_store: RootStore,
) -> List[SpinnerFinding]:
    """Probe every pinned destination of one app."""
    app = corpus.find_app(result.app_id).app
    policy = app.runtime_policy(device_store)
    findings: List[SpinnerFinding] = []
    for destination in sorted(result.pinned_destinations):
        probe = build_probe_chain(corpus, destination)
        if probe is None:
            findings.append(
                SpinnerFinding(result.app_id, destination, False, "not_probeable")
            )
            continue
        accepted = policy.accepts(probe, destination, STUDY_START)
        findings.append(
            SpinnerFinding(
                result.app_id,
                destination,
                accepted,
                "accepted_probe" if accepted else "rejected",
            )
        )
    return findings


@dataclass
class SpinnerReport:
    """Aggregate probe outcome for one platform."""

    platform: str
    findings: List[SpinnerFinding] = field(default_factory=list)

    @property
    def probed(self) -> int:
        return sum(1 for f in self.findings if f.reason != "not_probeable")

    @property
    def vulnerable(self) -> int:
        return sum(1 for f in self.findings if f.vulnerable)

    def vulnerable_apps(self) -> List[str]:
        return sorted({f.app_id for f in self.findings if f.vulnerable})

    @property
    def vulnerability_rate(self) -> float:
        return self.vulnerable / self.probed if self.probed else 0.0


def spinner_scan(
    corpus: AppCorpus,
    platform: str,
    results: Sequence[DynamicAppResult],
    device_store: RootStore,
) -> SpinnerReport:
    """Run the probe over every pinning app in a result set."""
    report = SpinnerReport(platform=platform)
    for result in results:
        if not result.pins():
            continue
        report.findings.extend(probe_app(corpus, result, device_store))
    return report


def spinner_table(reports: Iterable[SpinnerReport]) -> Table:
    table = Table(
        title=(
            "Spinner probe: pinned destinations accepting same-CA "
            "certificates for other hostnames"
        ),
        headers=["Platform", "Probed", "Vulnerable", "Rate", "Apps affected"],
    )
    for report in reports:
        table.add_row(
            report.platform.capitalize(),
            report.probed,
            report.vulnerable,
            f"{report.vulnerability_rate:.1%}",
            len(report.vulnerable_apps()),
        )
    return table
