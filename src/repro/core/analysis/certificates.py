"""Certificate-level analyses (Section 5.3, Table 6).

Four questions about how pinning is implemented:

* **PKI type** (Table 6) — validate the chain served at every pinned
  destination against the Mozilla store (OpenSSL-style); default PKI vs
  custom, plus the self-signed oddities and their validity periods.
* **Root vs leaf** (Section 5.3.2) — for pins where a statically found
  certificate matches a dynamically observed chain (by Common Name),
  which chain position is pinned.
* **SPKI vs whole certificate** (Section 5.3.3) — of the leaf pins, how
  many are key pins (surviving renewals) vs raw certificates.
* **Validation subversion** (Section 5.3.4) — expired-but-accepted
  certificates at pinned destinations (the paper found none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.core.dynamic.pipeline import DynamicAppResult
from repro.core.static.report import StaticAppReport
from repro.corpus.datasets import AppCorpus
from repro.pki.store import RootStore
from repro.pki.validation import classify_pki
from repro.reporting.tables import Table
from repro.util.simtime import STUDY_START, Timestamp


@dataclass
class PKIClassification:
    """Table 6 counts for one platform."""

    platform: str
    default_pki: int = 0
    custom_pki: int = 0
    self_signed: int = 0
    unavailable: int = 0

    def add(self, kind: str) -> None:
        if kind == "default":
            self.default_pki += 1
        elif kind == "custom":
            self.custom_pki += 1
        elif kind == "self-signed":
            self.self_signed += 1
        else:
            self.unavailable += 1


def classify_pinned_destinations(
    corpus: AppCorpus,
    platform: str,
    results: Sequence[DynamicAppResult],
    mozilla: Optional[RootStore] = None,
    at_time: Timestamp = STUDY_START,
) -> PKIClassification:
    """Classify the PKI behind every unique pinned destination."""
    mozilla = mozilla or corpus.stores.mozilla
    out = PKIClassification(platform=platform)
    seen: Set[str] = set()
    for result in results:
        for destination in result.pinned_destinations:
            if destination in seen:
                continue
            seen.add(destination)
            if not corpus.registry.knows(destination):
                out.add("unavailable")
                continue
            chain = corpus.registry.resolve(destination).chain
            if chain.is_single_self_signed():
                out.add("self-signed")
                continue
            out.add(classify_pki(chain, mozilla, at_time))
    return out


def pki_table(rows: Sequence[PKIClassification]) -> Table:
    table = Table(
        title="Table 6: PKI type at pinned destinations",
        headers=["Platform", "Default PKI", "Custom PKI", "Self-signed"],
    )
    for row in rows:
        table.add_row(
            row.platform.capitalize(),
            row.default_pki,
            row.custom_pki,
            row.self_signed,
        )
    return table


@dataclass
class PinPositionAnalysis:
    """Section 5.3.2/5.3.3 counts."""

    matched_apps: int = 0
    ca_pins: int = 0
    leaf_pins: int = 0
    leaf_spki_pins: int = 0
    leaf_raw_certificates: int = 0

    @property
    def ca_fraction(self) -> float:
        total = self.ca_pins + self.leaf_pins
        return self.ca_pins / total if total else 0.0


def _static_cert_cns(report: StaticAppReport) -> Set[str]:
    """CNs of certificates the static pass surfaced (raw + CT-resolved)."""
    cns = {f.certificate.common_name for f in report.scan.certificates}
    for cert in report.ct.certificates():
        cns.add(cert.subject.common_name)
    return cns


def analyze_pin_positions(
    corpus: AppCorpus,
    static_by_app: Dict[str, StaticAppReport],
    results: Sequence[DynamicAppResult],
) -> PinPositionAnalysis:
    """Match static certificates against dynamic chains by Common Name.

    For each app with at least one match, count which chain positions the
    matched certificates occupy (CA vs leaf), and for leaf matches,
    whether the pin was an SPKI digest or a raw certificate.
    """
    analysis = PinPositionAnalysis()
    for result in results:
        report = static_by_app.get(result.app_id)
        if report is None or not result.pins():
            continue
        static_cns = _static_cert_cns(report)
        if not static_cns:
            continue
        # Each certificate is counted once per app (CA certificates recur
        # across that app's pinned destinations).
        matched: Dict[str, object] = {}
        for destination in result.pinned_destinations:
            if not corpus.registry.knows(destination):
                continue
            chain = corpus.registry.resolve(destination).chain
            for cert in chain:
                cn = cert.subject.common_name
                if cn in static_cns and cn not in matched:
                    matched[cn] = cert
        if not matched:
            continue
        analysis.matched_apps += 1
        for cert in matched.values():
            if cert.is_ca:
                analysis.ca_pins += 1
            else:
                analysis.leaf_pins += 1
                # Pin form: did the package carry the key digest or the
                # whole certificate?
                pin = cert.spki_pin()
                if pin in report.all_pin_strings():
                    analysis.leaf_spki_pins += 1
                else:
                    analysis.leaf_raw_certificates += 1
    return analysis


@dataclass
class ExpiryCheck:
    """Section 5.3.4: certificates served at pinned destinations that are
    expired yet accepted."""

    checked_destinations: int = 0
    expired_accepted: int = 0


def check_validation_subversion(
    corpus: AppCorpus,
    results: Sequence[DynamicAppResult],
    at_time: Timestamp = STUDY_START,
) -> ExpiryCheck:
    """Look for expired certificates at destinations whose connections
    succeeded (direct setting) — evidence of disabled standard checks."""
    check = ExpiryCheck()
    seen: Set[str] = set()
    for result in results:
        for destination in result.pinned_destinations:
            if destination in seen or not corpus.registry.knows(destination):
                continue
            seen.add(destination)
            check.checked_destinations += 1
            chain = corpus.registry.resolve(destination).chain
            if any(cert.is_expired(at_time) for cert in chain):
                check.expired_accepted += 1
    return check


def self_signed_validity_years(
    corpus: AppCorpus, results: Sequence[DynamicAppResult]
) -> List[float]:
    """Validity periods of self-signed certificates at pinned destinations
    (the paper found 27- and 10-year examples)."""
    years: List[float] = []
    seen: Set[str] = set()
    for result in results:
        for destination in result.pinned_destinations:
            if destination in seen or not corpus.registry.knows(destination):
                continue
            seen.add(destination)
            chain = corpus.registry.resolve(destination).chain
            if chain.is_single_self_signed():
                years.append(chain.leaf.validity_years())
    return sorted(years, reverse=True)
