"""Detector scoring against corpus ground truth.

The original study had no ground truth — it could only argue its detector
was a lower bound.  The simulation knows exactly which destinations each
app pins, so detector quality is measurable.  This module is the public
API for that: per-destination and per-app precision/recall for any set of
dynamic results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

from repro.core.dynamic.pipeline import DynamicAppResult
from repro.corpus.datasets import AppCorpus


@dataclass
class DetectionScore:
    """Confusion counts plus derived metrics."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def add(self, truth: Set[str], detected: Set[str]) -> None:
        self.true_positives += len(truth & detected)
        self.false_positives += len(detected - truth)
        self.false_negatives += len(truth - detected)


def ground_truth_pinned(
    corpus: AppCorpus, app_id: str, window_s: float = 30.0
) -> Set[str]:
    """Destinations an app pins *and* contacts inside the capture window.

    Pinned domains the app never contacts during the test are invisible to
    any dynamic method and are excluded from scoring (the paper's "partial
    observation" limitation, Section 5.6).
    """
    app = corpus.find_app(app_id).app
    return {
        u.hostname
        for u in app.behavior.usages_within(window_s)
        if app.pins_domain(u.hostname)
    }


def score_destinations(
    corpus: AppCorpus,
    results: Iterable[DynamicAppResult],
    window_s: float = 30.0,
) -> DetectionScore:
    """Destination-level score over a set of dynamic results."""
    score = DetectionScore()
    for result in results:
        truth = ground_truth_pinned(corpus, result.app_id, window_s)
        score.add(truth, set(result.pinned_destinations))
    return score


def score_apps(
    corpus: AppCorpus, results: Iterable[DynamicAppResult]
) -> DetectionScore:
    """App-level score: does the app pin at all?"""
    score = DetectionScore()
    for result in results:
        pins_truth = corpus.find_app(result.app_id).app.pins_at_runtime()
        pins_detected = result.pins()
        if pins_truth and pins_detected:
            score.true_positives += 1
        elif pins_detected and not pins_truth:
            score.false_positives += 1
        elif pins_truth and not pins_detected:
            score.false_negatives += 1
    return score
