"""Pinned-destination structure (Section 5.2, Figure 5).

For every pinning app in the Popular and Random sets, split the contacted
destinations four ways: pinned/not-pinned × first/third party.  Party
attribution uses the whois-style directory with the served certificate's
subject organisation as fallback — the paper's "various points of
information".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.dynamic.pipeline import DynamicAppResult
from repro.corpus.datasets import AppCorpus
from repro.reporting.tables import Table, percent


@dataclass
class AppDestinationProfile:
    """One Figure 5 bar."""

    app_id: str
    platform: str
    dataset: str
    pinned_first: int = 0
    pinned_third: int = 0
    unpinned_first: int = 0
    unpinned_third: int = 0

    @property
    def total(self) -> int:
        return (
            self.pinned_first
            + self.pinned_third
            + self.unpinned_first
            + self.unpinned_third
        )

    @property
    def pinned_fraction(self) -> float:
        return (
            (self.pinned_first + self.pinned_third) / self.total
            if self.total
            else 0.0
        )

    def pins_all_contacted(self) -> bool:
        return self.total > 0 and self.unpinned_first + self.unpinned_third == 0

    def pins_all_first_party(self) -> bool:
        contacted_first = self.pinned_first + self.unpinned_first
        return contacted_first > 0 and self.unpinned_first == 0


def build_destination_profiles(
    corpus: AppCorpus,
    results_by_dataset: Dict[Tuple[str, str], List[DynamicAppResult]],
    datasets: Sequence[str] = ("popular", "random"),
) -> List[AppDestinationProfile]:
    """Figure 5 bars for every pinning app in the given datasets."""
    parties = corpus.registry.parties
    profiles: List[AppDestinationProfile] = []
    for (platform, dataset), results in sorted(results_by_dataset.items()):
        if dataset not in datasets:
            continue
        apps_by_id = {
            p.app.app_id: p for p in corpus.dataset(platform, dataset)
        }
        for result in results:
            if not result.pins():
                continue
            app = apps_by_id[result.app_id].app
            profile = AppDestinationProfile(
                app_id=result.app_id, platform=platform, dataset=dataset
            )
            for destination, verdict in result.verdicts.items():
                if verdict.excluded:
                    continue
                chain = None
                if corpus.registry.knows(destination):
                    chain = corpus.registry.resolve(destination).chain
                party = parties.classify(destination, app.owner, chain)
                if verdict.pinned:
                    if party == "first":
                        profile.pinned_first += 1
                    else:
                        profile.pinned_third += 1
                else:
                    if party == "first":
                        profile.unpinned_first += 1
                    else:
                        profile.unpinned_third += 1
            profiles.append(profile)
    return profiles


def figure5_table(profiles: List[AppDestinationProfile]) -> Table:
    """Figure 5's data as rows (one per pinning app)."""
    table = Table(
        title=(
            "Figure 5: Pinned vs not-pinned destinations per pinning app "
            "(first/third party split)"
        ),
        headers=[
            "App",
            "Platform",
            "Dataset",
            "Pinned 1st",
            "Pinned 3rd",
            "Unpinned 1st",
            "Unpinned 3rd",
            "% pinned",
        ],
    )
    for p in sorted(profiles, key=lambda x: -x.pinned_fraction):
        table.add_row(
            p.app_id,
            p.platform,
            p.dataset,
            p.pinned_first,
            p.pinned_third,
            p.unpinned_first,
            p.unpinned_third,
            percent(p.pinned_fraction, 0),
        )
    return table


@dataclass
class DestinationSummary:
    """Section 5.2's aggregate claims about Figure 5."""

    pinning_apps: int = 0
    apps_pinning_all_domains: int = 0
    pinned_destinations_first: int = 0
    pinned_destinations_third: int = 0
    apps_with_first_party_pins: int = 0
    apps_pinning_all_first_party: int = 0
    apps_with_third_party_pins: int = 0

    @property
    def third_party_majority(self) -> bool:
        return self.pinned_destinations_third > self.pinned_destinations_first


def summarize_destinations(
    profiles: List[AppDestinationProfile],
) -> DestinationSummary:
    summary = DestinationSummary()
    for p in profiles:
        summary.pinning_apps += 1
        summary.pinned_destinations_first += p.pinned_first
        summary.pinned_destinations_third += p.pinned_third
        if p.pins_all_contacted():
            summary.apps_pinning_all_domains += 1
        if p.pinned_first:
            summary.apps_with_first_party_pins += 1
            if p.pins_all_first_party():
                summary.apps_pinning_all_first_party += 1
        if p.pinned_third:
            summary.apps_with_third_party_pins += 1
    return summary
