"""Connection-security analysis (Section 5.4, Table 8).

Per dataset and platform:

* **Overall** — fraction of apps with at least one TLS connection whose
  ClientHello advertises a bad ciphersuite (DES/3DES/RC4/EXPORT).
* **Pinning apps** — fraction of pinning apps with at least one *pinned*
  connection advertising a bad suite.

Both read the baseline (non-MITM) captures: cipher advertisement is a
client property visible without interception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.dynamic.pipeline import DynamicAppResult
from repro.reporting.tables import Table, percent


@dataclass(frozen=True)
class CipherSecurityCell:
    """One Table 8 cell pair."""

    overall_rate: float
    pinning_rate: float
    total_apps: int
    pinning_apps: int


def analyze_ciphers(results: Sequence[DynamicAppResult]) -> CipherSecurityCell:
    """Compute the Table 8 cells for one dataset's results."""
    total = len(results)
    overall = 0
    pinning_apps = 0
    pinning_weak = 0
    for result in results:
        flows = list(result.direct_capture)
        if any(f.advertised_weak_cipher() for f in flows):
            overall += 1
        pinned = result.pinned_destinations
        if not pinned:
            continue
        pinning_apps += 1
        pinned_flows = [f for f in flows if f.sni in pinned]
        if any(f.advertised_weak_cipher() for f in pinned_flows):
            pinning_weak += 1
    return CipherSecurityCell(
        overall_rate=overall / total if total else 0.0,
        pinning_rate=pinning_weak / pinning_apps if pinning_apps else 0.0,
        total_apps=total,
        pinning_apps=pinning_apps,
    )


def cipher_table(
    cells: Dict[Tuple[str, str], CipherSecurityCell],
) -> Table:
    table = Table(
        title="Table 8: Weak ciphers in pinned vs all connections",
        headers=["Dataset", "Platform", "Overall", "Pinning apps"],
    )
    for dataset in ("common", "popular", "random"):
        for platform in ("android", "ios"):
            cell = cells.get((platform, dataset))
            if cell is None:
                continue
            # Distinguish "no pinning apps to measure" from a measured
            # 0 % — the lenient rate collapses both to 0.0.
            table.add_row(
                dataset.capitalize(),
                "Android" if platform == "android" else "iOS",
                percent(cell.overall_rate if cell.total_apps else None),
                percent(cell.pinning_rate if cell.pinning_apps else None),
            )
    return table
