"""Downstream analyses: every table and figure in Section 5.

:class:`Study` orchestrates the full measurement (static + dynamic +
circumvention + PII) and exposes one method per paper artefact; the
individual modules hold the computations so they can be tested and
ablated independently.
"""

from repro.core.analysis.consistency import (
    ConsistencyClassification,
    classify_pair,
)
from repro.core.analysis.study import Study, StudyResults

__all__ = [
    "ConsistencyClassification",
    "Study",
    "StudyResults",
    "classify_pair",
]
