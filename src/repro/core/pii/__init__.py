"""PII analysis of decrypted traffic (Sections 4.4, 5.5)."""

from repro.core.pii.detector import PIIDetector, PIIHit
from repro.core.pii.compare import PIIComparison, compare_pii_prevalence

__all__ = ["PIIComparison", "PIIDetector", "PIIHit", "compare_pii_prevalence"]
