"""PII detection in decrypted flows.

The analyst controls the test device and therefore knows its identifiers;
detection is a search for those known values in decrypted payloads —
ReCon-style, as in the studies the paper builds on ([45, 46]).  The PII
set is the paper's: IMEI, advertisement ID, WiFi MAC, user email, state,
city and latitude/longitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.device.identifiers import DeviceIdentifiers, PII_TYPES
from repro.netsim.flow import FlowRecord


@dataclass(frozen=True)
class PIIHit:
    """One PII value found in one flow."""

    pii_type: str
    destination: str
    field_key: str


class PIIDetector:
    """Searches decrypted flows for a device's known identifiers."""

    def __init__(self, identifiers: DeviceIdentifiers):
        self.identifiers = identifiers
        # lat/lon are matched as a pair under two types; everything else
        # by exact value.
        self._values: Dict[str, str] = identifiers.as_dict()

    def scan_flow(self, flow: FlowRecord) -> List[PIIHit]:
        """All PII occurrences in one decrypted flow.

        Raises:
            AnalysisError: if the flow was never decrypted (analysis code
                must only look at plaintext it legitimately has).
        """
        hits: List[PIIHit] = []
        for payload in flow.decrypted_payloads():
            for key, value in payload.fields:
                for pii_type, known in self._values.items():
                    if known and known in value:
                        hits.append(
                            PIIHit(
                                pii_type=pii_type,
                                destination=flow.sni,
                                field_key=key,
                            )
                        )
        return hits

    def flow_pii_types(self, flow: FlowRecord) -> Set[str]:
        """The distinct PII types present in one flow."""
        return {hit.pii_type for hit in self.scan_flow(flow)}

    def prevalence(self, flows: Sequence[FlowRecord]) -> Dict[str, float]:
        """Fraction of flows containing each PII type."""
        counts: Dict[str, int] = {t: 0 for t in PII_TYPES}
        total = 0
        for flow in flows:
            if not flow.plaintext_visible:
                continue
            total += 1
            for pii_type in self.flow_pii_types(flow):
                counts[pii_type] += 1
        if total == 0:
            return {t: 0.0 for t in PII_TYPES}
        return {t: counts[t] / total for t in PII_TYPES}
