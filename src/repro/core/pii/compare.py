"""Pinned vs non-pinned PII prevalence comparison (Table 9).

Because non-pinned destinations outnumber pinned ones by orders of
magnitude, raw prevalences cannot be compared directly; the paper runs a
chi-square test of independence per PII type and highlights p < 0.05.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.pii.detector import PIIDetector
from repro.device.identifiers import PII_TYPES
from repro.netsim.flow import FlowRecord
from repro.util.stats import ChiSquareResult, chi_square_independence


@dataclass
class PIITypeComparison:
    """One Table 9 row."""

    pii_type: str
    pinned_rate: float
    non_pinned_rate: float
    pinned_count: int
    non_pinned_count: int
    pinned_total: int
    non_pinned_total: int
    chi_square: Optional[ChiSquareResult] = None

    @property
    def significant(self) -> bool:
        return self.chi_square is not None and self.chi_square.significant()


@dataclass
class PIIComparison:
    """All Table 9 rows for one platform."""

    platform: str
    rows: List[PIITypeComparison] = field(default_factory=list)

    def row(self, pii_type: str) -> PIITypeComparison:
        for row in self.rows:
            if row.pii_type == pii_type:
                return row
        raise KeyError(pii_type)


def compare_pii_prevalence(
    platform: str,
    detector: PIIDetector,
    pinned_flows: Sequence[FlowRecord],
    non_pinned_flows: Sequence[FlowRecord],
) -> PIIComparison:
    """Build the pinned-vs-non-pinned comparison for one platform.

    Flows that were never decrypted are skipped (they carry no readable
    payload); the chi-square test is omitted for types absent from both
    sides (a zero margin makes it undefined).
    """
    pinned = [f for f in pinned_flows if f.plaintext_visible]
    non_pinned = [f for f in non_pinned_flows if f.plaintext_visible]

    comparison = PIIComparison(platform=platform)
    for pii_type in PII_TYPES:
        pinned_hits = sum(
            1 for f in pinned if pii_type in detector.flow_pii_types(f)
        )
        non_pinned_hits = sum(
            1 for f in non_pinned if pii_type in detector.flow_pii_types(f)
        )
        row = PIITypeComparison(
            pii_type=pii_type,
            pinned_rate=pinned_hits / len(pinned) if pinned else 0.0,
            non_pinned_rate=(
                non_pinned_hits / len(non_pinned) if non_pinned else 0.0
            ),
            pinned_count=pinned_hits,
            non_pinned_count=non_pinned_hits,
            pinned_total=len(pinned),
            non_pinned_total=len(non_pinned),
        )
        table = [
            [pinned_hits, len(pinned) - pinned_hits],
            [non_pinned_hits, len(non_pinned) - non_pinned_hits],
        ]
        if not pinned or not non_pinned or (pinned_hits + non_pinned_hits) == 0:
            row.chi_square = None  # zero margin: the test is undefined
        else:
            try:
                row.chi_square = chi_square_independence(table)
            except ValueError:
                row.chi_square = None
        comparison.rows.append(row)
    return comparison
