"""Typed ``Stage``/``Artifact``/``StageGraph`` abstraction (DESIGN.md §15).

A pipeline is a linear dataflow graph: each :class:`Stage` consumes the
artifacts of earlier stages (plus the graph's seed artifacts and per-app
parameters), produces exactly one named artifact, and declares the
configuration knobs its output is a function of.  The declaration is the
single source of truth for everything the monolithic pipelines used to
hand-place:

* **Telemetry** — every computing stage runs under an
  ``obs.span(f"{kind}.{stage}")`` and bumps a
  ``pipeline.{kind}.{stage}.computed`` counter; the graph itself owns
  the per-app ``{kind}.app`` span.
* **Fault injection** — the graph fires the per-app ``maybe_inject``
  with the legacy phase name (``static`` / ``dynamic`` / ``circumvent``)
  before any work, and a derived per-stage point
  (``{kind}.{stage}``) before each stage.  The default
  :class:`~repro.core.exec.faults.SeededFaults` phase set does not
  include stage-level phases, so per-stage injection is opt-in.
* **Content addressing** — :meth:`StageGraph.stage_keys` derives one
  fingerprint per stage by hashing the stage's identity, its resolved
  config knobs, and the fingerprints of its input stages (a
  derivation-style chain).  Changing one knob therefore re-keys exactly
  the declaring stage and everything downstream of it; the final stage's
  key doubles as the app-level result fingerprint used by
  :class:`~repro.core.exec.resultstore.ResultStore`.
* **Cost modeling** — ``cost_share`` splits the kind's modeled per-app
  cost (:mod:`repro.core.exec.costmodel`) across stages.

Determinism: a stage function must be a pure function of its declared
inputs, the seed artifacts, the per-app parameters, and the declared
config knobs read off the pipeline object (``ctx``).  That is what makes
serving one stage from the cache while recomputing another bit-for-bit
equivalent to a cold run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.core import obs
from repro.core.exec.faults import maybe_inject

#: Artifact names every graph run seeds before its first stage: the
#: packaged app plus its identity.  Per-app parameters (the dynamic
#: pre-launch wait, the circumvention pinned set) are merged alongside.
SEED_ARTIFACTS = ("packaged", "app_id", "platform")

#: Sentinel distinguishing "stage cache miss" from any stored value.
_MISS = object()


@dataclass(frozen=True)
class Artifact:
    """A named value flowing through a graph (a stage output or a seed).

    Attributes:
        name: how stages reference it in their ``inputs``.
        doc: one-line description, for documentation and graph dumps.
    """

    name: str
    doc: str = ""


@dataclass(frozen=True)
class Stage:
    """One node of a pipeline graph.

    Attributes:
        name: the stage id; also the name of the artifact it produces.
        fn: ``fn(ctx, artifacts) -> value`` — the stage function.  ``ctx``
            is the owning pipeline object (config knobs are read off it);
            ``artifacts`` maps seed/parameter/earlier-stage names to
            values.
        inputs: names of earlier stages whose artifacts this stage
            consumes.  Seeds and parameters are ambient (always
            available) and must not be listed; they enter the stage key
            through the app identity and ``config`` instead.
        config: names of the configuration knobs the output depends on.
            A plain name is read from ``ctx`` (``ctx.include_native``);
            an ``@``-prefixed name is read from the per-app parameters
            (``@wait``).  Knobs enter the stage's fingerprint, so
            flipping one invalidates this stage and everything
            downstream — and nothing upstream.
        cost_share: this stage's share of the kind's modeled per-app
            compute cost; shares across a graph sum to 1.
        persist: whether a stage-granular result cache stores this
            artifact.  The final stage must not persist — its value *is*
            the app result, which the engine stores under the same key.
        derive: optional extractor rebuilding this stage's artifact from
            a finished app result (``derive(result) -> value``), used to
            publish stage artifacts from results computed without a
            cache attached and to re-derive downstream stages without
            re-executing upstream ones.
        span: whether computing this stage opens a telemetry span
            (assembly-only stages match the monolithic pipelines by
            omitting one).
    """

    name: str
    fn: Callable[[object, dict], object]
    inputs: Tuple[str, ...] = ()
    config: Tuple[str, ...] = ()
    cost_share: float = 0.0
    persist: bool = False
    derive: Optional[Callable[[object], object]] = None
    span: bool = True


_REGISTRY: Dict[str, "StageGraph"] = {}


def _freeze(value):
    """Canonicalize a knob value for the fingerprint identity string."""
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value))
    return value


class StageGraph:
    """A validated, registered pipeline graph.

    Args:
        kind: the work-unit kind this graph executes (``static`` /
            ``dynamic`` / ``circumvent``); registers the graph under it.
        seeds: the :class:`Artifact` values the caller supplies (beyond
            the implicit :data:`SEED_ARTIFACTS`), documentation-grade.
        stages: the stages in execution order; the last stage's value is
            the graph's result.
        defaults: default value per ``ctx`` config knob — what an
            unbound :class:`~repro.core.exec.resultstore.ResultStore`
            resolves knobs to when no pipeline is attached.  Must mirror
            the pipeline constructor's defaults (asserted in tests).
        params_from_extra: maps a work unit's per-app ``extra`` to the
            parameter dict a run of this graph receives (``@`` knobs are
            resolved against it).
    """

    def __init__(
        self,
        kind: str,
        stages: Tuple[Stage, ...],
        defaults: Mapping[str, object],
        seeds: Tuple[Artifact, ...] = (),
        params_from_extra: Optional[Callable[[object], dict]] = None,
    ):
        self.kind = kind
        self.stages = tuple(stages)
        self.seeds = tuple(seeds)
        self.defaults = dict(defaults)
        self._params_from_extra = params_from_extra or (lambda extra: {})
        self._validate()
        self.final = self.stages[-1].name
        _REGISTRY[kind] = self

    def _validate(self) -> None:
        if not self.stages:
            raise ValueError(f"{self.kind}: a stage graph needs stages")
        seen: set = set()
        reserved = set(SEED_ARTIFACTS) | {a.name for a in self.seeds}
        for stage in self.stages:
            if stage.name in seen or stage.name in reserved:
                raise ValueError(
                    f"{self.kind}: duplicate or reserved stage name "
                    f"{stage.name!r}"
                )
            for name in stage.inputs:
                if name not in seen:
                    raise ValueError(
                        f"{self.kind}.{stage.name}: input {name!r} is not "
                        "an earlier stage (seeds and parameters are "
                        "ambient and must not be declared as inputs)"
                    )
            for knob in stage.config:
                if not knob.startswith("@") and knob not in self.defaults:
                    raise ValueError(
                        f"{self.kind}.{stage.name}: config knob {knob!r} "
                        "has no declared default"
                    )
            if not 0.0 <= stage.cost_share <= 1.0:
                raise ValueError(
                    f"{self.kind}.{stage.name}: cost_share out of [0, 1]"
                )
            seen.add(stage.name)
        if self.stages[-1].persist:
            raise ValueError(
                f"{self.kind}: the final stage must not persist — its value "
                "is the app result the engine stores under the same key"
            )
        total = sum(stage.cost_share for stage in self.stages)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"{self.kind}: stage cost shares sum to {total}, expected 1"
            )

    # -- fingerprints ------------------------------------------------------

    def params_from_extra(self, extra) -> dict:
        """The parameter dict for a work unit's per-app ``extra``."""
        return self._params_from_extra(extra)

    def _resolve_knob(
        self,
        name: str,
        params: Mapping[str, object],
        knobs: Optional[object],
        overrides: Optional[Mapping[str, object]],
    ):
        if name.startswith("@"):
            return params[name[1:]]
        if knobs is not None:
            return getattr(knobs, name)
        if overrides is not None and name in overrides:
            return overrides[name]
        return self.defaults[name]

    def stage_keys(
        self,
        corpus_fp: str,
        platform: str,
        dataset: str,
        app_id: str,
        params: Optional[Mapping[str, object]] = None,
        knobs: Optional[object] = None,
        overrides: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, str]:
        """One content-address per stage, chained through the graph.

        Each key hashes the store schema version and code salt, the
        corpus fingerprint, the app identity, the stage's resolved
        config knobs, and the keys of its input stages — so a knob flip
        re-keys the declaring stage and its transitive downstream, and
        nothing else.  ``knobs`` is the pipeline object to read plain
        config names from; without one, ``overrides`` then
        :attr:`defaults` resolve them (the unbound-store path).
        """
        from repro.core.exec.resultstore import CODE_SALT, _VERSION

        params = params or {}
        keys: Dict[str, str] = {}
        for stage in self.stages:
            config = tuple(
                (name, _freeze(self._resolve_knob(name, params, knobs, overrides)))
                for name in stage.config
            )
            identity = repr(
                (
                    _VERSION,
                    CODE_SALT,
                    "stage",
                    corpus_fp,
                    self.kind,
                    stage.name,
                    platform,
                    dataset,
                    app_id,
                    config,
                    tuple(keys[name] for name in stage.inputs),
                )
            )
            keys[stage.name] = hashlib.sha256(
                identity.encode("utf-8")
            ).hexdigest()
        return keys

    # -- execution ---------------------------------------------------------

    def run(
        self,
        ctx,
        packaged,
        params: Optional[Mapping[str, object]] = None,
        cache=None,
        dataset: Optional[str] = None,
    ):
        """Execute the graph for one app; returns the final stage's value.

        With a ``cache`` (a :class:`~repro.core.exec.resultstore.ResultStore`)
        and a ``dataset`` name, every persisted stage is looked up before
        computing and published after — a warm stage is served bit-for-bit
        from the store and its stage function (and telemetry span) is
        skipped, which is what turns a config flip into a partial
        recomputation of only the invalidated suffix of the graph.
        """
        params = dict(params or {})
        app = packaged.app
        fault_predicate = getattr(ctx, "fault_predicate", None)
        maybe_inject(fault_predicate, self.kind, app.app_id)
        with obs.span(
            f"{self.kind}.app",
            cat=self.kind,
            app=app.app_id,
            platform=app.platform,
        ):
            artifacts = dict(params)
            artifacts["packaged"] = packaged
            artifacts["app_id"] = app.app_id
            artifacts["platform"] = app.platform
            keys = None
            if cache is not None and dataset is not None:
                keys = self.stage_keys(
                    cache.corpus_fp,
                    app.platform,
                    dataset,
                    app.app_id,
                    params=params,
                    knobs=ctx,
                )
            for stage in self.stages:
                maybe_inject(
                    fault_predicate, f"{self.kind}.{stage.name}", app.app_id
                )
                value = _MISS
                if keys is not None and stage.persist:
                    value = cache.lookup_stage(
                        keys[stage.name], self.kind, stage.name, miss=_MISS
                    )
                if value is _MISS:
                    if stage.span:
                        with obs.span(
                            f"{self.kind}.{stage.name}", cat=self.kind
                        ):
                            value = stage.fn(ctx, artifacts)
                    else:
                        value = stage.fn(ctx, artifacts)
                    obs.count(f"pipeline.{self.kind}.{stage.name}.computed")
                    if keys is not None and stage.persist:
                        cache.publish_stage(
                            keys[stage.name],
                            self.kind,
                            stage.name,
                            app.platform,
                            dataset,
                            app.app_id,
                            value,
                        )
                artifacts[stage.name] = value
            return artifacts[self.final]

    def rederive(
        self,
        ctx,
        seeds: Mapping[str, object],
        result,
        dirty,
        params: Optional[Mapping[str, object]] = None,
    ):
        """Recompute only the ``dirty`` stages (and their downstream) of a
        finished result, rebuilding clean upstream artifacts from their
        ``derive`` extractors.

        This is the analysis-side generalization of stage-graph
        invalidation: the sweep's detector ablation marks ``detect``
        dirty and re-derives a result from its stored captures without
        touching a device harness.  No telemetry spans and no fault
        injection — re-derivation is pure analysis, exactly like the
        bespoke re-detection path it replaces.  A clean stage without an
        extractor is recomputed (its artifact cannot be recovered from
        the result).
        """
        params = dict(params or {})
        artifacts = dict(params)
        artifacts.update(seeds)
        dirty = set(dirty)
        recomputed = set(dirty)
        for stage in self.stages:
            stale = stage.name in dirty or any(
                name in recomputed for name in stage.inputs
            )
            if not stale and stage.derive is not None:
                artifacts[stage.name] = stage.derive(result)
                continue
            artifacts[stage.name] = stage.fn(ctx, artifacts)
            recomputed.add(stage.name)
        return artifacts[self.final]


def graph_kinds() -> Tuple[str, ...]:
    """Registered graph kinds (loads the built-in pipelines)."""
    _load_builtin_graphs()
    return tuple(sorted(_REGISTRY))


def graph_for(kind: str) -> Optional[StageGraph]:
    """The registered graph for one work-unit kind, or None.

    Lazily imports the built-in pipeline modules so callers that only
    hold a kind string (the result store, the cost model) see their
    graphs without importing the pipelines at module load.
    """
    if kind not in _REGISTRY:
        _load_builtin_graphs()
    return _REGISTRY.get(kind)


def _load_builtin_graphs() -> None:
    import repro.core.circumvent.pipeline  # noqa: F401
    import repro.core.dynamic.pipeline  # noqa: F401
    import repro.core.static.pipeline  # noqa: F401
