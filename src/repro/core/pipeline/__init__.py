"""Declarative stage graphs: the pipelines' shared execution skeleton.

The three measurement pipelines (static, dynamic, circumvention) are
declarative :class:`~repro.core.pipeline.graph.StageGraph` definitions
over their existing stage functions.  The graph owns everything that
used to be hand-placed per pipeline — per-stage telemetry spans,
per-stage fault-injection points, content-addressed artifact
fingerprints, and the partial-recomputation walk a stage-granular result
cache enables (DESIGN.md §15).
"""

from repro.core.pipeline.graph import (
    SEED_ARTIFACTS,
    Artifact,
    Stage,
    StageGraph,
    graph_for,
    graph_kinds,
)

__all__ = [
    "Artifact",
    "SEED_ARTIFACTS",
    "Stage",
    "StageGraph",
    "graph_for",
    "graph_kinds",
]
