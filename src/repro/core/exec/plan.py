"""Execution plans: how a study run is sharded and how it fails.

An :class:`ExecutionPlan` is pure configuration — worker count, chunk
size, scheduling policy, and the fault-tolerance envelope (retries,
backoff, deadline, quarantine) — with no influence on *what* is
computed.  The engine guarantees bit-for-bit identical study results for
every plan; the plan only decides how the per-app work units are
distributed and how hard the engine fights before recording a failure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.exec import costmodel

#: Upper bound on any single backoff sleep, however many retries doubled it.
RETRY_BACKOFF_CAP_S = 30.0

#: The sentinel worker count: size the pool to the machine and let the
#: cost model fall back to serial when the pool cannot win.
AUTO_WORKERS = "auto"

#: Valid ``bootstrap`` policies (how workers obtain their corpus).
BOOTSTRAP_MODES = ("auto", "spec", "pickle")


@dataclass(frozen=True)
class ExecutionPlan:
    """Sharding and fault-tolerance configuration for one study run.

    Attributes:
        workers: worker processes; ``1`` (the default) runs everything
            serially in the parent process, through the same code path
            the workers use.  ``"auto"`` sizes the pool to
            ``os.cpu_count()`` and implies ``adaptive=True``.
        chunk_size: apps per work unit.  ``0`` sizes units from the
            per-kind cost model (:mod:`repro.core.exec.costmodel`), so
            cheap static scans travel in much larger units than
            expensive dynamic runs.
        adaptive: let the engine fall back to the serial path per batch
            when the cost model says dispatch overhead would exceed the
            parallel win (tiny batches, single-CPU machines).  Off by
            default for integer worker counts — an explicit ``workers=N``
            is an instruction, not a hint — and forced on for
            ``workers="auto"``.
        bootstrap: how workers obtain their corpus.  ``"auto"`` (default)
            ships a :class:`~repro.corpus.spec.CorpusSpec` and rebuilds
            in the worker when the corpus is spec-representable, falling
            back to pickling it; ``"spec"`` requires the spec path (raises
            if the corpus cannot be described by one); ``"pickle"`` always
            ships the full corpus by value (escape hatch for
            hand-mutated corpora).
        max_retries: additional attempts for a failed work unit (and for
            each quarantined solo re-run) before it is recorded in the
            error ledger.
        retry_backoff_s: wait before the first retry; doubles per retry,
            bounded by :data:`RETRY_BACKOFF_CAP_S`.  ``0`` retries
            immediately.
        retry_deadline_s: wall-clock budget for one unit's retry loop;
            once exceeded, no further retries are attempted.  ``0`` means
            no deadline.
        quarantine: when a multi-app unit exhausts its retries, re-run its
            apps solo so one crashing app cannot take its chunk-mates'
            results down with it.
    """

    workers: Union[int, str] = 1
    chunk_size: int = 0
    adaptive: bool = False
    bootstrap: str = "auto"
    max_retries: int = 1
    retry_backoff_s: float = 0.0
    retry_deadline_s: float = 0.0
    quarantine: bool = True

    def __post_init__(self):
        if self.workers == AUTO_WORKERS:
            # "auto" is meaningless without the cost-model fallback: on a
            # box where the pool cannot win, auto must not force one.
            object.__setattr__(self, "adaptive", True)
        elif not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError(
                f"workers must be >= 1 or 'auto', got {self.workers!r}"
            )
        if self.bootstrap not in BOOTSTRAP_MODES:
            raise ValueError(
                f"bootstrap must be one of {BOOTSTRAP_MODES}, "
                f"got {self.bootstrap!r}"
            )
        if self.chunk_size < 0:
            raise ValueError(f"chunk_size must be >= 0, got {self.chunk_size}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.retry_deadline_s < 0:
            raise ValueError(
                f"retry_deadline_s must be >= 0, got {self.retry_deadline_s}"
            )

    @property
    def worker_count(self) -> int:
        """The concrete pool size (resolves ``"auto"`` to the machine)."""
        if self.workers == AUTO_WORKERS:
            return os.cpu_count() or 1
        return self.workers

    @property
    def serial(self) -> bool:
        """True when the plan runs in-process without a worker pool."""
        return self.worker_count <= 1

    def chunk_for(self, n_items: int, kind: Optional[str] = None) -> int:
        """Apps per unit when sharding ``n_items`` apps under this plan.

        ``kind`` feeds the cost model so cheap unit kinds get larger
        chunks; without one, dynamic-like costs are assumed (the
        conservative choice — smaller chunks).
        """
        if self.chunk_size:
            return self.chunk_size
        if self.serial:
            return max(1, n_items)
        return costmodel.chunk_size(kind, n_items, self.worker_count)

    def backoff_for(self, retry_index: int) -> float:
        """Seconds to sleep before retry ``retry_index`` (0-based)."""
        if self.retry_backoff_s <= 0:
            return 0.0
        return min(self.retry_backoff_s * (2.0 ** retry_index), RETRY_BACKOFF_CAP_S)

    @classmethod
    def for_workers(cls, workers: Union[int, str]) -> "ExecutionPlan":
        """Plan with cost-model chunking for a given worker count."""
        return cls(workers=workers)
