"""Execution plans: how a study run is sharded across workers.

An :class:`ExecutionPlan` is pure configuration — worker count and chunk
size — with no influence on *what* is computed.  The engine guarantees
bit-for-bit identical study results for every plan; the plan only decides
how the per-app work units are distributed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExecutionPlan:
    """Sharding configuration for one study run.

    Attributes:
        workers: worker processes; ``1`` (the default) runs everything
            serially in the parent process, through the same code path the
            workers use.
        chunk_size: apps per work unit.  ``0`` picks a size automatically
            (~4 chunks per worker, to smooth out stragglers without
            drowning in per-unit overhead).
    """

    workers: int = 1
    chunk_size: int = 0

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size < 0:
            raise ValueError(f"chunk_size must be >= 0, got {self.chunk_size}")

    @property
    def serial(self) -> bool:
        """True when the plan runs in-process without a worker pool."""
        return self.workers <= 1

    def chunk_for(self, n_items: int) -> int:
        """Apps per unit when sharding ``n_items`` apps under this plan."""
        if self.chunk_size:
            return self.chunk_size
        if self.serial:
            return max(1, n_items)
        return max(1, -(-n_items // (self.workers * 4)))

    @classmethod
    def for_workers(cls, workers: int) -> "ExecutionPlan":
        """Plan with auto chunking for a given worker count."""
        return cls(workers=workers)
