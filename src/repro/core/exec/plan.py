"""Execution plans: how a study run is sharded and how it fails.

An :class:`ExecutionPlan` is pure configuration — worker count, chunk
size, and the fault-tolerance envelope (retries, backoff, deadline,
quarantine) — with no influence on *what* is computed.  The engine
guarantees bit-for-bit identical study results for every plan; the plan
only decides how the per-app work units are distributed and how hard the
engine fights before recording a failure.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Upper bound on any single backoff sleep, however many retries doubled it.
RETRY_BACKOFF_CAP_S = 30.0


@dataclass(frozen=True)
class ExecutionPlan:
    """Sharding and fault-tolerance configuration for one study run.

    Attributes:
        workers: worker processes; ``1`` (the default) runs everything
            serially in the parent process, through the same code path the
            workers use.
        chunk_size: apps per work unit.  ``0`` picks a size automatically
            (~4 chunks per worker, to smooth out stragglers without
            drowning in per-unit overhead).
        max_retries: additional attempts for a failed work unit (and for
            each quarantined solo re-run) before it is recorded in the
            error ledger.
        retry_backoff_s: wait before the first retry; doubles per retry,
            bounded by :data:`RETRY_BACKOFF_CAP_S`.  ``0`` retries
            immediately.
        retry_deadline_s: wall-clock budget for one unit's retry loop;
            once exceeded, no further retries are attempted.  ``0`` means
            no deadline.
        quarantine: when a multi-app unit exhausts its retries, re-run its
            apps solo so one crashing app cannot take its chunk-mates'
            results down with it.
    """

    workers: int = 1
    chunk_size: int = 0
    max_retries: int = 1
    retry_backoff_s: float = 0.0
    retry_deadline_s: float = 0.0
    quarantine: bool = True

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size < 0:
            raise ValueError(f"chunk_size must be >= 0, got {self.chunk_size}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.retry_deadline_s < 0:
            raise ValueError(
                f"retry_deadline_s must be >= 0, got {self.retry_deadline_s}"
            )

    @property
    def serial(self) -> bool:
        """True when the plan runs in-process without a worker pool."""
        return self.workers <= 1

    def chunk_for(self, n_items: int) -> int:
        """Apps per unit when sharding ``n_items`` apps under this plan."""
        if self.chunk_size:
            return self.chunk_size
        if self.serial:
            return max(1, n_items)
        return max(1, -(-n_items // (self.workers * 4)))

    def backoff_for(self, retry_index: int) -> float:
        """Seconds to sleep before retry ``retry_index`` (0-based)."""
        if self.retry_backoff_s <= 0:
            return 0.0
        return min(self.retry_backoff_s * (2.0 ** retry_index), RETRY_BACKOFF_CAP_S)

    @classmethod
    def for_workers(cls, workers: int) -> "ExecutionPlan":
        """Plan with auto chunking for a given worker count."""
        return cls(workers=workers)
