"""The scheduler's cost model: when parallelism pays, and in what sizes.

``BENCH_study.json`` showed the flat ~4-chunks-per-worker heuristic
losing to the serial path (speedups of 0.24–0.42): with static scans
running ~40× faster than dynamic runs, uniform chunking produces either
hundreds of sub-millisecond units (all dispatch, no work) or a handful
of lopsided ones (no straggler smoothing).  This module replaces the
guess with modeled costs, calibrated once against the benchmark machine
(see ``benchmarks/test_study_parallel.py``):

* per-app compute cost by unit kind (:data:`APP_COST_S`);
* per-unit dispatch overhead — submit, pickle, queue, collect
  (:data:`UNIT_DISPATCH_S`) — plus per-app result-transfer cost
  (:data:`APP_IPC_S`);
* one-time pool spin-up (:data:`WORKER_SPAWN_S` per worker).

The constants are deliberately coarse (order-of-magnitude accurate on
any contemporary machine): the decisions they drive — chunk sizing and
the parallel-versus-serial call — only need the *ratios* to be right,
and those are structural (static work is tiny relative to boundary
overhead; dynamic work is not).

Every threshold is exercised at documented values in
``tests/test_exec_scheduler.py``; DESIGN.md §11 derives them.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

#: Modeled per-app compute seconds by unit kind, measured at the bench
#: scale (static ≈ 0.1 ms/app, dynamic ≈ 3 ms/app; the ~40× ratio
#: matches BENCH_study.json's 13,908 vs 320 apps/s).
APP_COST_S = {
    "static": 0.0001,
    "dynamic": 0.003,
    "circumvent": 0.002,
}

#: Per-app cost assumed for unknown kinds (conservative: dynamic-like).
DEFAULT_APP_COST_S = 0.003

#: One-time cost of spawning one worker process (interpreter + imports +
#: corpus bootstrap).  Charged only while the pool does not exist yet.
WORKER_SPAWN_S = 0.08

#: Fixed cost of dispatching one unit across the pool boundary: submit,
#: argument pickling, queue handoff, future collection.
UNIT_DISPATCH_S = 0.0015

#: Per-app cost of moving one result back over the boundary.
APP_IPC_S = 0.0001

#: Target compute seconds per unit: large enough that dispatch overhead
#: stays a few percent of unit compute, small enough to smooth stragglers.
TARGET_UNIT_S = 0.25

#: Batches whose modeled serial time is below this never parallelize —
#: even a warm pool costs more to feed than the work is worth.
MIN_PARALLEL_SERIAL_S = 0.05

#: Parallel must beat serial by this factor in the model before the
#: scheduler commits to the pool (hysteresis against model error).
PARALLEL_MARGIN = 1.1

#: In-flight futures per worker in the bounded dispatch window: enough
#: to backfill fast units behind stragglers, small enough that a crash
#: or interrupt abandons little queued work.
INFLIGHT_PER_WORKER = 4


def app_cost_s(kind: str) -> float:
    """Modeled compute seconds for one app of the given unit kind."""
    return APP_COST_S.get(kind, DEFAULT_APP_COST_S)


def stage_costs(kind: str) -> dict:
    """Modeled per-app compute seconds per stage of one kind's graph.

    Derived from the stage graph's declared ``cost_share`` split of the
    kind's :data:`APP_COST_S` entry (shares sum to 1, so the stage costs
    sum back to :func:`app_cost_s`).  Chunking and the parallel/serial
    call stay keyed on the per-kind totals — stage costs size the value
    of a *partial* recomputation, e.g. what a warm upstream artifact
    saves.  Empty for kinds without a registered graph.
    """
    from repro.core.pipeline import graph_for

    graph = graph_for(kind)
    if graph is None:
        return {}
    total = app_cost_s(kind)
    return {stage.name: stage.cost_share * total for stage in graph.stages}


def stage_cost_s(kind: str, stage: str) -> float:
    """Modeled compute seconds for one stage of one app (0 if unknown)."""
    return stage_costs(kind).get(stage, 0.0)


def chunk_size(kind: Optional[str], n_items: int, workers: int) -> int:
    """Apps per unit for ``n_items`` apps of one kind over ``workers``.

    Sizes units toward :data:`TARGET_UNIT_S` of modeled compute — so
    static units carry ~40× more apps than dynamic ones — but never
    larger than an even one-unit-per-worker split (otherwise a small
    dataset would serialize onto one worker).
    """
    if n_items <= 0:
        return 1
    ideal = max(1, int(TARGET_UNIT_S / app_cost_s(kind or "dynamic")))
    per_worker = -(-n_items // max(1, workers))  # ceil
    return max(1, min(ideal, per_worker))


def unit_cost_s(unit) -> float:
    """Modeled compute seconds for one work unit."""
    kind, _platform, _dataset, indices, _extra = unit
    return len(indices) * app_cost_s(kind)


def serial_estimate_s(units: Sequence) -> float:
    """Modeled wall seconds to run ``units`` serially in-process."""
    return sum(unit_cost_s(unit) for unit in units)


def effective_workers(workers: int, cpus: Optional[int] = None) -> int:
    """Workers that can actually compute concurrently on this machine."""
    if cpus is None:
        cpus = os.cpu_count() or 1
    return max(1, min(workers, cpus))


def parallel_estimate_s(
    units: Sequence,
    workers: int,
    pool_started: bool = False,
    cpus: Optional[int] = None,
) -> float:
    """Modeled wall seconds to run ``units`` on a pool of ``workers``.

    Compute divides over the *effective* parallelism (worker processes
    beyond the CPU count only contend); dispatch and IPC costs are paid
    per unit and per app regardless; pool spin-up is charged only when
    the pool does not exist yet.
    """
    compute = serial_estimate_s(units) / effective_workers(workers, cpus)
    dispatch = len(units) * UNIT_DISPATCH_S
    ipc = sum(len(unit[3]) for unit in units) * APP_IPC_S
    spawn = 0.0 if pool_started else workers * WORKER_SPAWN_S
    return compute + dispatch + ipc + spawn


def should_parallelize(
    units: Sequence,
    workers: int,
    pool_started: bool = False,
    cpus: Optional[int] = None,
) -> bool:
    """The adaptive scheduler's serial-versus-pool decision for a batch.

    Serial whenever any of these hold:

    * only one worker can make progress (``workers`` or CPUs == 1);
    * the batch is tiny (modeled serial < :data:`MIN_PARALLEL_SERIAL_S`);
    * the modeled pool time, scaled by :data:`PARALLEL_MARGIN`, does not
      beat the modeled serial time.
    """
    if effective_workers(workers, cpus) <= 1:
        return False
    serial_s = serial_estimate_s(units)
    if serial_s < MIN_PARALLEL_SERIAL_S:
        return False
    pool_s = parallel_estimate_s(units, workers, pool_started, cpus)
    return pool_s * PARALLEL_MARGIN < serial_s


def inflight_window(workers: int) -> int:
    """Maximum outstanding futures for the bounded dispatch window."""
    return max(1, workers * INFLIGHT_PER_WORKER)
