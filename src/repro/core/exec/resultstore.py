"""Content-addressed result store: warm-start re-runs of the study.

The measurement pipeline is re-run constantly — per dataset, per
ablation, per platform — and every run used to recompute all ~5,000 apps
from scratch even when nothing about an app or its configuration had
changed.  The :class:`ResultStore` fixes that: an on-disk store of
per-app pipeline results, each filed under a deterministic
**fingerprint** of everything the result is a function of.  A repeated
run looks every work unit up before dispatching it and only recomputes
fingerprint misses, while the merged study stays bit-for-bit identical
to a cold run at any worker count.

Fingerprint composition
-----------------------

A result is valid for reuse exactly when all of its inputs are
unchanged, so the fingerprint is a SHA-256 over:

* the **store schema version** and **code salt** (:data:`CODE_SALT`) —
  bumped whenever pipeline semantics or result schemas change, so stale
  entries from an older checkout can never hit;
* the **corpus fingerprint** — seed plus per-dataset sizes.  Per-app
  results are *not* reusable across corpus configurations: the CT log,
  endpoint registry and root stores are built from the whole corpus, so
  a ``--scale`` bump invalidates everything by design;
* the **capture window** (``sleep_s``) every dynamic result depends on;
* the **pipeline stage** (``static`` / ``dynamic`` / ``circumvent``),
  the app's platform, dataset, and **app id**;
* the **per-app stage config** — the pre-launch wait for dynamic runs
  (the Common-iOS re-run stores separately from the initial pass), the
  sorted pinned-destination set for circumvention sweeps.

Chunking, worker count, retries and telemetry are deliberately absent:
they cannot influence a result (the engine's determinism contract), so
a warm run hits regardless of how the cold run was scheduled.

Store layout
------------

::

    store/
      store.json             # informational manifest (version, salt)
      objects/<ff>/<fingerprint>.pkl

Each entry is a self-describing pickled envelope
``(magic, version, fingerprint, meta, payload_sha256, payload)`` where
``payload`` is the pickled result and ``meta`` carries plain-data
context (stage, platform, dataset, app id, config, and a small summary
— pinned verdict and destinations — that lets ``tools/diff_runs.py``
diff two stores without importing this package).

Corruption contract
-------------------

A truncated or tampered entry must fall back to recompute with a
``RuntimeWarning`` — never a wrong result.  Every read re-hashes the
payload against the stored digest and cross-checks the envelope
fingerprint against the file name; any mismatch (or any error damaged
bytes can produce, :data:`_CORRUPTION_ERRORS`) invalidates the entry: it
is counted, warned about, deleted, and treated as a miss so the engine
recomputes and republishes it.  A programming error during unpickling —
e.g. an ``AttributeError`` from a renamed result class — propagates
instead: it is not corruption, and silently recomputing would hide the
missing :data:`CODE_SALT` bump behind a warm-looking run.  Writes
go through a temp file and ``os.replace`` so a killed run never leaves
a half-written entry under a valid name.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.core import obs

_MAGIC = "repro-result-store"
_ENTRY_MAGIC = "repro-result-entry"
_VERSION = 1

#: Code/schema version salt.  Bump on any change to pipeline semantics or
#: result dataclass schemas: old entries stop hitting instead of feeding
#: stale results into a new checkout.  v2: stage-graph fingerprints —
#: app-level keys are now the final stage's chain key, so every config
#: knob (not just sleep/wait/pins) enters the address.
CODE_SALT = "pin-study-results-v2"

#: What unpickling/validating a *damaged* entry can raise.  Truncated or
#: bit-rotted pickle streams surface as :class:`pickle.UnpicklingError`,
#: ``EOFError`` or one of the container errors below; the explicit
#: envelope checks raise ``ValueError``.  Deliberately absent:
#: ``AttributeError`` / ``ImportError`` — a payload referencing a renamed
#: class or moved module is a code bug (a missed :data:`CODE_SALT` bump),
#: not corruption, and must propagate instead of being silently
#: invalidated and recomputed.
_CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    ValueError,
    EOFError,
    TypeError,
    KeyError,
    IndexError,
)


def corpus_fingerprint(corpus) -> str:
    """Fingerprint of the corpus configuration a result depends on.

    Seed plus per-dataset sizes: the two inputs that decide everything
    the generator builds (PKI, stores, endpoints, apps).  Two corpora
    with the same fingerprint are identical object graphs.
    """
    shape = tuple(
        (key, len(apps)) for key, apps in sorted(corpus.datasets.items())
    )
    identity = repr((int(corpus.seed), shape))
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


def normalize_extra(stage: str, extra) -> object:
    """Canonical per-app stage config, as it enters the fingerprint.

    Dynamic runs carry a scalar pre-launch wait; circumvention sweeps a
    pinned-destination set (order must not matter); static scans nothing.
    """
    if stage == "dynamic":
        return float(extra or 0.0)
    if stage == "circumvent":
        return tuple(sorted(extra))
    return None


def app_fingerprint(
    corpus_fp: str,
    sleep_s: float,
    stage: str,
    platform: str,
    dataset: str,
    app_id: str,
    extra,
) -> str:
    """The content address of one app's result for one stage config."""
    identity = repr(
        (
            _VERSION,
            CODE_SALT,
            corpus_fp,
            float(sleep_s),
            stage,
            platform,
            dataset,
            app_id,
            normalize_extra(stage, extra),
        )
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


def summarize_result(result) -> dict:
    """Plain-data summary embedded in each entry's metadata.

    Duck-typed over the three result classes so ``tools/diff_runs.py``
    can report *which apps flipped pinned/unpinned and why* without
    unpickling payloads (or importing this package at all).
    """
    summary: dict = {}
    pins = getattr(result, "pins", None)
    if callable(pins):
        summary["pinned"] = bool(result.pins())
    pinned = getattr(result, "pinned_destinations", None)
    if pinned is not None:
        summary["pinned_destinations"] = sorted(pinned)
    bypassed = getattr(result, "bypassed_destinations", None)
    if bypassed is not None:
        summary["bypassed_destinations"] = sorted(bypassed)
        summary["resistant_destinations"] = sorted(
            getattr(result, "resistant_destinations", ())
        )
    if hasattr(result, "embedded_material"):
        summary["embedded_material"] = bool(result.embedded_material)
        summary["nsc_pins"] = bool(result.nsc_pins)
    return summary


@dataclass
class StoreStats:
    """Hit/miss/invalidation tallies for one store handle's lifetime."""

    unit_hits: int = 0
    unit_misses: int = 0
    app_hits: int = 0
    app_misses: int = 0
    stage_hits: int = 0
    stage_misses: int = 0
    stage_published: int = 0
    published: int = 0
    invalidated: int = 0

    @property
    def unit_hit_rate(self) -> float:
        total = self.unit_hits + self.unit_misses
        return self.unit_hits / total if total else 0.0

    @property
    def stage_hit_rate(self) -> float:
        total = self.stage_hits + self.stage_misses
        return self.stage_hits / total if total else 0.0

    def describe(self) -> str:
        out = (
            f"{self.unit_hits} unit hit(s) / {self.unit_misses} miss(es) "
            f"(hit rate {self.unit_hit_rate:.1%}), "
            f"{self.published} entr(ies) published, "
            f"{self.invalidated} invalidated"
        )
        if self.stage_hits or self.stage_misses or self.stage_published:
            out += (
                f"; {self.stage_hits} stage hit(s) / "
                f"{self.stage_misses} miss(es) "
                f"(hit rate {self.stage_hit_rate:.1%}), "
                f"{self.stage_published} stage entr(ies) published"
            )
        return out


class ResultStore:
    """On-disk, content-addressed store of per-app pipeline results.

    Args:
        root: store directory (created on first publish).
        corpus: the corpus this handle serves; its fingerprint enters
            every key, so a store directory may safely hold entries from
            many configurations side by side.
        sleep_s: the dynamic capture window (results depend on it).
        read: consult the store before computing (``--no-store-read``
            turns this off to force a repopulating run).
        write: publish computed results (``--no-store-write`` turns this
            off for a read-only consumer).
    """

    def __init__(
        self,
        root: Union[str, Path],
        corpus,
        sleep_s: float = 30.0,
        read: bool = True,
        write: bool = True,
    ):
        self.root = Path(root)
        self.corpus = corpus
        self.corpus_fp = corpus_fingerprint(corpus)
        self.sleep_s = float(sleep_s)
        self.read = bool(read)
        self.write = bool(write)
        self.stats = StoreStats()
        # Pipeline objects per kind, bound by the engine so stage keys
        # resolve config knobs from the live configuration.  Unbound,
        # knobs resolve to the graphs' declared defaults (with the
        # handle's sleep window overriding the dynamic default), which
        # matches a default-configured study.
        self._knobs: dict = {}

    # -- layout ------------------------------------------------------------

    def entry_path(self, fingerprint: str) -> Path:
        return self.root / "objects" / fingerprint[:2] / f"{fingerprint}.pkl"

    def _ensure_layout(self) -> None:
        if not (self.root / "store.json").exists():
            self.root.mkdir(parents=True, exist_ok=True)
            manifest = {
                "magic": _MAGIC,
                "version": _VERSION,
                "salt": CODE_SALT,
            }
            with open(self.root / "store.json", "w") as fh:
                json.dump(manifest, fh, indent=1, sort_keys=True)
                fh.write("\n")

    # -- stage graphs ------------------------------------------------------

    def bind_pipelines(
        self, static=None, dynamic=None, circumvent=None
    ) -> None:
        """Attach the live pipeline objects config knobs resolve from.

        The engine binds its pipelines at run entry; thereafter every
        fingerprint reflects the actual configuration (``include_native``,
        detector variant, hook set, …) instead of the graph defaults.
        """
        for kind, pipeline in (
            ("static", static),
            ("dynamic", dynamic),
            ("circumvent", circumvent),
        ):
            if pipeline is not None:
                self._knobs[kind] = pipeline

    @staticmethod
    def _graph(kind: str):
        from repro.core.pipeline import graph_for

        return graph_for(kind)

    def _stage_keys(
        self, graph, platform: str, dataset: str, app_id: str, extra
    ) -> dict:
        knobs = self._knobs.get(graph.kind)
        overrides = None if knobs is not None else {"sleep_s": self.sleep_s}
        return graph.stage_keys(
            self.corpus_fp,
            platform,
            dataset,
            app_id,
            params=graph.params_from_extra(extra),
            knobs=knobs,
            overrides=overrides,
        )

    def fingerprint_for(
        self, stage: str, platform: str, dataset: str, app_id: str, extra
    ) -> str:
        """The content address of one app's result for one stage config.

        For kinds with a registered stage graph this is the final
        stage's chain key — every upstream config knob and artifact
        fingerprint enters it; otherwise the flat legacy fingerprint.
        """
        graph = self._graph(stage)
        if graph is None:
            return app_fingerprint(
                self.corpus_fp,
                self.sleep_s,
                stage,
                platform,
                dataset,
                app_id,
                extra,
            )
        return self._stage_keys(graph, platform, dataset, app_id, extra)[
            graph.final
        ]

    # -- per-app access ----------------------------------------------------

    def lookup_app(
        self, stage: str, platform: str, dataset: str, app_id: str, extra
    ):
        """The stored result for one app under one stage config, or None.

        Any corruption — unreadable pickle, digest mismatch, envelope
        fingerprint not matching the file name — invalidates the entry
        (warned, counted, deleted) and reads as a miss, so the caller
        recomputes instead of trusting a damaged payload.
        """
        if not self.read:
            return None
        fingerprint = self.fingerprint_for(
            stage, platform, dataset, app_id, extra
        )
        path = self.entry_path(fingerprint)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.app_misses += 1
            obs.count("store.apps.miss")
            return None
        payload = self._decode_entry(blob, fingerprint, path)
        if payload is None:
            self.stats.app_misses += 1
            obs.count("store.apps.miss")
            return None
        self.stats.app_hits += 1
        obs.count("store.apps.hit")
        return payload

    def _decode_entry(self, blob: bytes, fingerprint: str, path: Path):
        """Validate and unwrap one entry; invalidate on a *corrupt* entry.

        Only errors that damaged bytes can produce count as corruption
        (:data:`_CORRUPTION_ERRORS`).  Anything else — an
        ``AttributeError`` because a result class was renamed, an
        ``ImportError`` because its module moved — is a programming error
        that every entry would trip over; misreporting it as corruption
        would silently recompute the whole store while discarding it
        entry by entry.  Those propagate so the bug (usually a missing
        :data:`CODE_SALT` bump) gets fixed instead of papered over.
        """
        try:
            envelope = pickle.loads(blob)
            magic, version, stored_fp, _meta, digest, payload_blob = envelope
            if magic != _ENTRY_MAGIC or version != _VERSION:
                raise ValueError("not a result-store entry")
            if stored_fp != fingerprint:
                raise ValueError("entry fingerprint does not match its path")
            if hashlib.sha256(payload_blob).hexdigest() != digest:
                raise ValueError("payload digest mismatch")
            return pickle.loads(payload_blob)
        except _CORRUPTION_ERRORS as exc:
            self._invalidate(path, exc)
            return None

    def _invalidate(self, path: Path, reason: Exception) -> None:
        self.stats.invalidated += 1
        obs.count("store.entries.invalidated")
        warnings.warn(
            f"result store entry {path} is corrupt ({reason}); the entry "
            "was discarded and its unit will be recomputed",
            RuntimeWarning,
            stacklevel=4,
        )
        try:
            path.unlink()
        except OSError:
            pass

    def publish_app(
        self,
        stage: str,
        platform: str,
        dataset: str,
        app_id: str,
        extra,
        result,
    ) -> None:
        """File one app's result under its fingerprint (atomic, idempotent)."""
        if not self.write:
            return
        fingerprint = self.fingerprint_for(
            stage, platform, dataset, app_id, extra
        )
        path = self.entry_path(fingerprint)
        if path.exists():
            return
        self._ensure_layout()
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "entry_kind": "app",
            "stage": stage,
            "platform": platform,
            "dataset": dataset,
            "app_id": app_id,
            "sleep_s": self.sleep_s,
            "extra": repr(normalize_extra(stage, extra)),
            "corpus": self.corpus_fp,
            "salt": CODE_SALT,
            "summary": summarize_result(result),
        }
        self._write_entry(path, fingerprint, meta, result)
        self.stats.published += 1
        obs.count("store.apps.published")

    def _write_entry(
        self, path: Path, fingerprint: str, meta: dict, payload
    ) -> None:
        payload_blob = pickle.dumps(payload)
        envelope = (
            _ENTRY_MAGIC,
            _VERSION,
            fingerprint,
            meta,
            hashlib.sha256(payload_blob).hexdigest(),
            payload_blob,
        )
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(envelope, fh)
        os.replace(tmp, path)

    # -- per-stage access (the stage graphs' interface) --------------------

    def lookup_stage(self, fingerprint: str, kind: str, stage: str, miss=None):
        """The stored artifact for one stage fingerprint, or ``miss``.

        The ``miss`` sentinel distinguishes absence from stored values;
        corruption invalidates the entry and reads as a miss, same as
        the app-level contract.
        """
        if not self.read:
            return miss
        path = self.entry_path(fingerprint)
        try:
            blob = path.read_bytes()
        except OSError:
            self._count_stage(kind, stage, hit=False)
            return miss
        payload = self._decode_entry(blob, fingerprint, path)
        if payload is None:
            self._count_stage(kind, stage, hit=False)
            return miss
        self._count_stage(kind, stage, hit=True)
        return payload

    def _count_stage(self, kind: str, stage: str, hit: bool) -> None:
        if hit:
            self.stats.stage_hits += 1
            obs.count("store.stages.hit")
            obs.count(f"store.stage.{kind}.{stage}.hit")
        else:
            self.stats.stage_misses += 1
            obs.count("store.stages.miss")
            obs.count(f"store.stage.{kind}.{stage}.miss")

    def publish_stage(
        self,
        fingerprint: str,
        kind: str,
        stage: str,
        platform: str,
        dataset: str,
        app_id: str,
        value,
    ) -> None:
        """File one stage artifact under its chain key (atomic, idempotent)."""
        if not self.write:
            return
        path = self.entry_path(fingerprint)
        if path.exists():
            return
        self._ensure_layout()
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "entry_kind": "stage",
            "stage": f"{kind}.{stage}",
            "platform": platform,
            "dataset": dataset,
            "app_id": app_id,
            "corpus": self.corpus_fp,
            "salt": CODE_SALT,
        }
        self._write_entry(path, fingerprint, meta, value)
        self.stats.stage_published += 1
        obs.count("store.stages.published")

    # -- unit-level access (the engine's interface) ------------------------

    def _unit_apps(self, unit) -> List[tuple]:
        """``(app_id, per_app_extra)`` for each index of one work unit."""
        kind, platform, dataset, indices, extra = unit
        apps = self.corpus.dataset(platform, dataset)
        if kind == "circumvent":
            extras = list(extra)
        else:
            extras = [extra] * len(indices)
        return [
            (apps[index].app.app_id, extras[position])
            for position, index in enumerate(indices)
        ]

    def lookup_unit(self, unit) -> Optional[list]:
        """The composed stored result for one work unit, or None.

        All of the unit's apps must hit — a partial unit is a unit miss
        and is recomputed whole (and republished per app, so the next
        warm run hits).
        """
        if not self.read:
            return None
        kind, platform, dataset, _indices, _extra = unit
        results = []
        for app_id, app_extra in self._unit_apps(unit):
            result = self.lookup_app(
                kind, platform, dataset, app_id, app_extra
            )
            if result is None:
                self.stats.unit_misses += 1
                obs.count("store.units.miss")
                return None
            results.append(result)
        self.stats.unit_hits += 1
        obs.count("store.units.hit")
        return results

    def probe_unit_stages(self, unit) -> bool:
        """Whether any app of this unit has warm *stage* artifacts.

        The engine's partial-recomputation probe: a unit that missed at
        the app level but has persisted upstream stages on disk is worth
        running locally through the stage cache instead of shipping to a
        cache-less pool worker.
        """
        if not self.read:
            return False
        kind, platform, dataset, _indices, _extra = unit
        graph = self._graph(kind)
        if graph is None:
            return False
        for app_id, app_extra in self._unit_apps(unit):
            keys = self._stage_keys(graph, platform, dataset, app_id, app_extra)
            for stage in graph.stages:
                if stage.persist and self.entry_path(
                    keys[stage.name]
                ).exists():
                    return True
        return False

    def publish_unit(self, unit, results: list) -> None:
        """File one completed unit's results, one entry per app.

        Only a complete unit is publishable: a quarantined unit whose
        survivors were merged around abandoned apps no longer aligns
        with its index list (its solo re-runs published themselves).

        Stage artifacts recoverable from a result (the graph's
        ``derive`` extractors) are published alongside, so future runs
        with a flipped downstream knob can warm-start mid-graph even
        when the cold run computed units in cache-less pool workers.
        """
        if not self.write:
            return
        kind, platform, dataset, indices, _extra = unit
        if len(results) != len(indices):
            return
        graph = self._graph(kind)
        for (app_id, app_extra), result in zip(
            self._unit_apps(unit), results
        ):
            self.publish_app(
                kind, platform, dataset, app_id, app_extra, result
            )
            if graph is None or result is None:
                continue
            keys = self._stage_keys(graph, platform, dataset, app_id, app_extra)
            for stage in graph.stages:
                if stage.persist and stage.derive is not None:
                    try:
                        artifact = stage.derive(result)
                    except (AttributeError, TypeError):
                        # A result that cannot supply this stage's
                        # artifact (a foreign or test result type) is
                        # still a valid app-level entry; backfilling
                        # stage entries is best-effort — a future run
                        # simply recomputes that stage cold.
                        continue
                    self.publish_stage(
                        keys[stage.name],
                        kind,
                        stage.name,
                        platform,
                        dataset,
                        app_id,
                        artifact,
                    )
