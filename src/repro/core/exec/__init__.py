"""Parallel study execution: deterministic per-app sharding.

Public API: :class:`~repro.core.exec.plan.ExecutionPlan` configures worker
count and chunking; :class:`~repro.core.exec.engine.ExecutionEngine` runs
study work units under a plan with results identical to a serial run.
"""

from repro.core.exec.engine import ExecutionEngine
from repro.core.exec.plan import ExecutionPlan

__all__ = ["ExecutionEngine", "ExecutionPlan"]
