"""Parallel, fault-tolerant study execution.

Public API: :class:`~repro.core.exec.plan.ExecutionPlan` configures worker
count (``"auto"`` sizes the pool to the machine), chunking, scheduling
policy, and the fault-tolerance envelope (retries, backoff, deadline,
quarantine); :class:`~repro.core.exec.engine.ExecutionEngine` runs study
work units under a plan with results identical to a serial run —
bootstrapping workers from a compact
:class:`~repro.corpus.spec.CorpusSpec` instead of a pickled corpus,
shipping results back as slim payload encodings
(:mod:`repro.core.exec.payload`), and falling back to the serial path
when the cost model (:mod:`repro.core.exec.costmodel`) says the pool
cannot win — degrading per-app failures into a
:class:`~repro.core.exec.faults.UnitFailure` ledger;
:class:`~repro.core.exec.checkpoint.StudyCheckpoint` journals completed
units to disk so an interrupted run can resume;
:class:`~repro.core.exec.resultstore.ResultStore` is the cross-run memo —
a content-addressed, on-disk store of per-app results that makes
repeated runs warm-start, recomputing only fingerprint misses.
:mod:`repro.core.exec.faults` provides deterministic fault injection for
testing all of it without real flakiness.
"""

from repro.core.exec.checkpoint import StudyCheckpoint
from repro.core.exec.engine import (
    ExecutionEngine,
    ExecutionOutcome,
    WarmPool,
    WorkerBootstrap,
)
from repro.core.exec.faults import (
    NON_RETRYABLE_ERRORS,
    InjectedFault,
    SeededFaults,
    TransientFaults,
    UnitFailure,
    is_retryable,
)
from repro.core.exec.plan import ExecutionPlan
from repro.core.exec.resultstore import ResultStore, StoreStats

__all__ = [
    "ExecutionEngine",
    "ExecutionOutcome",
    "ExecutionPlan",
    "InjectedFault",
    "NON_RETRYABLE_ERRORS",
    "ResultStore",
    "SeededFaults",
    "StoreStats",
    "StudyCheckpoint",
    "TransientFaults",
    "UnitFailure",
    "WarmPool",
    "WorkerBootstrap",
    "is_retryable",
]
